//! The session registry: many named [`ExplainSession`]s behind per-session
//! locks, with delta coalescing and LRU eviction under a memory budget.
//!
//! ## Concurrency model
//!
//! The registry index is **sharded**: session names hash (FNV-1a) onto a
//! fixed array of lock stripes ([`ServiceConfig::shards`]), each stripe a
//! `RwLock<HashMap<name, Arc<Slot>>>`, so at high connection counts name
//! lookups contend only within their stripe — contended acquisitions are
//! counted per shard and surfaced as [`RegistryStats::shard_contention`].
//! Each slot owns
//! its session behind a dedicated `Mutex`, so operations on *different*
//! sessions never contend and operations on the *same* session serialise.
//! That serialisation is the whole correctness story: every report a
//! client sees is produced by the session's own single-threaded
//! `explain`/`re_explain` path, so any interleaving of concurrent requests
//! is byte-identical (fingerprint-equal) to the same operations applied
//! serially per session in the order the registry admitted them —
//! `tests/service_concurrency.rs` pins this over randomized interleavings.
//!
//! ## Delta coalescing
//!
//! A delta request enqueues a ticket on its session's pending queue, then
//! competes for the session lock. Whoever wins drains the **whole** queue
//! and serves it in admission order, concatenating each maximal run of
//! consecutive **same-deadline** tickets into **one** `re_explain` —
//! deltas are ordered edit scripts, so applying `A ++ B` is definitionally
//! the same relation state as applying `A` then `B`, and `re_explain`'s
//! byte-identity-to-cold invariant makes the final report identical to the
//! serial pair of calls. (Tickets with different `deadline_ms` never
//! share a run: serially each would solve under its own deterministic
//! node budget.) Every coalesced waiter receives the post-run report. If
//! a merged script fails (an op out of range), the registry falls back to
//! replaying each ticket individually so each caller gets exactly the
//! success or typed error a serial execution would have given it —
//! coalescing is a pure fast path, never a semantic change.
//!
//! With [`ServiceConfig::coalesce_window`] set, a delta caller *waits*
//! that long after enqueueing its ticket before competing for the session
//! lock (returning early if another drain serves it meanwhile). The
//! window deliberately widens batches under bursty load — more tickets
//! per `re_explain` — at the cost of bounded added latency; it changes
//! **when** runs happen, never their admission order or results, so the
//! serial-equivalence invariant is untouched.
//!
//! ## Eviction
//!
//! Each slot caches its session's [`ExplainSession::memory_footprint`]
//! after every run. When the total exceeds
//! [`ServiceConfig::memory_budget`], least-recently-used idle sessions are
//! dropped (never the most recently touched one, never one that is busy or
//! has queued work). Without durability an evicted session is simply
//! gone — re-creating it and replaying its deltas reproduces the same
//! fingerprints, which the torture test also pins.
//!
//! ## Durability
//!
//! With [`ServiceConfig::durability`] set, every session becomes durable:
//! creation writes a seq-0 snapshot, every *successfully applied* delta is
//! appended to the session's WAL (after `re_explain` succeeds, **before**
//! the ticket is acknowledged — so the log is exactly the acknowledged
//! prefix and a crash can never lose an acked delta to `kill -9`), and a
//! fresh snapshot replaces the log every
//! [`snapshot_every`](explain3d_durability::DurabilityConfig::snapshot_every)
//! records. Eviction becomes **spill-to-disk** (a final snapshot, then the
//! slot is dropped) and any request naming a non-resident session
//! transparently recovers it: snapshot + WAL-suffix replay + one cold
//! explain under the last recorded deadline, which the
//! byte-identity-to-cold invariant makes fingerprint-equal to the report
//! the session last served. Recovered sessions start with an empty
//! [`SessionRegistry::delta_log`] (the in-memory test oracle), and
//! deadline-scoped `explain` overrides are durable only via the snapshot's
//! `last_deadline` — both are serving-equivalent, not byte-level, caveats.
//!
//! ## Degraded mode (the durability state machine)
//!
//! A WAL or snapshot I/O failure never corrupts serving and never deletes
//! on-disk state. Instead each session walks an explicit state machine:
//! **Durable → Degraded → Reconciled**. On the first storage failure the
//! session *degrades*: its broken writer is dropped, its on-disk state is
//! left exactly where the last successful write put it (the durable acked
//! prefix — a crash while degraded recovers to it), and what happens to
//! the failing request depends on [`ServiceConfig::durability_mode`]:
//!
//! * [`DurabilityMode::BestEffort`] — the session keeps serving from
//!   memory; every response carries `durability: "degraded"` so clients
//!   can see the weakened guarantee, and each subsequent request (plus
//!   the periodic [`SessionRegistry::reattach_degraded`] sweep) retries a
//!   *re-attach*: a fresh snapshot of the current in-memory state written
//!   atomically over the stale one, after which the session is
//!   **Reconciled** (fully durable again, labelled `"reconciled"`).
//! * [`DurabilityMode::Strict`] — a delta that cannot be logged answers a
//!   typed `503 durability_unavailable` (with `Retry-After`), so a client
//!   ack always implies the delta is on disk. The delta that *triggered*
//!   the failure was already applied in memory; its `request_id` enters
//!   the retry-dedup window so the client's retry (after re-attach)
//!   acks exactly once instead of double-applying.
//!
//! On-disk state that recovery finds corrupt (bad checksum, WAL gap, a
//! logged delta that no longer applies) is **quarantined** — renamed
//! aside under `quarantine/`, never deleted — and the name answers
//! `SessionNotFound` so a client can re-create it.
//!
//! ## Exactly-once client retries
//!
//! Deltas may carry a client-generated `request_id`. Each session keeps a
//! bounded window of recently applied `(request_id, seq)` pairs —
//! persisted in WAL records and snapshots, rebuilt on recovery — and a
//! delta whose `request_id` is already in the window is **not re-applied**:
//! the caller gets the current report with `deduplicated: true`. A retry
//! of a delta whose first attempt was acked-but-response-lost therefore
//! applies exactly once, pinned by fingerprint equality to serial replay.

use crate::error::ServiceError;
use crate::telemetry::{Telemetry, TraceCtx};
use crate::wire::{CreateRequest, RelationShape};
use explain3d_core::pipeline::{ExplanationReport, PipelineStats};
use explain3d_durability::{
    DurabilityConfig, DurabilityError, RecoveredSession, SessionSnapshot, SessionStore, WalRecord,
    WalWriter,
};
use explain3d_incremental::{ExplainSession, RelationDelta};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, TryLockError};
use std::time::{Duration, Instant};

/// How long a coalescing waiter sleeps before re-checking its ticket and
/// re-competing for the session lock. Purely a liveness bound — the
/// common path is woken by `notify_all` well before it expires.
const TICKET_POLL: Duration = Duration::from_millis(2);

/// Lock stripes in the session index when [`ServiceConfig::shards`] is 0.
const DEFAULT_SHARDS: usize = 16;

/// What a storage failure means for the session it hits; see the
/// "Degraded mode" section of the module docs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DurabilityMode {
    /// Keep serving from memory with `durability: "degraded"` on every
    /// response, re-attaching in the background. The default.
    #[default]
    BestEffort,
    /// A delta that cannot be logged answers `503 durability_unavailable`
    /// — an ack always implies the delta is on disk.
    Strict,
}

impl DurabilityMode {
    /// Parses the `--durability` CLI spelling.
    pub fn parse(raw: &str) -> Option<DurabilityMode> {
        match raw {
            "best-effort" => Some(DurabilityMode::BestEffort),
            "strict" => Some(DurabilityMode::Strict),
            _ => None,
        }
    }
}

/// Registry-level configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Soft cap on the summed [`ExplainSession::memory_footprint`] across
    /// all resident sessions; `None` disables eviction.
    pub memory_budget: Option<usize>,
    /// Record every successfully applied delta per session, retrievable
    /// via [`SessionRegistry::delta_log`] — the serial-replay oracle used
    /// by the equivalence tests. Off by default (it retains every delta).
    pub record_deltas: bool,
    /// Durable sessions: WAL + snapshots under the configured directory,
    /// spill-to-disk eviction, and transparent crash/evict recovery.
    /// `None` (the default) keeps sessions purely in memory.
    pub durability: Option<DurabilityConfig>,
    /// What happens to a session whose WAL or snapshot I/O fails.
    pub durability_mode: DurabilityMode,
    /// Minimum spacing between re-attach attempts of one degraded session
    /// (the first attempt after degrading is never delayed). Also the
    /// `Retry-After` hint strict-mode 503s carry.
    pub reattach_interval: Duration,
    /// Lock stripes the session index is split across (names hash onto
    /// stripes, so lookups contend only within one). `0` — the default —
    /// picks 16. The memory budget and LRU policy stay **global** across
    /// stripes: sharding changes lookup contention, never which session
    /// is evicted.
    pub shards: usize,
    /// Deliberate delta micro-batching: how long a delta caller waits
    /// after enqueueing its ticket before competing for the session lock,
    /// so concurrent deltas pile into one coalesced `re_explain`. `None`
    /// (the default) competes immediately.
    pub coalesce_window: Option<Duration>,
    /// Armed telemetry (metrics + traces). `None` — the default — makes
    /// every instrumentation site a single never-taken branch: no clock
    /// reads, no atomics, no allocation.
    pub telemetry: Option<Arc<Telemetry>>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            memory_budget: None,
            record_deltas: false,
            durability: None,
            durability_mode: DurabilityMode::BestEffort,
            reattach_interval: Duration::from_secs(1),
            shards: 0,
            coalesce_window: None,
            telemetry: None,
        }
    }
}

/// Monotone lifetime counters of a registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Sessions created.
    pub creates: usize,
    /// Sessions dropped by request.
    pub drops: usize,
    /// Sessions evicted under the memory budget.
    pub evictions: usize,
    /// Evictions that wrote a final spill snapshot (always `<= evictions`;
    /// equal when durability is on and every victim could be snapshotted).
    pub spills: usize,
    /// Sessions transparently rebuilt from disk (after a spill or a crash).
    pub recoveries: usize,
    /// Cold `explain` runs served.
    pub explains: usize,
    /// Deltas applied (each ticket counts once, coalesced or not).
    pub deltas_applied: usize,
    /// Deltas that piggybacked on another ticket's `re_explain` instead of
    /// paying for their own run.
    pub coalesced_deltas: usize,
    /// Report reads served.
    pub reports: usize,
    /// Lock stripes the session index is split across.
    pub shards: usize,
    /// Contended shard-lock acquisitions (a `try_lock` lost and the
    /// caller had to block) — the sharding effectiveness gauge the bench
    /// lane records.
    pub shard_contention: usize,
    /// Resident sessions currently in the Degraded durability state (a
    /// gauge, not a monotone counter).
    pub degraded_sessions: usize,
    /// WAL appends that failed (each one degrades its session).
    pub wal_errors: usize,
    /// Snapshot / create / quarantine / re-attach I/O failures.
    pub storage_errors: usize,
    /// Degraded sessions successfully re-attached (→ Reconciled).
    pub reattached: usize,
    /// Session directories renamed aside into `quarantine/`.
    pub quarantined: usize,
    /// Retried deltas answered from the dedup window without re-applying.
    pub dedup_hits: usize,
}

/// One registry stat, addressable both as a `GET /sessions` JSON key and
/// as a Prometheus series — the single source of truth both surfaces
/// iterate, so they can never drift apart.
#[derive(Debug, Clone, Copy)]
pub struct StatSample {
    /// The `/sessions` `stats` object key.
    pub key: &'static str,
    /// The `/metrics` series name.
    pub metric: &'static str,
    /// The `# HELP` text.
    pub help: &'static str,
    /// True for point-in-time values (`gauge` type); false for monotone
    /// lifetime counters.
    pub gauge: bool,
    /// The sampled value.
    pub value: u64,
}

impl RegistryStats {
    /// Every stat as a [`StatSample`], in the wire's historical key order.
    pub fn samples(&self) -> [StatSample; 17] {
        let counter = |key, metric, help, value: usize| StatSample {
            key,
            metric,
            help,
            gauge: false,
            value: value as u64,
        };
        let gauge = |key, metric, help, value: usize| StatSample {
            key,
            metric,
            help,
            gauge: true,
            value: value as u64,
        };
        [
            counter("creates", "e3d_registry_creates_total", "Sessions created", self.creates),
            counter("drops", "e3d_registry_drops_total", "Sessions dropped by request", self.drops),
            counter(
                "evictions",
                "e3d_registry_evictions_total",
                "Sessions evicted under the memory budget",
                self.evictions,
            ),
            counter(
                "spills",
                "e3d_registry_spills_total",
                "Evictions that wrote a final spill snapshot",
                self.spills,
            ),
            counter(
                "recoveries",
                "e3d_registry_recoveries_total",
                "Sessions transparently rebuilt from disk",
                self.recoveries,
            ),
            counter(
                "explains",
                "e3d_registry_explains_total",
                "Cold explain runs served",
                self.explains,
            ),
            counter(
                "deltas_applied",
                "e3d_registry_deltas_applied_total",
                "Deltas applied (coalesced or not)",
                self.deltas_applied,
            ),
            counter(
                "coalesced_deltas",
                "e3d_registry_coalesced_deltas_total",
                "Deltas that piggybacked on another ticket's re_explain",
                self.coalesced_deltas,
            ),
            counter("reports", "e3d_registry_reports_total", "Report reads served", self.reports),
            gauge(
                "shards",
                "e3d_registry_shards",
                "Lock stripes the session index is split across",
                self.shards,
            ),
            counter(
                "shard_contention",
                "e3d_registry_shard_contention_total",
                "Contended shard-lock acquisitions",
                self.shard_contention,
            ),
            gauge(
                "degraded_sessions",
                "e3d_registry_degraded_sessions",
                "Resident sessions currently degraded",
                self.degraded_sessions,
            ),
            counter(
                "wal_errors",
                "e3d_registry_wal_errors_total",
                "WAL appends that failed",
                self.wal_errors,
            ),
            counter(
                "storage_errors",
                "e3d_registry_storage_errors_total",
                "Snapshot / create / quarantine / re-attach I/O failures",
                self.storage_errors,
            ),
            counter(
                "reattached",
                "e3d_registry_reattached_total",
                "Degraded sessions successfully re-attached",
                self.reattached,
            ),
            counter(
                "quarantined",
                "e3d_registry_quarantined_total",
                "Session directories renamed aside into quarantine",
                self.quarantined,
            ),
            counter(
                "dedup_hits",
                "e3d_registry_dedup_hits_total",
                "Retried deltas answered from the dedup window",
                self.dedup_hits,
            ),
        ]
    }
}

/// A summary row of [`SessionRegistry::list`].
#[derive(Debug, Clone)]
pub struct SessionInfo {
    /// Session name.
    pub name: String,
    /// Cached memory footprint (bytes) after the session's last run.
    pub footprint: usize,
    /// Whether the session has produced a report yet.
    pub explained: bool,
    /// Deltas appended to the session's WAL (0 when durability is off).
    pub deltas_logged: u64,
}

/// The result of one delta request.
#[derive(Debug, Clone)]
pub struct DeltaOutcome {
    /// The report after this delta (and any deltas coalesced with it).
    pub report: Arc<ExplanationReport>,
    /// How many *other* tickets were folded into the run that produced
    /// this report (0 when the delta ran alone).
    pub coalesced_with: usize,
    /// The session's durability state when the outcome was produced
    /// (`"durable"`, `"degraded"`, `"reconciled"`); `None` when the
    /// registry has no durability configured.
    pub durability: Option<&'static str>,
    /// True when the delta's `request_id` was already in the retry window:
    /// the delta was **not** re-applied and `report` is the session's
    /// current report.
    pub deduplicated: bool,
    /// Coarse timing breakdown of serving this delta, captured inside the
    /// session lock and shipped out through the ticket cell so the waiter
    /// can record histograms with **no lock held**. All-zero when
    /// telemetry is off (no clocks were read).
    pub timings: RunTimings,
}

/// Where a served delta's time went, in microseconds. A coalesced batch
/// shares `run_us` (every ticket waited on the same `re_explain`); the
/// WAL numbers are per ticket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunTimings {
    /// The `re_explain` run this ticket's ack waited on.
    pub run_us: u64,
    /// This ticket's WAL record append (the write syscall).
    pub wal_write_us: u64,
    /// This ticket's fsync (zero when the sync policy skipped it).
    pub fsync_us: u64,
}

/// One queued delta and the cell its caller is waiting on.
struct Ticket {
    delta: RelationDelta,
    deadline: Option<Duration>,
    /// Client-generated idempotency key; see the module docs.
    request_id: Option<String>,
    result: Arc<TicketCell>,
}

#[derive(Default)]
struct TicketCell {
    // Named `outcome` (not `state`) deliberately: this mutex is *outside*
    // the registry's ranked lock family (it is always the innermost,
    // held-for-an-instant cell), and the distinct name keeps it out of
    // the lock-order lint's slot-state pattern.
    outcome: Mutex<Option<Result<DeltaOutcome, ServiceError>>>,
    ready: Condvar,
}

impl TicketCell {
    fn take(&self) -> Result<Option<Result<DeltaOutcome, ServiceError>>, ServiceError> {
        Ok(self
            .outcome
            .lock()
            .map_err(|_| ServiceError::Internal("ticket cell poisoned".into()))?
            .take())
    }

    fn fulfill(&self, outcome: Result<DeltaOutcome, ServiceError>) {
        if let Ok(mut cell) = self.outcome.lock() {
            *cell = Some(outcome);
        }
        self.ready.notify_all();
    }

    fn wait_brief(&self) {
        if let Ok(cell) = self.outcome.lock() {
            if cell.is_none() {
                let _ = self.ready.wait_timeout(cell, TICKET_POLL);
            }
        }
    }

    /// Parks until the ticket is fulfilled or `deadline` passes, without
    /// consuming the outcome. This is the coalesce-window wait: the
    /// caller stays out of the lock competition while other tickets pile
    /// up, but returns immediately if another drain serves it first.
    fn wait_until(&self, deadline: Instant) {
        let Ok(mut cell) = self.outcome.lock() else { return };
        while cell.is_none() {
            let now = Instant::now();
            let Some(left) = deadline.checked_duration_since(now).filter(|d| !d.is_zero()) else {
                return;
            };
            match self.ready.wait_timeout(cell, left) {
                Ok((s, _)) => cell = s,
                Err(_) => return,
            }
        }
    }
}

/// FNV-1a over `bytes` — the shard hash and the shape-token hash. Chosen
/// for determinism across runs (unlike `RandomState`), which keeps shard
/// assignment stable for the contention counters.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The token [`SessionRegistry::shapes_tagged`] hands out and
/// [`SessionRegistry::delta_checked`] validates: a hash of both relation
/// shapes. A session re-created with *different* shapes gets a different
/// token, so a delta parsed against the old shapes is refused with a
/// typed conflict instead of being applied to relations it was never
/// parsed for. (Re-creation with *identical* shapes keeps the token —
/// the parse is equally valid against the new incarnation.)
fn shape_token(left: &RelationShape, right: &RelationShape) -> u64 {
    fnv1a(format!("{left:?}|{right:?}").as_bytes())
}

/// The per-session durable attachment: the open WAL, the store handle
/// used for snapshots, and the snapshot cadence counter.
struct DurableState {
    store: SessionStore,
    name: String,
    wal: WalWriter,
    /// Records appended since the last snapshot (snapshot cadence).
    since_snapshot: u64,
    /// The scoped deadline of the session's last run — recovery must
    /// re-run the final explain under the same deterministic node budget.
    last_deadline: Option<Duration>,
    /// True when this attachment was produced by a re-attach after a
    /// degradation (the "Reconciled" state of the durability machine) —
    /// fully durable, labelled differently so clients can see the
    /// degradation happened.
    reconciled: bool,
}

/// A session whose storage failed: still serving from memory, retrying
/// re-attach. The on-disk state is left untouched — it is the durable
/// acked prefix a crash while degraded recovers to.
struct DegradedState {
    store: SessionStore,
    name: String,
    last_deadline: Option<Duration>,
    /// When the last re-attach was attempted (`None` → try immediately).
    last_attempt: Option<Instant>,
}

/// Where a session sits in the Durable → Degraded → Reconciled machine.
enum Attachment {
    /// Registry has no durability configured.
    None,
    /// Fully durable (Durable, or Reconciled after a re-attach).
    Attached(DurableState),
    /// Storage failed; serving from memory while re-attach retries.
    Degraded(DegradedState),
}

/// How many `(request_id, seq)` pairs the retry-dedup window retains per
/// session. A retry arriving after this many *other* deltas is no longer
/// deduplicated — acceptable, since retries follow their original by
/// seconds, not thousands of writes.
const RETRY_WINDOW_CAP: usize = 1024;

/// The per-session exactly-once window: recently applied request ids.
#[derive(Default)]
struct RetryWindow {
    by_id: HashMap<String, u64>,
    order: VecDeque<String>,
}

impl RetryWindow {
    fn contains(&self, id: &str) -> bool {
        self.by_id.contains_key(id)
    }

    fn insert(&mut self, id: String, seq: u64) {
        if self.by_id.insert(id.clone(), seq).is_none() {
            self.order.push_back(id);
            while self.order.len() > RETRY_WINDOW_CAP {
                if let Some(old) = self.order.pop_front() {
                    self.by_id.remove(&old);
                }
            }
        }
    }

    /// Oldest-first pairs for snapshot encoding.
    fn to_pairs(&self) -> Vec<(String, u64)> {
        self.order.iter().map(|id| (id.clone(), self.by_id.get(id).copied().unwrap_or(0))).collect()
    }

    fn from_pairs(pairs: Vec<(String, u64)>) -> RetryWindow {
        let mut window = RetryWindow::default();
        for (id, seq) in pairs {
            window.insert(id, seq);
        }
        window
    }
}

/// What [`SessionState::log_applied`] could promise about one delta.
enum LogOutcome {
    /// On disk (WAL appended under the configured fsync policy).
    Logged,
    /// In memory only: the registry is not durability-configured, or the
    /// session is degraded.
    NotDurable,
    /// This very append failed and degraded the session.
    Failed,
}

/// Lock-free durability health counters (surfaced by `/healthz`).
#[derive(Debug, Default)]
struct DuraCounters {
    wal_errors: AtomicUsize,
    storage_errors: AtomicUsize,
    reattaches: AtomicUsize,
    quarantines: AtomicUsize,
    dedup_hits: AtomicUsize,
}

/// Session state guarded by the per-slot mutex.
struct SessionState {
    session: ExplainSession,
    last_report: Option<Arc<ExplanationReport>>,
    applied_log: Vec<RelationDelta>,
    /// Deltas applied since creation. Equals the WAL seq while attached;
    /// keeps counting while degraded so the re-attach snapshot and the
    /// retry window stay consistent.
    applied_seq: u64,
    retry_window: RetryWindow,
    durable: Attachment,
}

impl SessionState {
    fn is_degraded(&self) -> bool {
        matches!(self.durable, Attachment::Degraded(_))
    }

    fn durability_label(&self) -> Option<&'static str> {
        match &self.durable {
            Attachment::None => None,
            Attachment::Attached(d) if d.reconciled => Some("reconciled"),
            Attachment::Attached(_) => Some("durable"),
            Attachment::Degraded(_) => Some("degraded"),
        }
    }

    fn durable_name(&self) -> Option<&str> {
        match &self.durable {
            Attachment::Attached(d) => Some(&d.name),
            Attachment::Degraded(d) => Some(&d.name),
            Attachment::None => None,
        }
    }

    /// A snapshot of the current in-memory state (including the retry
    /// window, so recovery still dedupes).
    fn snapshot_image(&self) -> SessionSnapshot {
        let last_deadline = match &self.durable {
            Attachment::Attached(d) => d.last_deadline,
            Attachment::Degraded(d) => d.last_deadline,
            Attachment::None => None,
        };
        SessionSnapshot {
            seq: self.applied_seq,
            explained: self.session.has_explained(),
            last_deadline,
            config: self.session.config().clone(),
            matches: self.session.matches().clone(),
            left: self.session.left().clone(),
            right: self.session.right().clone(),
            retry_window: self.retry_window.to_pairs(),
        }
    }

    /// Appends one applied delta to the WAL. Called after `re_explain`
    /// succeeded and before the ticket is acknowledged. The caller has
    /// already advanced `applied_seq` for this delta.
    fn log_applied(
        &mut self,
        delta: &RelationDelta,
        deadline: Option<Duration>,
        request_id: Option<&str>,
        counters: &DuraCounters,
    ) -> LogOutcome {
        match &mut self.durable {
            Attachment::None => return LogOutcome::NotDurable,
            Attachment::Degraded(d) => {
                d.last_deadline = deadline;
                return LogOutcome::NotDurable;
            }
            Attachment::Attached(d) => {
                d.since_snapshot += 1;
                d.last_deadline = deadline;
                let record = WalRecord {
                    seq: self.applied_seq,
                    deadline,
                    request_id: request_id.map(str::to_string),
                    delta: delta.clone(),
                };
                match d.wal.append(&record) {
                    Ok(()) => return LogOutcome::Logged,
                    Err(e) => {
                        counters.wal_errors.fetch_add(1, Ordering::Relaxed);
                        eprintln!(
                            "explain3d-service: WAL append failed for session {:?} ({e}); \
                             entering degraded mode",
                            d.name
                        );
                    }
                }
            }
        }
        self.degrade();
        LogOutcome::Failed
    }

    /// Durable → Degraded: drop the broken writer and keep serving from
    /// memory. The on-disk state is deliberately left in place — it is
    /// the durable acked prefix, exactly what a crash while degraded
    /// should recover to. It is superseded (atomically overwritten, with
    /// the WAL records it obsoletes skipped by replay) only when a
    /// re-attach succeeds.
    fn degrade(&mut self) {
        let taken = std::mem::replace(&mut self.durable, Attachment::None);
        self.durable = match taken {
            Attachment::Attached(d) => Attachment::Degraded(DegradedState {
                store: d.store,
                name: d.name,
                last_deadline: d.last_deadline,
                last_attempt: None,
            }),
            other => other,
        };
    }

    /// Writes a fresh snapshot and resets the WAL. Returns true on
    /// success; on failure the session degrades (never deleting on-disk
    /// state) and false is returned.
    fn snapshot_now(&mut self, counters: &DuraCounters) -> bool {
        if !matches!(self.durable, Attachment::Attached(_)) {
            return false;
        }
        let snapshot = self.snapshot_image();
        let Attachment::Attached(d) = &mut self.durable else { return false };
        let result = d.store.write_snapshot(&d.name, &snapshot).and_then(|()| Ok(d.wal.reset()?));
        match result {
            Ok(()) => {
                d.since_snapshot = 0;
                return true;
            }
            Err(e) => {
                eprintln!(
                    "explain3d-service: snapshot failed for session {:?} ({e}); \
                     entering degraded mode",
                    d.name
                );
            }
        }
        counters.storage_errors.fetch_add(1, Ordering::Relaxed);
        self.degrade();
        false
    }

    /// The attached WAL writer's last append/fsync durations (zeros when
    /// detached or when timing is off).
    fn last_wal_timings(&self) -> (Duration, Duration) {
        match &self.durable {
            Attachment::Attached(d) => d.wal.last_timings(),
            _ => (Duration::ZERO, Duration::ZERO),
        }
    }

    /// Snapshots if the cadence says so. Returns true when a snapshot was
    /// actually attempted (so callers can time real snapshots only).
    fn maybe_snapshot(&mut self, counters: &DuraCounters) -> bool {
        if let Attachment::Attached(d) = &self.durable {
            if d.since_snapshot >= d.store.config().snapshot_every {
                self.snapshot_now(counters);
                return true;
            }
        }
        false
    }

    /// Degraded → Reconciled: write a fresh snapshot of the current
    /// in-memory state atomically over the stale on-disk image and open a
    /// fresh WAL. Attempts are spaced at least `interval` apart (the
    /// first one after degrading is immediate). Returns true when the
    /// session is attached — already or newly — afterwards.
    fn try_reattach(&mut self, interval: Duration, counters: &DuraCounters, timing: bool) -> bool {
        match &self.durable {
            Attachment::Attached(_) => return true,
            Attachment::None => return false,
            Attachment::Degraded(deg) => {
                if deg.last_attempt.is_some_and(|t| t.elapsed() < interval) {
                    return false;
                }
            }
        }
        let snapshot = self.snapshot_image();
        let attempt = match &mut self.durable {
            Attachment::Degraded(deg) => {
                deg.last_attempt = Some(Instant::now());
                deg.store.reattach(&deg.name, &snapshot)
            }
            _ => return false,
        };
        match attempt {
            Ok(mut wal) => {
                wal.set_timing(timing);
                let taken = std::mem::replace(&mut self.durable, Attachment::None);
                let Attachment::Degraded(deg) = taken else { return false };
                counters.reattaches.fetch_add(1, Ordering::Relaxed);
                self.durable = Attachment::Attached(DurableState {
                    store: deg.store,
                    name: deg.name,
                    wal,
                    since_snapshot: 0,
                    last_deadline: deg.last_deadline,
                    reconciled: true,
                });
                true
            }
            Err(e) => {
                counters.storage_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "explain3d-service: re-attach of degraded session {:?} failed ({e}); \
                     will retry",
                    self.durable_name().unwrap_or("?")
                );
                false
            }
        }
    }
}

struct Slot {
    name: String,
    left_shape: RelationShape,
    right_shape: RelationShape,
    /// Hash of both shapes; see [`shape_token`]. Immutable per slot.
    shape_token: u64,
    state: Mutex<SessionState>,
    pending: Mutex<VecDeque<Ticket>>,
    last_used: AtomicU64,
    footprint: AtomicUsize,
    /// Mirror of the durable `seq` counter, readable without the state
    /// lock (for [`SessionRegistry::list`]).
    deltas_logged: AtomicU64,
    /// Mirror of `session.has_explained()`, readable without the state
    /// lock (for [`SessionRegistry::list`]) — a busy session must not
    /// misreport its explained status.
    explained: AtomicBool,
    /// Mirror of the Degraded durability state, readable without the
    /// state lock — drives the `/healthz` gauge, the re-attach sweep's
    /// candidate scan, and the eviction pre-screen (degraded sessions
    /// have no fresh spill image and are never evicted).
    degraded: AtomicBool,
}

impl Slot {
    /// True when the slot looks evictable: nobody holds the session lock
    /// and nothing is queued against it. A **poisoned** slot (a panic
    /// escaped a run) counts as idle — it can only ever answer 500s, so it
    /// is dead weight the budget should reclaim, not protect. This is the
    /// victim *pre-screen*; the authoritative re-check happens in
    /// [`SessionRegistry::enforce_budget`] with the pending and state
    /// locks held across the removal.
    fn idle(&self) -> bool {
        let no_pending = self.pending.lock().map(|q| q.is_empty()).unwrap_or(true);
        no_pending
            && match self.state.try_lock() {
                Ok(_) | Err(TryLockError::Poisoned(_)) => true,
                Err(TryLockError::WouldBlock) => false,
            }
    }
}

/// One lock stripe of the session index.
struct Shard {
    slots: RwLock<HashMap<String, Arc<Slot>>>,
    /// Contended acquisitions of this stripe's lock (try-lock lost).
    contention: AtomicUsize,
}

/// A concurrent registry of named explain sessions; see the module docs.
pub struct SessionRegistry {
    shards: Box<[Shard]>,
    /// Per-name recovery gates: [`SessionStore::recover`] truncates the
    /// WAL to its valid length and opens a writer, so two concurrent
    /// recoveries of the same name could each truncate records the other
    /// already appended and acknowledged. Exactly one thread per name may
    /// touch a session's disk state; entries are removed by their last
    /// holder, so the table never outgrows the set of in-flight recoveries.
    recovering: Mutex<HashMap<String, Arc<Mutex<()>>>>,
    clock: AtomicU64,
    config: ServiceConfig,
    store: Option<SessionStore>,
    creates: AtomicUsize,
    drops: AtomicUsize,
    evictions: AtomicUsize,
    spills: AtomicUsize,
    recoveries: AtomicUsize,
    explains: AtomicUsize,
    deltas_applied: AtomicUsize,
    coalesced_deltas: AtomicUsize,
    reports: AtomicUsize,
    dura: DuraCounters,
}

impl SessionRegistry {
    /// An empty registry.
    pub fn new(config: ServiceConfig) -> Self {
        let store = config.durability.clone().map(SessionStore::open);
        let stripes = if config.shards == 0 { DEFAULT_SHARDS } else { config.shards };
        let shards = (0..stripes)
            .map(|_| Shard { slots: RwLock::new(HashMap::new()), contention: AtomicUsize::new(0) })
            .collect();
        SessionRegistry {
            shards,
            recovering: Mutex::new(HashMap::new()),
            clock: AtomicU64::new(0),
            config,
            store,
            creates: AtomicUsize::new(0),
            drops: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            spills: AtomicUsize::new(0),
            recoveries: AtomicUsize::new(0),
            explains: AtomicUsize::new(0),
            deltas_applied: AtomicUsize::new(0),
            coalesced_deltas: AtomicUsize::new(0),
            reports: AtomicUsize::new(0),
            dura: DuraCounters::default(),
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            creates: self.creates.load(Ordering::Relaxed),
            drops: self.drops.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            spills: self.spills.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            explains: self.explains.load(Ordering::Relaxed),
            deltas_applied: self.deltas_applied.load(Ordering::Relaxed),
            coalesced_deltas: self.coalesced_deltas.load(Ordering::Relaxed),
            reports: self.reports.load(Ordering::Relaxed),
            shards: self.shards.len(),
            shard_contention: self
                .shards
                .iter()
                .map(|s| s.contention.load(Ordering::Relaxed))
                .sum(),
            degraded_sessions: self.degraded_sessions(),
            wal_errors: self.dura.wal_errors.load(Ordering::Relaxed),
            storage_errors: self.dura.storage_errors.load(Ordering::Relaxed),
            reattached: self.dura.reattaches.load(Ordering::Relaxed),
            quarantined: self.dura.quarantines.load(Ordering::Relaxed),
            dedup_hits: self.dura.dedup_hits.load(Ordering::Relaxed),
        }
    }

    /// Resident sessions currently degraded — read from the per-slot
    /// atomic mirrors, so this never touches a session lock (the
    /// `/healthz` requirement).
    pub fn degraded_sessions(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .slots
                    .read()
                    .map(|map| map.values().filter(|s| s.degraded.load(Ordering::Relaxed)).count())
                    .unwrap_or(0)
            })
            .sum()
    }

    /// The armed telemetry instance, if any (the HTTP layer uses this for
    /// `/metrics`, tracing, and the slow log).
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.config.telemetry.as_ref()
    }

    /// Names of currently degraded resident sessions, capped at `cap` —
    /// like [`SessionRegistry::degraded_sessions`] this reads only shard
    /// locks and per-slot atomic mirrors, never a session lock, so it is
    /// safe for the `/healthz` probe.
    pub fn degraded_names(&self, cap: usize) -> Vec<String> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            if out.len() >= cap {
                break;
            }
            if let Ok(map) = shard.slots.read() {
                for slot in map.values() {
                    if slot.degraded.load(Ordering::Relaxed) {
                        out.push(slot.name.clone());
                        if out.len() >= cap {
                            break;
                        }
                    }
                }
            }
        }
        out.sort();
        out
    }

    /// Test support: runs `f` while the named session's state lock is
    /// held by the calling thread. Lets integration tests pin the
    /// "liveness endpoints never take a session lock" guarantee — a probe
    /// issued from inside `f` deadlocks (times out) if it regresses into
    /// locking session state.
    #[doc(hidden)]
    pub fn with_state_lock_held<R>(
        &self,
        name: &str,
        f: impl FnOnce() -> R,
    ) -> Result<R, ServiceError> {
        let slot = self.slot(name)?;
        let _state = lock_state(&slot)?;
        Ok(f())
    }

    /// The lock stripe `name` hashes onto.
    fn shard_of(&self, name: &str) -> &Shard {
        &self.shards[(fnv1a(name.as_bytes()) as usize) % self.shards.len()]
    }

    fn shard_read<'a>(
        &self,
        shard: &'a Shard,
    ) -> Result<std::sync::RwLockReadGuard<'a, HashMap<String, Arc<Slot>>>, ServiceError> {
        if let Ok(guard) = shard.slots.try_read() {
            return Ok(guard);
        }
        // Contended (or poisoned — the blocking acquisition sorts it out).
        shard.contention.fetch_add(1, Ordering::Relaxed);
        shard.slots.read().map_err(|_| ServiceError::Internal("session shard poisoned".into()))
    }

    fn shard_write<'a>(
        &self,
        shard: &'a Shard,
    ) -> Result<std::sync::RwLockWriteGuard<'a, HashMap<String, Arc<Slot>>>, ServiceError> {
        if let Ok(guard) = shard.slots.try_write() {
            return Ok(guard);
        }
        shard.contention.fetch_add(1, Ordering::Relaxed);
        shard.slots.write().map_err(|_| ServiceError::Internal("session shard poisoned".into()))
    }

    fn slot(&self, name: &str) -> Result<Arc<Slot>, ServiceError> {
        if let Some(slot) = self.shard_read(self.shard_of(name))?.get(name).cloned() {
            return Ok(slot);
        }
        self.recover_slot(name)
    }

    /// True when `slot` is still the slot registered under `name`. A
    /// caller that looked its slot up before an eviction spilled it must
    /// re-route to recovery instead of operating on the removed "zombie"
    /// slot — the zombie's stale WAL writer would race the recovered
    /// slot's writer on the same file (duplicate seq numbers, interleaved
    /// frames), and its snapshots would clobber the live state.
    fn registered(&self, name: &str, slot: &Arc<Slot>) -> Result<bool, ServiceError> {
        Ok(self.shard_read(self.shard_of(name))?.get(name).is_some_and(|s| Arc::ptr_eq(s, slot)))
    }

    /// Transparently rebuilds a non-resident session from disk (the
    /// spill-to-disk / crash-recovery path). [`ServiceError::SessionNotFound`]
    /// when durability is off or the session has no durable state.
    fn recover_slot(&self, name: &str) -> Result<Arc<Slot>, ServiceError> {
        let Some(store) = &self.store else {
            return Err(ServiceError::SessionNotFound(name.to_string()));
        };
        let gate = {
            let mut recovering = self
                .recovering
                .lock()
                .map_err(|_| ServiceError::Internal("recovery table poisoned".into()))?;
            Arc::clone(recovering.entry(name.to_string()).or_default())
        };
        let result = {
            let _guard = match gate.lock() {
                Ok(guard) => guard,
                // A previous recovery panicked mid-explain; the gate
                // carries no data, so recovering again is safe.
                Err(poisoned) => poisoned.into_inner(),
            };
            self.recover_slot_gated(name, store)
        };
        if let Ok(mut recovering) = self.recovering.lock() {
            // Last holder out removes the entry (2 = the table's + ours);
            // any waiter still blocked on the gate keeps the count higher
            // and performs the removal itself when it finishes.
            if Arc::strong_count(&gate) == 2 {
                recovering.remove(name);
            }
        }
        result
    }

    /// The body of [`SessionRegistry::recover_slot`], entered only by the
    /// one thread holding the session's recovery gate.
    fn recover_slot_gated(
        &self,
        name: &str,
        store: &SessionStore,
    ) -> Result<Arc<Slot>, ServiceError> {
        // The winner of a concurrent recovery registered the slot while we
        // waited on the gate — its WAL writer is authoritative.
        if let Some(slot) = self.shard_read(self.shard_of(name))?.get(name).cloned() {
            return Ok(slot);
        }
        let recovered = match store.recover(name) {
            Ok(recovered) => recovered,
            Err(DurabilityError::Corrupt(what)) => {
                // Corrupt durable state is quarantined — renamed aside,
                // never deleted — so the name becomes creatable again and
                // the bytes stay available for forensics.
                eprintln!(
                    "explain3d-service: session {name:?} has corrupt durable state ({what}); \
                     quarantining it"
                );
                match store.quarantine(name) {
                    Ok(Some(_)) => {
                        self.dura.quarantines.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(None) => {}
                    Err(e) => {
                        self.dura.storage_errors.fetch_add(1, Ordering::Relaxed);
                        eprintln!("explain3d-service: quarantine of session {name:?} failed: {e}");
                        return Err(ServiceError::Internal(format!(
                            "session {name:?} is corrupt and could not be quarantined"
                        )));
                    }
                }
                return Err(ServiceError::SessionNotFound(name.to_string()));
            }
            Err(e @ DurabilityError::Io(_)) => {
                return Err(ServiceError::Internal(format!(
                    "recovery of session {name:?} failed: {e}"
                )));
            }
        };
        let Some((RecoveredSession { mut snapshot, replayed, tail_discarded }, mut wal)) =
            recovered
        else {
            return Err(ServiceError::SessionNotFound(name.to_string()));
        };
        wal.set_timing(self.config.telemetry.is_some());
        if tail_discarded {
            eprintln!(
                "explain3d-service: session {name:?}: discarded a torn WAL tail \
                 (recovered to the last acknowledged delta, seq {})",
                snapshot.seq
            );
        }
        let (seq, explained, last_deadline) =
            (snapshot.seq, snapshot.explained, snapshot.last_deadline);
        let retry_pairs = std::mem::take(&mut snapshot.retry_window);
        let mut session =
            ExplainSession::new(snapshot.left, snapshot.right, snapshot.matches, snapshot.config);
        let last_report = if explained {
            // Re-derive the last served report: byte-identity-to-cold makes
            // one cold explain under the recorded deadline fingerprint-equal
            // to the report the session last acknowledged.
            Some(Arc::new(run_with_deadline(&mut session, last_deadline, ExplainSession::explain)))
        } else {
            None
        };
        let footprint = session.memory_footprint();
        let state = SessionState {
            session,
            last_report,
            applied_log: Vec::new(),
            applied_seq: seq,
            retry_window: RetryWindow::from_pairs(retry_pairs),
            durable: Attachment::Attached(DurableState {
                store: store.clone(),
                name: name.to_string(),
                wal,
                since_snapshot: replayed,
                last_deadline,
                reconciled: false,
            }),
        };
        let left_shape = RelationShape::of(state.session.left());
        let right_shape = RelationShape::of(state.session.right());
        let token = shape_token(&left_shape, &right_shape);
        let slot = Arc::new(Slot {
            name: name.to_string(),
            left_shape,
            right_shape,
            shape_token: token,
            state: Mutex::new(state),
            pending: Mutex::new(VecDeque::new()),
            last_used: AtomicU64::new(0),
            footprint: AtomicUsize::new(footprint),
            deltas_logged: AtomicU64::new(seq),
            explained: AtomicBool::new(explained),
            degraded: AtomicBool::new(false),
        });
        self.touch(&slot);
        {
            let mut map = self.shard_write(self.shard_of(name))?;
            // Defensive: the recovery gate means no other thread can have
            // recovered this name, and `create` refuses names with durable
            // state — but a racing insert must still win over this rebuild.
            if let Some(existing) = map.get(name) {
                return Ok(Arc::clone(existing));
            }
            map.insert(name.to_string(), Arc::clone(&slot));
        }
        self.recoveries.fetch_add(1, Ordering::Relaxed);
        self.enforce_budget()?;
        Ok(slot)
    }

    fn touch(&self, slot: &Slot) {
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        slot.last_used.store(now, Ordering::Relaxed);
    }

    /// Registers a new session. Fails with [`ServiceError::SessionExists`]
    /// when the name is taken.
    pub fn create(&self, name: &str, request: CreateRequest) -> Result<(), ServiceError> {
        if name.is_empty() || name.len() > 128 {
            return Err(ServiceError::BadRequest(
                "session names must be 1..=128 characters".into(),
            ));
        }
        let mut state = SessionState {
            session: ExplainSession::new(
                request.left,
                request.right,
                request.matches,
                request.config,
            ),
            last_report: None,
            applied_log: Vec::new(),
            applied_seq: 0,
            retry_window: RetryWindow::default(),
            durable: Attachment::None,
        };
        if let Some(store) = &self.store {
            // A spilled (non-resident) session still owns its name.
            if store.contains(name) {
                return Err(ServiceError::SessionExists(name.to_string()));
            }
            let genesis = SessionSnapshot {
                seq: 0,
                explained: false,
                last_deadline: None,
                config: state.session.config().clone(),
                matches: state.session.matches().clone(),
                left: state.session.left().clone(),
                right: state.session.right().clone(),
                retry_window: Vec::new(),
            };
            match store.create_session(name, &genesis) {
                Ok(mut wal) => {
                    wal.set_timing(self.config.telemetry.is_some());
                    state.durable = Attachment::Attached(DurableState {
                        store: store.clone(),
                        name: name.to_string(),
                        wal,
                        since_snapshot: 0,
                        last_deadline: None,
                        reconciled: false,
                    });
                }
                Err(e) => {
                    self.dura.storage_errors.fetch_add(1, Ordering::Relaxed);
                    // Partial residue (a genesis dir with a snapshot but no
                    // WAL, say) would make the name uncreatable forever;
                    // quarantine it aside.
                    match store.quarantine(name) {
                        Ok(Some(_)) => {
                            self.dura.quarantines.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(None) => {}
                        Err(qe) => eprintln!(
                            "explain3d-service: quarantine of session {name:?} failed: {qe}"
                        ),
                    }
                    if self.config.durability_mode == DurabilityMode::Strict {
                        // Strict: a create we cannot make durable is refused
                        // outright — the client retries once storage heals.
                        eprintln!(
                            "explain3d-service: could not create durable state for session \
                             {name:?} ({e}); refusing the create (strict mode)"
                        );
                        return Err(ServiceError::DurabilityUnavailable(name.to_string()));
                    }
                    eprintln!(
                        "explain3d-service: could not create durable state for session \
                         {name:?} ({e}); serving it degraded (best-effort mode)"
                    );
                    state.durable = Attachment::Degraded(DegradedState {
                        store: store.clone(),
                        name: name.to_string(),
                        last_deadline: None,
                        last_attempt: Some(Instant::now()),
                    });
                }
            }
        }
        let created_durable = matches!(state.durable, Attachment::Attached(_));
        let created_degraded = state.is_degraded();
        let left_shape = RelationShape::of(state.session.left());
        let right_shape = RelationShape::of(state.session.right());
        let token = shape_token(&left_shape, &right_shape);
        let slot = Arc::new(Slot {
            name: name.to_string(),
            left_shape,
            right_shape,
            shape_token: token,
            state: Mutex::new(state),
            pending: Mutex::new(VecDeque::new()),
            last_used: AtomicU64::new(0),
            footprint: AtomicUsize::new(0),
            deltas_logged: AtomicU64::new(0),
            explained: AtomicBool::new(false),
            degraded: AtomicBool::new(created_degraded),
        });
        self.touch(&slot);
        {
            let mut map = self.shard_write(self.shard_of(name))?;
            if map.contains_key(name) {
                // Undo the genesis image written above so the loser of this
                // race can never be recovered over the resident session.
                if created_durable {
                    if let Some(store) = &self.store {
                        let _ = store.remove(name);
                    }
                }
                return Err(ServiceError::SessionExists(name.to_string()));
            }
            map.insert(name.to_string(), slot);
        }
        self.creates.fetch_add(1, Ordering::Relaxed);
        self.enforce_budget()?;
        Ok(())
    }

    /// The wire shapes of a session's two relations (for parsing delta
    /// tuples without locking the session).
    pub fn shapes(&self, name: &str) -> Result<(RelationShape, RelationShape), ServiceError> {
        let slot = self.slot(name)?;
        Ok((slot.left_shape.clone(), slot.right_shape.clone()))
    }

    /// Like [`SessionRegistry::shapes`], plus the shape token to pass to
    /// [`SessionRegistry::delta_checked`]: a delta parsed against these
    /// shapes is applied only while the session still *has* these shapes,
    /// closing the lookup/apply race with a concurrent drop + re-create.
    pub fn shapes_tagged(
        &self,
        name: &str,
    ) -> Result<(RelationShape, RelationShape, u64), ServiceError> {
        let slot = self.slot(name)?;
        Ok((slot.left_shape.clone(), slot.right_shape.clone(), slot.shape_token))
    }

    /// Runs a cold `explain` on the named session, returning (and storing)
    /// the report. `deadline` scopes a MILP deadline override to this run.
    pub fn explain(
        &self,
        name: &str,
        deadline: Option<Duration>,
    ) -> Result<Arc<ExplanationReport>, ServiceError> {
        self.explain_traced(name, deadline, None)
    }

    /// [`SessionRegistry::explain`] with optional span recording: when
    /// `tctx` is set, `acquire`, `explain_run` (with per-stage children),
    /// and `snapshot` spans land under the given parent. Span intervals
    /// are captured as plain integers while the session lock is held;
    /// every **metric** observation happens after the lock is released.
    pub fn explain_traced(
        &self,
        name: &str,
        deadline: Option<Duration>,
        mut tctx: Option<TraceCtx<'_>>,
    ) -> Result<Arc<ExplanationReport>, ServiceError> {
        loop {
            let acquire_start = tctx.as_ref().map(|c| c.trace.now_us());
            let slot = self.slot(name)?;
            let mut state = lock_state(&slot)?;
            // Eviction holds the state lock across the map removal, so
            // holding it ourselves makes this check stable: if the slot
            // was spilled between lookup and lock, re-route to recovery
            // instead of snapshotting over the recovered slot's state.
            if !self.registered(name, &slot)? {
                drop(state);
                continue;
            }
            // A degraded session gets a lazy re-attach try on every
            // request path (rate-limited inside).
            state.try_reattach(
                self.config.reattach_interval,
                &self.dura,
                self.config.telemetry.is_some(),
            );
            if let (Some(c), Some(start)) = (tctx.as_mut(), acquire_start) {
                let now = c.trace.now_us();
                c.trace.record("acquire", c.parent, start, now);
            }
            let run_started = self.config.telemetry.as_ref().map(|_| Instant::now());
            let run_start_us = tctx.as_ref().map(|c| c.trace.now_us());
            let report =
                Arc::new(run_with_deadline(&mut state.session, deadline, ExplainSession::explain));
            let run_us = run_started.map(|t| t.elapsed().as_micros() as u64);
            if let (Some(c), Some(start)) = (tctx.as_mut(), run_start_us) {
                record_stage_spans(c, "explain_run", start, &report.stats);
            }
            state.last_report = Some(Arc::clone(&report));
            // Persist the explained flag (and the deadline this run used) so
            // recovery re-derives this report rather than an unexplained
            // session.
            let attached = match &mut state.durable {
                Attachment::Attached(d) => {
                    d.last_deadline = deadline;
                    true
                }
                Attachment::Degraded(d) => {
                    d.last_deadline = deadline;
                    false
                }
                Attachment::None => false,
            };
            let mut snap_us = None;
            if attached {
                let snap_start_us = tctx.as_ref().map(|c| c.trace.now_us());
                let snap_started = self.config.telemetry.as_ref().map(|_| Instant::now());
                state.snapshot_now(&self.dura);
                snap_us = snap_started.map(|t| t.elapsed().as_micros() as u64);
                if let (Some(c), Some(start)) = (tctx.as_mut(), snap_start_us) {
                    let now = c.trace.now_us();
                    c.trace.record("snapshot", c.parent, start, now);
                }
            }
            slot.footprint.store(state.session.memory_footprint(), Ordering::Relaxed);
            slot.explained.store(state.session.has_explained(), Ordering::Relaxed);
            slot.degraded.store(state.is_degraded(), Ordering::Relaxed);
            drop(state);
            // Metrics are recorded here — after the state lock is gone —
            // so a scrape-heavy deployment never adds tail latency under
            // the per-session lock (and the telemetry lint stays clean).
            if let Some(tel) = &self.config.telemetry {
                if let Some(us) = run_us {
                    tel.explain_run_us.observe(us);
                }
                if let Some(us) = snap_us {
                    tel.snapshot_us.observe(us);
                }
                tel.steals.inc_by(report.stats.steals as u64);
            }
            self.touch(&slot);
            self.explains.fetch_add(1, Ordering::Relaxed);
            self.enforce_budget()?;
            return Ok(report);
        }
    }

    /// Applies a delta (possibly coalesced with concurrently queued ones)
    /// and returns the resulting report.
    pub fn delta(
        &self,
        name: &str,
        delta: RelationDelta,
        deadline: Option<Duration>,
    ) -> Result<DeltaOutcome, ServiceError> {
        self.delta_tagged(name, delta, deadline, None, None)
    }

    /// [`SessionRegistry::delta`] with shape validation: when `expected`
    /// carries the token a prior [`SessionRegistry::shapes_tagged`]
    /// returned, the delta is applied only if the session (whatever its
    /// incarnation) still has those shapes —
    /// [`ServiceError::ShapeConflict`] otherwise. The check sits inside
    /// the slot-acquisition loop, so a drop + re-create racing this call
    /// either loses (the ticket landed on the old slot, which the
    /// registration re-check withdraws) or is caught against the fresh
    /// slot's token.
    pub fn delta_checked(
        &self,
        name: &str,
        delta: RelationDelta,
        deadline: Option<Duration>,
        expected: Option<u64>,
    ) -> Result<DeltaOutcome, ServiceError> {
        self.delta_tagged(name, delta, deadline, expected, None)
    }

    /// [`SessionRegistry::delta_checked`] plus an idempotency key: when
    /// `request_id` is set and the session has already applied a delta
    /// under the same id (it is in the retry window), the delta is **not**
    /// re-applied — the current report is returned with
    /// [`DeltaOutcome::deduplicated`] set. This is the exactly-once retry
    /// contract; see the module docs.
    pub fn delta_tagged(
        &self,
        name: &str,
        delta: RelationDelta,
        deadline: Option<Duration>,
        expected: Option<u64>,
        request_id: Option<String>,
    ) -> Result<DeltaOutcome, ServiceError> {
        self.delta_traced(name, delta, deadline, expected, request_id, None)
    }

    /// [`SessionRegistry::delta_tagged`] with optional span recording:
    /// when `tctx` is set, a `pending_wait` span (enqueue → outcome) is
    /// recorded under the given parent, with `re_explain` / `wal_append` /
    /// `fsync` children reconstructed from the outcome's [`RunTimings`]
    /// (those intervals ran on whichever thread drained the queue; they
    /// are laid back-to-back ending at the wait end). Metric observations
    /// happen on this waiter thread with **no lock held** — the timings
    /// travel out through the ticket cell.
    pub fn delta_traced(
        &self,
        name: &str,
        delta: RelationDelta,
        deadline: Option<Duration>,
        expected: Option<u64>,
        request_id: Option<String>,
        mut tctx: Option<TraceCtx<'_>>,
    ) -> Result<DeltaOutcome, ServiceError> {
        let wait_started = self.config.telemetry.as_ref().map(|_| Instant::now());
        let wait_start_us = tctx.as_ref().map(|c| c.trace.now_us());
        let cell = Arc::new(TicketCell::default());
        let slot = loop {
            let slot = self.slot(name)?;
            if expected.is_some_and(|token| token != slot.shape_token) {
                return Err(ServiceError::ShapeConflict(name.to_string()));
            }
            {
                let mut pending = slot
                    .pending
                    .lock()
                    .map_err(|_| ServiceError::Internal("pending queue poisoned".into()))?;
                pending.push_back(Ticket {
                    delta: delta.clone(),
                    deadline,
                    request_id: request_id.clone(),
                    result: Arc::clone(&cell),
                });
            }
            // Eviction may have spilled the slot between lookup and push.
            // It holds the pending lock across the removal, so the push
            // either landed first (non-empty queue: the eviction aborts)
            // or strictly after the removal — in which case nothing will
            // ever drain this zombie queue: withdraw the ticket and retry
            // against the recovered slot. Once this check passes, the
            // pending ticket itself blocks any later eviction.
            if self.registered(name, &slot)? {
                break slot;
            }
            let mut pending = slot
                .pending
                .lock()
                .map_err(|_| ServiceError::Internal("pending queue poisoned".into()))?;
            pending.retain(|t| !Arc::ptr_eq(&t.result, &cell));
        };
        if let Some(window) = self.config.coalesce_window {
            // Micro-batching: stay out of the lock competition for the
            // window so concurrent tickets accumulate into one drain.
            // Purely a scheduling delay — admission order was fixed by the
            // push above.
            cell.wait_until(Instant::now() + window);
        }
        loop {
            if let Some(outcome) = cell.take()? {
                self.touch(&slot);
                if let Ok(out) = &outcome {
                    if !out.deduplicated {
                        self.deltas_applied.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // Waiter-side recording: this thread holds nothing but its
                // own (already-taken) ticket cell, so observing here is
                // lock-free by construction.
                if let Some(tel) = &self.config.telemetry {
                    if let Some(t) = wait_started {
                        tel.delta_wait_us.observe(t.elapsed().as_micros() as u64);
                    }
                    if let Ok(out) = &outcome {
                        if !out.deduplicated {
                            tel.delta_run_us.observe(out.timings.run_us);
                        }
                        if out.timings.wal_write_us > 0 {
                            tel.wal_append_us.observe(out.timings.wal_write_us);
                        }
                        if out.timings.fsync_us > 0 {
                            tel.fsync_us.observe(out.timings.fsync_us);
                        }
                    }
                }
                if let (Some(c), Some(start)) = (tctx.as_mut(), wait_start_us) {
                    let end = c.trace.now_us();
                    let wait = c.trace.record("pending_wait", c.parent, start, end);
                    if let Ok(out) = &outcome {
                        let t = &out.timings;
                        let width = t.run_us + t.wal_write_us + t.fsync_us;
                        let mut at = end.saturating_sub(width).max(start);
                        for (nm, us) in [
                            ("re_explain", t.run_us),
                            ("wal_append", t.wal_write_us),
                            ("fsync", t.fsync_us),
                        ] {
                            if us > 0 {
                                let stage_end = (at + us).min(end);
                                c.trace.record(nm, wait, at, stage_end);
                                at = stage_end;
                            }
                        }
                    }
                }
                self.enforce_budget()?;
                return outcome;
            }
            let mut snap_us = None;
            match slot.state.try_lock() {
                Ok(mut state) => {
                    // A degraded session gets a lazy re-attach try before
                    // this drain serves anything (rate-limited inside).
                    state.try_reattach(
                        self.config.reattach_interval,
                        &self.dura,
                        self.config.telemetry.is_some(),
                    );
                    let batch: Vec<Ticket> = {
                        let mut pending = slot
                            .pending
                            .lock()
                            .map_err(|_| ServiceError::Internal("pending queue poisoned".into()))?;
                        pending.drain(..).collect()
                    };
                    if batch.is_empty() {
                        // Another drain served our ticket between the queue
                        // check and the lock; the next loop turn returns it.
                        continue;
                    }
                    let ctx = ServeCtx {
                        record: self.config.record_deltas,
                        mode: self.config.durability_mode,
                        counters: &self.dura,
                        timing: self.config.telemetry.is_some(),
                    };
                    let coalesced = serve_batch(&mut state, batch, &ctx);
                    self.coalesced_deltas.fetch_add(coalesced, Ordering::Relaxed);
                    let snap_started = self.config.telemetry.as_ref().map(|_| Instant::now());
                    if state.maybe_snapshot(&self.dura) {
                        snap_us = snap_started.map(|t| t.elapsed().as_micros() as u64);
                    }
                    if matches!(state.durable, Attachment::Attached(_)) {
                        slot.deltas_logged.store(state.applied_seq, Ordering::Relaxed);
                    }
                    slot.footprint.store(state.session.memory_footprint(), Ordering::Relaxed);
                    slot.explained.store(state.session.has_explained(), Ordering::Relaxed);
                    slot.degraded.store(state.is_degraded(), Ordering::Relaxed);
                }
                Err(TryLockError::WouldBlock) => cell.wait_brief(),
                Err(TryLockError::Poisoned(_)) => {
                    return Err(ServiceError::Internal(format!(
                        "session {name:?} poisoned by an earlier panic"
                    )))
                }
            }
            // The drain arm's state guard is gone; record its snapshot
            // timing (if any) lock-free before the next loop turn.
            if let (Some(tel), Some(us)) = (&self.config.telemetry, snap_us) {
                tel.snapshot_us.observe(us);
            }
        }
    }

    /// The most recent report of a session.
    pub fn report(&self, name: &str) -> Result<Arc<ExplanationReport>, ServiceError> {
        let slot = self.slot(name)?;
        let report = lock_state(&slot)?
            .last_report
            .clone()
            .ok_or_else(|| ServiceError::NoReport(name.to_string()))?;
        self.touch(&slot);
        self.reports.fetch_add(1, Ordering::Relaxed);
        Ok(report)
    }

    /// The session's current durability label for response decoration:
    /// `"durable"` or `"degraded"`, read from the lock-free slot mirror
    /// (`None` when the registry has no durability configured). Delta
    /// outcomes carry the exact label — including `"reconciled"` — from
    /// inside the session lock; this cheap read is for explain/report
    /// responses.
    pub fn durability_status(&self, name: &str) -> Result<Option<&'static str>, ServiceError> {
        if self.store.is_none() {
            return Ok(None);
        }
        let slot = self.slot(name)?;
        Ok(Some(if slot.degraded.load(Ordering::Relaxed) { "degraded" } else { "durable" }))
    }

    /// The `Retry-After` hint (seconds, at least 1) a refused write
    /// travels with: the background re-attach cadence, i.e. the earliest
    /// moment a retry could find the session healthy again.
    pub fn retry_after_secs(&self) -> u64 {
        self.config.reattach_interval.as_secs().max(1)
    }

    /// Attempts re-attach on every degraded resident session — the
    /// periodic background sweep (requests also retry lazily on their own
    /// sessions). Busy sessions are skipped; their next drain retries.
    /// Returns how many sessions re-attached.
    pub fn reattach_degraded(&self) -> usize {
        if self.store.is_none() {
            return 0;
        }
        let mut slots: Vec<Arc<Slot>> = Vec::new();
        for shard in self.shards.iter() {
            if let Ok(map) = shard.slots.read() {
                slots.extend(map.values().filter(|s| s.degraded.load(Ordering::Relaxed)).cloned());
            }
        }
        let mut reattached = 0;
        for slot in slots {
            let Ok(mut state) = slot.state.try_lock() else { continue };
            if state.is_degraded()
                && state.try_reattach(
                    self.config.reattach_interval,
                    &self.dura,
                    self.config.telemetry.is_some(),
                )
            {
                reattached += 1;
            }
            slot.degraded.store(state.is_degraded(), Ordering::Relaxed);
        }
        reattached
    }

    /// Drops a session — both its resident slot and any durable state, so
    /// a spilled (non-resident) session can still be dropped by name.
    pub fn drop_session(&self, name: &str) -> Result<(), ServiceError> {
        let resident = self.shard_write(self.shard_of(name))?.remove(name).is_some();
        let durable = match &self.store {
            Some(store) if store.contains(name) => {
                let _ = store.remove(name);
                true
            }
            _ => false,
        };
        if resident || durable {
            self.drops.fetch_add(1, Ordering::Relaxed);
            Ok(())
        } else {
            Err(ServiceError::SessionNotFound(name.to_string()))
        }
    }

    /// All resident sessions, sorted by name. Shard locks are taken one
    /// stripe at a time, so the listing is a consistent snapshot per
    /// stripe (not across stripes — adequate for an observability view).
    pub fn list(&self) -> Vec<SessionInfo> {
        let mut out: Vec<SessionInfo> = Vec::new();
        for shard in self.shards.iter() {
            let Ok(map) = shard.slots.read() else { continue };
            out.extend(map.values().map(|slot| SessionInfo {
                name: slot.name.clone(),
                footprint: slot.footprint.load(Ordering::Relaxed),
                // Mirrored atomically on every run — a busy session's lock
                // being held must not make the stat default to anything.
                explained: slot.explained.load(Ordering::Relaxed),
                deltas_logged: slot.deltas_logged.load(Ordering::Relaxed),
            }));
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Summed cached footprints of all resident sessions.
    pub fn total_footprint(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .slots
                    .read()
                    .map(|map| map.values().map(|s| s.footprint.load(Ordering::Relaxed)).sum())
                    .unwrap_or(0usize)
            })
            .sum()
    }

    /// The ordered log of successfully applied deltas of a session
    /// (empty unless [`ServiceConfig::record_deltas`] is set) — the
    /// serial-replay oracle of the equivalence tests.
    pub fn delta_log(&self, name: &str) -> Result<Vec<RelationDelta>, ServiceError> {
        let slot = self.slot(name)?;
        let log = lock_state(&slot)?.applied_log.clone();
        Ok(log)
    }

    /// Snapshots every resident durable session (graceful-drain flush:
    /// recovery then needs no WAL replay at all). Blocks on each session
    /// lock — call only after request intake has stopped. Returns how many
    /// sessions were flushed.
    pub fn flush_all(&self) -> usize {
        let mut slots: Vec<Arc<Slot>> = Vec::new();
        for shard in self.shards.iter() {
            if let Ok(map) = shard.slots.read() {
                slots.extend(map.values().cloned());
            }
        }
        let mut flushed = 0;
        for slot in slots {
            if let Ok(mut state) = slot.state.lock() {
                // Graceful drain: give a degraded session one immediate
                // re-attach try so the flush can still make it durable.
                if state.is_degraded() {
                    state.try_reattach(Duration::ZERO, &self.dura, self.config.telemetry.is_some());
                }
                if matches!(state.durable, Attachment::Attached(_))
                    && state.snapshot_now(&self.dura)
                {
                    flushed += 1;
                }
                slot.degraded.store(state.is_degraded(), Ordering::Relaxed);
            }
        }
        flushed
    }

    /// Evicts least-recently-used idle sessions until the summed footprint
    /// fits the budget. The budget and the LRU order are **global** across
    /// the index shards — sharding stripes the lookup lock, never the
    /// eviction policy, so which session is evicted is identical to the
    /// unsharded registry's choice. The most recently touched session is
    /// never evicted, so the working session of a single-tenant deployment
    /// survives any budget.
    fn enforce_budget(&self) -> Result<(), ServiceError> {
        let Some(budget) = self.config.memory_budget else {
            return Ok(());
        };
        loop {
            // Global scan, one stripe's read lock at a time. Cross-stripe
            // totals are slightly racy; the budget is soft and the loop
            // re-checks after every eviction.
            let mut total = 0usize;
            let mut count = 0usize;
            let mut mru = 0u64;
            let mut candidates: Vec<(String, u64)> = Vec::new();
            for shard in self.shards.iter() {
                let map = self.shard_read(shard)?;
                for slot in map.values() {
                    total += slot.footprint.load(Ordering::Relaxed);
                    count += 1;
                    let used = slot.last_used.load(Ordering::Relaxed);
                    mru = mru.max(used);
                    // Degraded sessions have no fresh spill image —
                    // evicting one would lose applied state — so they are
                    // never victims (authoritatively re-checked below).
                    if slot.idle() && !slot.degraded.load(Ordering::Relaxed) {
                        candidates.push((slot.name.clone(), used));
                    }
                }
            }
            if total <= budget || count <= 1 {
                return Ok(());
            }
            let victim = candidates
                .into_iter()
                .filter(|(_, used)| *used != mru)
                .min_by_key(|(_, used)| *used)
                .map(|(name, _)| name);
            let Some(name) = victim else {
                // Everything is busy or MRU: the budget is soft, try again
                // on the next operation.
                return Ok(());
            };
            let mut map = self.shard_write(self.shard_of(&name))?;
            // Re-check idleness under the write lock so a request that
            // arrived meanwhile keeps its session — and hold the victim's
            // pending *and* state locks across the removal, so a racing
            // `delta` push or `explain` lock lands strictly before this
            // eviction (aborting it) or strictly after the removal (its
            // registration re-check then re-routes to recovery); see
            // [`SessionRegistry::registered`].
            if let Some(slot) = map.get(&name).cloned() {
                let pending = match slot.pending.lock() {
                    Ok(queue) => queue,
                    Err(poisoned) => poisoned.into_inner(),
                };
                if pending.is_empty() {
                    match slot.state.try_lock() {
                        Ok(mut state) => {
                            // Spill: a final snapshot makes the victim
                            // transparently recoverable. A session that is
                            // (or just became) degraded is kept instead —
                            // its mirror excludes it from the next pick, so
                            // the loop still terminates.
                            let can_evict = match &state.durable {
                                Attachment::None => true,
                                Attachment::Degraded(_) => false,
                                Attachment::Attached(_) => {
                                    let spilled = state.snapshot_now(&self.dura);
                                    if spilled {
                                        self.spills.fetch_add(1, Ordering::Relaxed);
                                    }
                                    spilled
                                }
                            };
                            slot.degraded.store(state.is_degraded(), Ordering::Relaxed);
                            if can_evict {
                                map.remove(&name);
                                self.evictions.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(TryLockError::Poisoned(_)) => {
                            // A poisoned slot is evicted without a snapshot —
                            // its WAL already holds every acknowledged delta,
                            // so recovery still rebuilds the acked state (and
                            // heals the poisoning: the rebuilt slot has a
                            // fresh mutex).
                            map.remove(&name);
                            self.evictions.fetch_add(1, Ordering::Relaxed);
                        }
                        // Busy again: keep the session.
                        Err(TryLockError::WouldBlock) => {}
                    }
                }
            }
            drop(map);
        }
    }
}

fn lock_state(slot: &Slot) -> Result<std::sync::MutexGuard<'_, SessionState>, ServiceError> {
    slot.state.lock().map_err(|_| {
        ServiceError::Internal(format!("session {:?} poisoned by an earlier panic", slot.name))
    })
}

/// Runs `f` with a scoped MILP-deadline override (restored afterwards).
fn run_with_deadline<R>(
    session: &mut ExplainSession,
    deadline: Option<Duration>,
    f: impl FnOnce(&mut ExplainSession) -> R,
) -> R {
    match deadline {
        None => f(session),
        Some(d) => {
            let previous = session.set_milp_deadline(Some(d));
            let result = f(session);
            session.set_milp_deadline(previous);
            result
        }
    }
}

/// Records a pipeline run as one span plus per-stage children (candidate
/// → partition → solve → assemble, laid out sequentially from the run
/// start; stage durations come from the report's own
/// [`PipelineStats`]). Zero-width stages are skipped.
fn record_stage_spans(
    c: &mut TraceCtx<'_>,
    name: &'static str,
    start_us: u64,
    stats: &PipelineStats,
) {
    let end_us = c.trace.now_us();
    let run = c.trace.record(name, c.parent, start_us, end_us);
    let mut at = start_us;
    for (stage, time) in [
        ("candidate", stats.candidate_time),
        ("partition", stats.partition_time),
        ("solve", stats.solve_time),
        ("assemble", stats.assemble_time),
    ] {
        let us = time.as_micros() as u64;
        if us == 0 {
            continue;
        }
        let stage_end = (at + us).min(end_us);
        c.trace.record(stage, run, at, stage_end);
        at = stage_end;
    }
}

/// Everything [`serve_batch`]/[`serve_run`] need besides the session
/// state: the registry's recording flag, durability mode, and counters.
struct ServeCtx<'a> {
    record: bool,
    mode: DurabilityMode,
    counters: &'a DuraCounters,
    /// Telemetry is armed: capture run/WAL durations into each outcome's
    /// [`RunTimings`]. Off ⇒ no clock reads on the serving thread.
    timing: bool,
}

/// Answers a retried, already-applied delta without re-applying it.
fn fulfill_dedup(state: &SessionState, ticket: Ticket, ctx: &ServeCtx) {
    ctx.counters.dedup_hits.fetch_add(1, Ordering::Relaxed);
    // In strict mode a degraded session must not ack even a dedup hit:
    // the original apply is not on disk yet, and a dedup ack is still an
    // ack. The retry after re-attach succeeds (the window is persisted in
    // the re-attach snapshot).
    if ctx.mode == DurabilityMode::Strict && state.is_degraded() {
        let name = state.durable_name().unwrap_or("").to_string();
        ticket.result.fulfill(Err(ServiceError::DurabilityUnavailable(name)));
        return;
    }
    match &state.last_report {
        Some(report) => ticket.result.fulfill(Ok(DeltaOutcome {
            report: Arc::clone(report),
            coalesced_with: 0,
            durability: state.durability_label(),
            deduplicated: true,
            timings: RunTimings::default(),
        })),
        // Unreachable in practice: an entry in the window means a delta
        // was applied, and every applied delta produced a report.
        None => ticket.result.fulfill(Err(ServiceError::Internal(
            "retried delta was applied but no report exists".into(),
        ))),
    }
}

/// Logs one applied ticket (WAL before ack), records its `request_id` in
/// the retry window, and fulfills it according to the durability mode.
/// `state.applied_seq` is advanced here — exactly once per applied delta.
fn finish_applied(
    state: &mut SessionState,
    ticket: Ticket,
    deadline: Option<Duration>,
    coalesced_with: usize,
    report: &Arc<ExplanationReport>,
    run_us: u64,
    ctx: &ServeCtx,
) {
    state.applied_seq += 1;
    let logged =
        state.log_applied(&ticket.delta, deadline, ticket.request_id.as_deref(), ctx.counters);
    // Timings ship inside the outcome so the *waiter* thread can observe
    // histograms after it takes its cell — never from under this lock.
    let timings = if ctx.timing && matches!(&logged, LogOutcome::Logged) {
        let (write, fsync) = state.last_wal_timings();
        RunTimings {
            run_us,
            wal_write_us: write.as_micros() as u64,
            fsync_us: fsync.as_micros() as u64,
        }
    } else {
        RunTimings { run_us, ..RunTimings::default() }
    };
    if let Some(id) = &ticket.request_id {
        state.retry_window.insert(id.clone(), state.applied_seq);
    }
    let refused = match logged {
        LogOutcome::Logged => false,
        // The delta IS applied in memory either way; strict mode just
        // refuses to ack it (the client retries; the window dedupes).
        LogOutcome::NotDurable | LogOutcome::Failed => {
            ctx.mode == DurabilityMode::Strict && state.is_degraded()
        }
    };
    if refused {
        let name = state.durable_name().unwrap_or("").to_string();
        ticket.result.fulfill(Err(ServiceError::DurabilityUnavailable(name)));
    } else {
        ticket.result.fulfill(Ok(DeltaOutcome {
            report: Arc::clone(report),
            coalesced_with,
            durability: state.durability_label(),
            deduplicated: false,
            timings,
        }));
    }
}

/// Serves a drained batch of tickets, returning how many of them were
/// coalesced into another ticket's run.
///
/// First the exactly-once filter: a ticket whose `request_id` is already
/// in the retry window is answered from the current report without
/// re-applying; a duplicate of a ticket *in this very batch* is deferred
/// until the batch has been served, then answered the same way (its twin
/// applied first — serially, the retry would arrive after the original).
///
/// The fresh tickets are grouped into maximal runs of **consecutive equal
/// deadlines** (in admission order) and each run is served by
/// [`serve_run`]. Coalescing across different deadlines would change
/// semantics: serially, each delta runs under its own deadline-derived
/// node budget, so only same-budget neighbours may share a `re_explain`.
/// The common case — no per-request deadlines — still coalesces the whole
/// batch.
fn serve_batch(state: &mut SessionState, batch: Vec<Ticket>, ctx: &ServeCtx) -> usize {
    let mut fresh: Vec<Ticket> = Vec::new();
    let mut deferred: Vec<Ticket> = Vec::new();
    for ticket in batch {
        match &ticket.request_id {
            Some(id) if state.retry_window.contains(id) => fulfill_dedup(state, ticket, ctx),
            Some(id) if fresh.iter().any(|t| t.request_id.as_deref() == Some(id.as_str())) => {
                deferred.push(ticket)
            }
            _ => fresh.push(ticket),
        }
    }
    let mut runs: Vec<Vec<Ticket>> = Vec::new();
    for ticket in fresh {
        match runs.last_mut() {
            Some(run) if run[0].deadline == ticket.deadline => run.push(ticket),
            _ => runs.push(vec![ticket]),
        }
    }
    let mut coalesced = 0;
    for run in runs {
        coalesced += run.len() - 1;
        serve_run(state, run, ctx);
    }
    for ticket in deferred {
        if ticket.request_id.as_deref().is_some_and(|id| state.retry_window.contains(id)) {
            fulfill_dedup(state, ticket, ctx);
        } else {
            // Its twin failed to apply, so this is not a duplicate of an
            // *applied* delta: serve it on its own for exactly the outcome
            // a serial retry would get.
            serve_run(state, vec![ticket], ctx);
        }
    }
    coalesced
}

/// Serves one same-deadline run of tickets with one `re_explain` (fast
/// path) or an individual replay (fallback when the merged script fails).
/// See the module docs for why both paths are serially equivalent.
fn serve_run(state: &mut SessionState, batch: Vec<Ticket>, ctx: &ServeCtx) {
    // Strict mode refuses work it cannot log *before* applying: when the
    // session is already degraded (this drain's re-attach try failed),
    // answering 503 without mutating memory means the client's retry
    // after re-attach applies fresh — still exactly once.
    if ctx.mode == DurabilityMode::Strict && state.is_degraded() {
        let name = state.durable_name().unwrap_or("").to_string();
        for ticket in batch {
            ticket.result.fulfill(Err(ServiceError::DurabilityUnavailable(name.clone())));
        }
        return;
    }
    let deadline = batch[0].deadline;
    if batch.len() > 1 {
        let merged =
            RelationDelta { ops: batch.iter().flat_map(|t| t.delta.ops.iter().cloned()).collect() };
        let run_started = ctx.timing.then(Instant::now);
        let merged_result =
            run_with_deadline(&mut state.session, deadline, |s| s.re_explain(&merged));
        let run_us = run_started.map_or(0, |t| t.elapsed().as_micros() as u64);
        match merged_result {
            Ok(report) => {
                let report = Arc::new(report);
                state.last_report = Some(Arc::clone(&report));
                if ctx.record {
                    state.applied_log.extend(batch.iter().map(|t| t.delta.clone()));
                }
                // WAL before ack: log each ticket's delta (replay applies
                // them in order, which is definitionally the merged script)
                // so no acknowledged delta can be lost to a crash.
                let coalesced_with = batch.len() - 1;
                for ticket in batch {
                    finish_applied(state, ticket, deadline, coalesced_with, &report, run_us, ctx);
                }
                return;
            }
            Err(_) => {
                // Some op in the merged script is out of range; the session
                // is untouched (`apply_delta` rolls back). Replay each
                // ticket on its own so every caller gets exactly the
                // outcome serial execution would have produced.
            }
        }
    }
    for ticket in batch {
        if ctx.mode == DurabilityMode::Strict && state.is_degraded() {
            let name = state.durable_name().unwrap_or("").to_string();
            ticket.result.fulfill(Err(ServiceError::DurabilityUnavailable(name)));
            continue;
        }
        let run_started = ctx.timing.then(Instant::now);
        let outcome =
            run_with_deadline(&mut state.session, ticket.deadline, |s| s.re_explain(&ticket.delta));
        let run_us = run_started.map_or(0, |t| t.elapsed().as_micros() as u64);
        match outcome {
            Ok(report) => {
                let report = Arc::new(report);
                state.last_report = Some(Arc::clone(&report));
                if ctx.record {
                    state.applied_log.push(ticket.delta.clone());
                }
                let ticket_deadline = ticket.deadline;
                finish_applied(state, ticket, ticket_deadline, 0, &report, run_us, ctx);
            }
            Err(e) => ticket.result.fulfill(Err(e.into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explain3d_core::prelude::{AttributeMatches, CanonicalRelation, CanonicalTuple, Side};
    use explain3d_incremental::{report_fingerprint, SessionConfig};
    use explain3d_relation::prelude::{Row, Schema, Value, ValueType};

    fn canon(name: &str, entries: &[(&str, f64)]) -> CanonicalRelation {
        CanonicalRelation {
            query_name: name.to_string(),
            schema: Schema::from_pairs(&[("k", ValueType::Str)]),
            key_attrs: vec!["k".to_string()],
            tuples: entries
                .iter()
                .enumerate()
                .map(|(i, (k, imp))| CanonicalTuple {
                    id: i,
                    key: vec![Value::str(*k)],
                    impact: *imp,
                    members: vec![i],
                    representative: Row::new(vec![Value::str(*k)]),
                })
                .collect(),
            aggregate: None,
        }
    }

    fn tuple(key: &str, impact: f64) -> CanonicalTuple {
        CanonicalTuple {
            id: 0,
            key: vec![Value::str(key)],
            impact,
            members: vec![],
            representative: Row::new(vec![Value::str(key)]),
        }
    }

    fn request(left: &[(&str, f64)], right: &[(&str, f64)]) -> CreateRequest {
        CreateRequest {
            left: canon("Q1", left),
            right: canon("Q2", right),
            matches: AttributeMatches::single_equivalent("k", "k"),
            config: SessionConfig::default(),
        }
    }

    fn fingerprint(report: &ExplanationReport) -> Vec<u8> {
        report_fingerprint(report)
    }

    #[test]
    fn lifecycle_create_explain_delta_report_drop() {
        let registry = SessionRegistry::new(ServiceConfig::default());
        registry.create("s1", request(&[("a", 1.0), ("b", 2.0)], &[("a", 1.0)])).unwrap();
        assert!(matches!(
            registry.create("s1", request(&[], &[])),
            Err(ServiceError::SessionExists(_))
        ));
        assert!(matches!(registry.report("s1"), Err(ServiceError::NoReport(_))));
        let first = registry.explain("s1", None).unwrap();
        assert!(first.complete);
        let outcome = registry
            .delta("s1", RelationDelta::new().insert(Side::Right, tuple("b", 2.0)), None)
            .unwrap();
        assert_eq!(outcome.coalesced_with, 0);
        let stored = registry.report("s1").unwrap();
        assert_eq!(fingerprint(&outcome.report), fingerprint(&stored));
        registry.drop_session("s1").unwrap();
        assert!(matches!(registry.report("s1"), Err(ServiceError::SessionNotFound(_))));
        let stats = registry.stats();
        assert_eq!(
            (stats.creates, stats.explains, stats.deltas_applied, stats.drops),
            (1, 1, 1, 1)
        );
    }

    #[test]
    fn coalesced_batch_equals_serial_execution() {
        // Serve a 3-ticket batch directly through `serve_batch` (the drain
        // path), then replay the same deltas one at a time on a second
        // registry; the final fingerprints must agree.
        let registry = SessionRegistry::new(ServiceConfig::default());
        registry
            .create("s", request(&[("a", 1.0), ("b", 2.0), ("c", 1.0)], &[("a", 1.0)]))
            .unwrap();
        registry.explain("s", None).unwrap();
        let deltas = [
            RelationDelta::new().insert(Side::Right, tuple("b", 1.0)),
            RelationDelta::new().update(Side::Right, 0, tuple("a", 2.0)),
            RelationDelta::new().delete(Side::Left, 2),
        ];
        let slot = registry.slot("s").unwrap();
        let cells: Vec<Arc<TicketCell>> = (0..3).map(|_| Arc::new(TicketCell::default())).collect();
        {
            let mut state = lock_state(&slot).unwrap();
            let batch: Vec<Ticket> = deltas
                .iter()
                .zip(&cells)
                .map(|(d, c)| Ticket {
                    delta: d.clone(),
                    deadline: None,
                    request_id: None,
                    result: Arc::clone(c),
                })
                .collect();
            let counters = DuraCounters::default();
            let ctx = ServeCtx {
                record: false,
                mode: DurabilityMode::BestEffort,
                counters: &counters,
                timing: false,
            };
            serve_batch(&mut state, batch, &ctx);
        }
        let outcomes: Vec<DeltaOutcome> =
            cells.iter().map(|c| c.take().unwrap().unwrap().unwrap()).collect();
        for o in &outcomes {
            assert_eq!(o.coalesced_with, 2);
            assert_eq!(fingerprint(&o.report), fingerprint(&outcomes[0].report));
        }

        let serial = SessionRegistry::new(ServiceConfig::default());
        serial.create("s", request(&[("a", 1.0), ("b", 2.0), ("c", 1.0)], &[("a", 1.0)])).unwrap();
        serial.explain("s", None).unwrap();
        let mut last = None;
        for d in &deltas {
            last = Some(serial.delta("s", d.clone(), None).unwrap());
        }
        assert_eq!(
            fingerprint(&outcomes[0].report),
            fingerprint(&last.unwrap().report),
            "coalesced batch diverged from serial replay"
        );
    }

    #[test]
    fn failed_merge_replays_individually() {
        let registry = SessionRegistry::new(ServiceConfig::default());
        registry.create("s", request(&[("a", 1.0), ("b", 1.0)], &[("a", 1.0)])).unwrap();
        registry.explain("s", None).unwrap();
        let good = RelationDelta::new().insert(Side::Right, tuple("b", 1.0));
        let bad = RelationDelta::new().delete(Side::Left, 99);
        let slot = registry.slot("s").unwrap();
        let cells: Vec<Arc<TicketCell>> = (0..2).map(|_| Arc::new(TicketCell::default())).collect();
        {
            let mut state = lock_state(&slot).unwrap();
            let batch = vec![
                Ticket {
                    delta: good.clone(),
                    deadline: None,
                    request_id: None,
                    result: Arc::clone(&cells[0]),
                },
                Ticket {
                    delta: bad,
                    deadline: None,
                    request_id: None,
                    result: Arc::clone(&cells[1]),
                },
            ];
            let counters = DuraCounters::default();
            let ctx = ServeCtx {
                record: false,
                mode: DurabilityMode::BestEffort,
                counters: &counters,
                timing: false,
            };
            serve_batch(&mut state, batch, &ctx);
        }
        let good_outcome = cells[0].take().unwrap().unwrap().unwrap();
        assert_eq!(good_outcome.coalesced_with, 0, "fallback runs tickets alone");
        let bad_outcome = cells[1].take().unwrap().unwrap();
        assert!(matches!(bad_outcome, Err(ServiceError::Delta(_))));

        // Final state equals serial: good applied, bad rejected.
        let serial = SessionRegistry::new(ServiceConfig::default());
        serial.create("s", request(&[("a", 1.0), ("b", 1.0)], &[("a", 1.0)])).unwrap();
        serial.explain("s", None).unwrap();
        let serial_outcome = serial.delta("s", good, None).unwrap();
        assert_eq!(
            fingerprint(&registry.report("s").unwrap()),
            fingerprint(&serial_outcome.report)
        );
    }

    #[test]
    fn eviction_prefers_lru_and_spares_the_mru() {
        // Measure one explained session's footprint, then budget for two
        // and a half of them: the third explain must evict exactly the LRU.
        let probe = SessionRegistry::new(ServiceConfig::default());
        probe.create("p", request(&[("x", 1.0), ("y", 2.0)], &[("x", 1.0)])).unwrap();
        probe.explain("p", None).unwrap();
        let per_session = probe.total_footprint();
        assert!(per_session > 0);

        let registry = SessionRegistry::new(ServiceConfig {
            memory_budget: Some(per_session * 5 / 2),
            ..ServiceConfig::default()
        });
        for name in ["a", "b", "c"] {
            registry.create(name, request(&[("x", 1.0), ("y", 2.0)], &[("x", 1.0)])).unwrap();
            registry.explain(name, None).unwrap();
        }
        let names: Vec<String> = registry.list().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["b", "c"], "LRU \"a\" must be evicted");
        assert_eq!(registry.stats().evictions, 1);
        // The evicted session answers NotFound; re-creating round-trips to
        // the same fingerprint as the survivor sessions' creation path.
        assert!(matches!(registry.explain("a", None), Err(ServiceError::SessionNotFound(_))));
        registry.create("a", request(&[("x", 1.0), ("y", 2.0)], &[("x", 1.0)])).unwrap();
        let recreated = registry.explain("a", None).unwrap();
        // That explain re-enforced the budget, evicting the next LRU ("b");
        // "c" survives alongside the re-created "a" and their identical
        // relations produce identical fingerprints.
        let reference = registry.report("c").unwrap();
        assert_eq!(fingerprint(&recreated), fingerprint(&reference));
    }

    #[test]
    fn delta_log_records_applied_order() {
        let registry =
            SessionRegistry::new(ServiceConfig { record_deltas: true, ..ServiceConfig::default() });
        registry.create("s", request(&[("a", 1.0)], &[("a", 1.0)])).unwrap();
        registry.explain("s", None).unwrap();
        registry
            .delta("s", RelationDelta::new().insert(Side::Left, tuple("b", 1.0)), None)
            .unwrap();
        let err =
            registry.delta("s", RelationDelta::new().delete(Side::Left, 9), None).unwrap_err();
        assert!(matches!(err, ServiceError::Delta(_)));
        registry.delta("s", RelationDelta::new().delete(Side::Left, 1), None).unwrap();
        let log = registry.delta_log("s").unwrap();
        assert_eq!(log.len(), 2, "failed deltas are not logged");
        assert_eq!(log[0].ops.len(), 1);
    }

    #[test]
    fn empty_relations_and_drain_to_empty_never_panic() {
        // Wire-reachable degenerate inputs: sessions may legitimately be
        // created empty, be drained to empty by deltas, and grow back.
        // Every step must answer with a report or a typed error — never a
        // worker panic.
        let registry = SessionRegistry::new(ServiceConfig::default());
        registry.create("e", request(&[], &[])).unwrap();
        let report = registry.explain("e", None).unwrap();
        assert!(report.complete);
        assert!(report.explanations.is_empty());
        // Grow from empty…
        let grown = registry
            .delta(
                "e",
                RelationDelta::new()
                    .insert(Side::Left, tuple("a", 1.0))
                    .insert(Side::Right, tuple("a", 1.0)),
                None,
            )
            .unwrap();
        assert!(grown.report.complete);
        // …drain back to empty…
        let drained = registry
            .delta("e", RelationDelta::new().delete(Side::Left, 0).delete(Side::Right, 0), None)
            .unwrap();
        assert!(drained.report.complete);
        assert!(drained.report.explanations.is_empty());
        // …and deltas against the empty state still type their errors.
        let err =
            registry.delta("e", RelationDelta::new().delete(Side::Left, 0), None).unwrap_err();
        assert!(matches!(err, ServiceError::Delta(_)));
        // One-sided emptiness explains everything on the populated side.
        registry.create("one", request(&[("a", 1.0), ("b", 1.0)], &[])).unwrap();
        let one = registry.explain("one", None).unwrap();
        assert!(one.complete);
        assert_eq!(one.explanations.len(), 2);
    }

    fn durable_config(tag: &str) -> (std::path::PathBuf, ServiceConfig) {
        let dir = std::env::temp_dir().join(format!("e3d-reg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServiceConfig {
            durability: Some(DurabilityConfig::new(&dir)),
            ..ServiceConfig::default()
        };
        (dir, config)
    }

    #[test]
    fn spill_then_transparent_recovery_is_fingerprint_identical() {
        // Budget for ~2.5 sessions, durability on: the eviction of "a" must
        // spill it, and the next request naming "a" must recover it with
        // the exact report it last served.
        let probe = SessionRegistry::new(ServiceConfig::default());
        probe.create("p", request(&[("x", 1.0), ("y", 2.0)], &[("x", 1.0)])).unwrap();
        probe.explain("p", None).unwrap();
        let per_session = probe.total_footprint();

        let (dir, mut config) = durable_config("spill");
        config.memory_budget = Some(per_session * 5 / 2);
        let registry = SessionRegistry::new(config);
        for name in ["a", "b", "c"] {
            registry.create(name, request(&[("x", 1.0), ("y", 2.0)], &[("x", 1.0)])).unwrap();
            registry.explain(name, None).unwrap();
        }
        let expected = fingerprint(&registry.report("c").unwrap());
        let resident: Vec<String> = registry.list().into_iter().map(|s| s.name).collect();
        assert_eq!(resident, vec!["b", "c"], "LRU \"a\" must be evicted");
        assert_eq!(registry.stats().spills, 1);
        // Transparent recovery: "a" answers again, with the same report
        // the identical sessions "b"/"c" hold.
        let recovered = registry.report("a").unwrap();
        assert_eq!(fingerprint(&recovered), expected);
        assert_eq!(registry.stats().recoveries, 1);
        // Re-creating a spilled name conflicts rather than shadowing it.
        let (_, config2) = {
            let c = ServiceConfig {
                durability: Some(DurabilityConfig::new(&dir)),
                ..ServiceConfig::default()
            };
            (dir.clone(), c)
        };
        let fresh = SessionRegistry::new(config2);
        assert!(matches!(
            fresh.create("a", request(&[("x", 1.0)], &[])),
            Err(ServiceError::SessionExists(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_after_deltas_replays_the_wal_suffix() {
        let (dir, config) = durable_config("replay");
        let deltas = [
            RelationDelta::new().insert(Side::Right, tuple("b", 2.0)),
            RelationDelta::new().update(Side::Right, 0, tuple("a", 2.0)),
            RelationDelta::new().delete(Side::Left, 1),
        ];
        let expected = {
            let registry = SessionRegistry::new(config.clone());
            registry
                .create("s", request(&[("a", 1.0), ("b", 2.0), ("c", 1.0)], &[("a", 1.0)]))
                .unwrap();
            registry.explain("s", None).unwrap();
            let mut last = None;
            for d in &deltas {
                last = Some(registry.delta("s", d.clone(), None).unwrap().report);
            }
            assert_eq!(
                registry.list().iter().find(|s| s.name == "s").unwrap().deltas_logged,
                3,
                "every applied delta must be logged"
            );
            fingerprint(&last.unwrap())
            // Registry dropped without any flush — recovery must work off
            // the genesis/explain snapshot plus the WAL alone.
        };
        let recovered = SessionRegistry::new(config);
        assert_eq!(fingerprint(&recovered.report("s").unwrap()), expected);
        assert_eq!(recovered.stats().recoveries, 1);
        // The recovered session keeps serving (and logging) deltas.
        recovered
            .delta("s", RelationDelta::new().insert(Side::Left, tuple("d", 1.0)), None)
            .unwrap();
        assert_eq!(recovered.list().iter().find(|s| s.name == "s").unwrap().deltas_logged, 4);
        // Dropping a durable session removes its disk state too.
        recovered.drop_session("s").unwrap();
        assert!(matches!(recovered.report("s"), Err(ServiceError::SessionNotFound(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drop_of_spilled_session_removes_disk_state() {
        let (dir, config) = durable_config("dropspill");
        {
            let registry = SessionRegistry::new(config.clone());
            registry.create("s", request(&[("a", 1.0)], &[("a", 1.0)])).unwrap();
            registry.explain("s", None).unwrap();
        }
        // Non-resident ("spilled" across process lifetimes): drop by name.
        let registry = SessionRegistry::new(config);
        registry.drop_session("s").unwrap();
        assert!(matches!(registry.report("s"), Err(ServiceError::SessionNotFound(_))));
        assert!(matches!(registry.drop_session("s"), Err(ServiceError::SessionNotFound(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_shape_token_is_a_typed_conflict() {
        // The delta TOCTOU regression: shapes read, session dropped and
        // re-created with different relations, delta applied — the stale
        // token must be refused, never applied to shapes it wasn't parsed
        // against.
        let registry = SessionRegistry::new(ServiceConfig::default());
        registry.create("s", request(&[("a", 1.0)], &[("a", 1.0)])).unwrap();
        registry.explain("s", None).unwrap();
        let (_, _, token) = registry.shapes_tagged("s").unwrap();
        // Same incarnation: the token validates and the delta applies.
        registry
            .delta_checked(
                "s",
                RelationDelta::new().insert(Side::Right, tuple("b", 1.0)),
                None,
                Some(token),
            )
            .unwrap();
        // Re-create with a different schema.
        registry.drop_session("s").unwrap();
        let mut alt_left = canon("Q1", &[("a", 1.0)]);
        alt_left.schema = Schema::from_pairs(&[("kk", ValueType::Str)]);
        alt_left.key_attrs = vec!["kk".to_string()];
        let mut alt_right = canon("Q2", &[("a", 1.0)]);
        alt_right.schema = Schema::from_pairs(&[("kk", ValueType::Str)]);
        alt_right.key_attrs = vec!["kk".to_string()];
        registry
            .create(
                "s",
                CreateRequest {
                    left: alt_left,
                    right: alt_right,
                    matches: AttributeMatches::single_equivalent("kk", "kk"),
                    config: SessionConfig::default(),
                },
            )
            .unwrap();
        registry.explain("s", None).unwrap();
        let stale = registry.delta_checked(
            "s",
            RelationDelta::new().insert(Side::Right, tuple("c", 1.0)),
            None,
            Some(token),
        );
        assert!(matches!(stale, Err(ServiceError::ShapeConflict(_))), "got {stale:?}");
        assert_eq!(ServiceError::ShapeConflict("s".into()).http_status().0, 409);
        // An untagged delta (no token) still applies — validation is
        // opt-in, and the fresh token round-trips.
        let (_, _, fresh) = registry.shapes_tagged("s").unwrap();
        assert_ne!(fresh, token, "different shapes must produce a different token");
        registry
            .delta_checked(
                "s",
                RelationDelta::new().insert(Side::Right, tuple("c", 1.0)),
                None,
                Some(fresh),
            )
            .unwrap();
    }

    #[test]
    fn coalesce_window_batches_concurrent_deltas() {
        let registry = Arc::new(SessionRegistry::new(ServiceConfig {
            coalesce_window: Some(Duration::from_millis(250)),
            ..ServiceConfig::default()
        }));
        registry.create("s", request(&[("a", 1.0), ("b", 2.0)], &[("a", 1.0)])).unwrap();
        registry.explain("s", None).unwrap();
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let registry = Arc::clone(&registry);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    registry.delta(
                        "s",
                        RelationDelta::new().insert(Side::Right, tuple(&format!("t{i}"), 1.0)),
                        None,
                    )
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap().unwrap();
        }
        let stats = registry.stats();
        assert_eq!(stats.deltas_applied, 4);
        // All four start inside one 250ms window, so at least one ticket
        // must have piggybacked on another's run.
        assert!(stats.coalesced_deltas >= 1, "window produced no batching: {stats:?}");
    }

    #[test]
    fn sharded_index_keeps_eviction_global() {
        // Many shards, sessions hashing to different stripes: the LRU
        // choice must still be the global one (the unsharded registry's
        // choice), and the budget must apply to the global total.
        let probe = SessionRegistry::new(ServiceConfig::default());
        probe.create("p", request(&[("x", 1.0), ("y", 2.0)], &[("x", 1.0)])).unwrap();
        probe.explain("p", None).unwrap();
        let per_session = probe.total_footprint();

        let registry = SessionRegistry::new(ServiceConfig {
            memory_budget: Some(per_session * 5 / 2),
            shards: 64,
            ..ServiceConfig::default()
        });
        assert_eq!(registry.stats().shards, 64);
        for name in ["a", "b", "c"] {
            registry.create(name, request(&[("x", 1.0), ("y", 2.0)], &[("x", 1.0)])).unwrap();
            registry.explain(name, None).unwrap();
        }
        let names: Vec<String> = registry.list().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["b", "c"], "globally-LRU \"a\" must be evicted across shards");
        assert_eq!(registry.stats().evictions, 1);
    }

    fn faulty_durable_config(
        tag: &str,
        plan: explain3d_durability::FaultPlan,
    ) -> (std::path::PathBuf, ServiceConfig, Arc<explain3d_durability::FaultInjector>) {
        let dir = std::env::temp_dir().join(format!("e3d-reg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let shim = explain3d_durability::FaultInjector::new(plan);
        shim.disarm();
        let mut durability = DurabilityConfig::new(&dir);
        durability.shim = Some(Arc::clone(&shim));
        let config = ServiceConfig {
            durability: Some(durability),
            reattach_interval: Duration::ZERO,
            ..ServiceConfig::default()
        };
        (dir, config, shim)
    }

    /// Every storage write fails with EIO while the injector is armed.
    fn wal_killer() -> explain3d_durability::FaultPlan {
        use explain3d_durability::{FaultKind, FaultOp, FaultRule, Trigger};
        explain3d_durability::FaultPlan {
            seed: 7,
            rules: vec![FaultRule {
                op: FaultOp::Write,
                trigger: Trigger::EveryNth(1),
                kind: FaultKind::Eio,
            }],
        }
    }

    #[test]
    fn wal_failure_degrades_then_reattaches_best_effort() {
        let (dir, config, shim) = faulty_durable_config("degrade", wal_killer());
        let registry = SessionRegistry::new(config.clone());
        registry.create("s", request(&[("a", 1.0), ("b", 2.0)], &[("a", 1.0)])).unwrap();
        registry.explain("s", None).unwrap();
        shim.arm();
        // The WAL append fails, but best-effort keeps serving — labelled.
        let degraded = registry
            .delta("s", RelationDelta::new().insert(Side::Right, tuple("b", 2.0)), None)
            .unwrap();
        assert_eq!(degraded.durability, Some("degraded"));
        let stats = registry.stats();
        assert_eq!((stats.wal_errors, stats.degraded_sessions), (1, 1));
        assert_eq!(registry.durability_status("s").unwrap(), Some("degraded"));
        shim.disarm();
        // The next drain re-attaches (fresh snapshot of the in-memory
        // state over the stale image), then logs normally.
        let healed = registry
            .delta("s", RelationDelta::new().insert(Side::Left, tuple("c", 1.0)), None)
            .unwrap();
        assert_eq!(healed.durability, Some("reconciled"));
        let stats = registry.stats();
        assert_eq!((stats.reattached, stats.degraded_sessions), (1, 0));
        let expected = fingerprint(&registry.report("s").unwrap());
        drop(registry);
        // Restart: the re-attach snapshot + fresh WAL recover everything,
        // including the delta applied while degraded.
        let recovered = SessionRegistry::new(config);
        assert_eq!(fingerprint(&recovered.report("s").unwrap()), expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn strict_mode_refuses_unlogged_writes_and_retries_exactly_once() {
        let (dir, mut config, shim) = faulty_durable_config("strict", wal_killer());
        config.durability_mode = DurabilityMode::Strict;
        config.record_deltas = true;
        let registry = SessionRegistry::new(config.clone());
        registry.create("s", request(&[("a", 1.0), ("b", 2.0)], &[("a", 1.0)])).unwrap();
        registry.explain("s", None).unwrap();
        shim.arm();
        let delta = RelationDelta::new().insert(Side::Right, tuple("b", 2.0));
        let refused = registry
            .delta_tagged("s", delta.clone(), None, None, Some("req-1".into()))
            .unwrap_err();
        assert!(matches!(refused, ServiceError::DurabilityUnavailable(_)), "got {refused:?}");
        assert_eq!(refused.http_status().0, 503);
        // Still degraded (re-attach keeps failing): the retry is refused
        // too — an ack, even a dedup ack, would promise durability strict
        // mode cannot give yet.
        let still = registry
            .delta_tagged("s", delta.clone(), None, None, Some("req-1".into()))
            .unwrap_err();
        assert!(matches!(still, ServiceError::DurabilityUnavailable(_)), "got {still:?}");
        shim.disarm();
        // Storage healed: re-attach succeeds and the retry is answered
        // from the dedup window — applied exactly once.
        let acked =
            registry.delta_tagged("s", delta.clone(), None, None, Some("req-1".into())).unwrap();
        assert!(acked.deduplicated, "retry must not re-apply");
        assert_eq!(acked.durability, Some("reconciled"));
        assert_eq!(registry.delta_log("s").unwrap().len(), 1, "applied exactly once");
        assert_eq!(registry.stats().dedup_hits, 2);
        // Fingerprint pinned to serial execution of a single apply.
        let oracle = SessionRegistry::new(ServiceConfig::default());
        oracle.create("s", request(&[("a", 1.0), ("b", 2.0)], &[("a", 1.0)])).unwrap();
        oracle.explain("s", None).unwrap();
        let serial = oracle.delta("s", delta.clone(), None).unwrap();
        assert_eq!(fingerprint(&acked.report), fingerprint(&serial.report));
        // Restart: the retry window survives recovery (it is in the
        // re-attach snapshot), so the same request_id still dedupes.
        drop(registry);
        let recovered = SessionRegistry::new(config);
        let replayed =
            recovered.delta_tagged("s", delta, None, None, Some("req-1".into())).unwrap();
        assert!(replayed.deduplicated, "window must survive recovery");
        assert_eq!(fingerprint(&replayed.report), fingerprint(&serial.report));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_durable_state_is_quarantined_not_deleted() {
        let (dir, config) = durable_config("quarantine");
        {
            let registry = SessionRegistry::new(config.clone());
            registry.create("s", request(&[("a", 1.0)], &[("a", 1.0)])).unwrap();
            registry.explain("s", None).unwrap();
        }
        let sdir = dir.join(explain3d_durability::session_dirname("s"));
        std::fs::write(sdir.join(explain3d_durability::SNAPSHOT_FILE), b"garbage").unwrap();
        let registry = SessionRegistry::new(config);
        // Corrupt state answers NotFound (quarantined), never a 500 loop.
        assert!(matches!(registry.report("s"), Err(ServiceError::SessionNotFound(_))));
        assert_eq!(registry.stats().quarantined, 1);
        // The bytes were renamed aside, not deleted…
        let quarantined: Vec<_> = dir
            .join(explain3d_durability::QUARANTINE_DIR)
            .read_dir()
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(quarantined.len(), 1);
        assert!(!sdir.exists());
        // …and the name is creatable again.
        registry.create("s", request(&[("a", 1.0)], &[("a", 1.0)])).unwrap();
        registry.explain("s", None).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_request_ids_in_one_batch_apply_once() {
        let registry =
            SessionRegistry::new(ServiceConfig { record_deltas: true, ..ServiceConfig::default() });
        registry.create("s", request(&[("a", 1.0), ("b", 2.0)], &[("a", 1.0)])).unwrap();
        registry.explain("s", None).unwrap();
        let delta = RelationDelta::new().insert(Side::Right, tuple("b", 2.0));
        let slot = registry.slot("s").unwrap();
        let cells: Vec<Arc<TicketCell>> = (0..2).map(|_| Arc::new(TicketCell::default())).collect();
        {
            let mut state = lock_state(&slot).unwrap();
            let batch = vec![
                Ticket {
                    delta: delta.clone(),
                    deadline: None,
                    request_id: Some("r".into()),
                    result: Arc::clone(&cells[0]),
                },
                Ticket {
                    delta: delta.clone(),
                    deadline: None,
                    request_id: Some("r".into()),
                    result: Arc::clone(&cells[1]),
                },
            ];
            let counters = DuraCounters::default();
            let ctx = ServeCtx {
                record: true,
                mode: DurabilityMode::BestEffort,
                counters: &counters,
                timing: false,
            };
            serve_batch(&mut state, batch, &ctx);
            assert_eq!(counters.dedup_hits.load(Ordering::Relaxed), 1);
        }
        let first = cells[0].take().unwrap().unwrap().unwrap();
        let second = cells[1].take().unwrap().unwrap().unwrap();
        assert!(!first.deduplicated && second.deduplicated);
        assert_eq!(fingerprint(&first.report), fingerprint(&second.report));
        assert_eq!(registry.delta_log("s").unwrap().len(), 1, "the twin applied once");
    }

    #[test]
    fn retry_window_is_bounded() {
        let mut window = RetryWindow::default();
        for i in 0..(RETRY_WINDOW_CAP + 10) {
            window.insert(format!("req-{i}"), i as u64);
        }
        assert_eq!(window.order.len(), RETRY_WINDOW_CAP);
        assert_eq!(window.by_id.len(), RETRY_WINDOW_CAP);
        assert!(!window.contains("req-0"), "oldest entries evicted");
        assert!(window.contains(&format!("req-{}", RETRY_WINDOW_CAP + 9)));
        // Round-trips through the snapshot encoding shape.
        let back = RetryWindow::from_pairs(window.to_pairs());
        assert_eq!(back.order, window.order);
    }

    #[test]
    fn per_request_deadline_is_scoped() {
        let registry = SessionRegistry::new(ServiceConfig::default());
        registry.create("s", request(&[("a", 1.0), ("b", 2.0)], &[("a", 1.0)])).unwrap();
        // Same deadline → same deterministic node budget → same report.
        let with_deadline = registry.explain("s", Some(Duration::from_millis(500))).unwrap();
        let default_again = registry.explain("s", None).unwrap();
        assert!(with_deadline.complete && default_again.complete);
        assert_eq!(fingerprint(&with_deadline), fingerprint(&default_again));
    }
}
