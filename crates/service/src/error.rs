//! Typed, wire-mappable service errors.
//!
//! Every failure a request can provoke — malformed JSON, an unknown
//! session, an out-of-range delta index, a saturated admission queue —
//! becomes a [`ServiceError`] long before it could panic a worker thread.
//! Each variant carries enough to render both a JSON error body and the
//! HTTP status it travels under.

use crate::json::Json;
use explain3d_incremental::DeltaError;
use std::fmt;

/// Everything that can go wrong serving a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The request body or a field in it could not be parsed.
    BadRequest(String),
    /// The named session does not exist (never created, dropped, or
    /// evicted under the memory budget).
    SessionNotFound(String),
    /// A create targeted a name that is already registered.
    SessionExists(String),
    /// A delta referenced a tuple index outside the relation it addressed.
    Delta(DeltaError),
    /// The session exists but has no report yet (nothing explained).
    NoReport(String),
    /// The admission queue is full: the request was shed, try again later.
    Overloaded,
    /// The requested HTTP method/path pair is not part of the protocol.
    NotFound(String),
    /// The request exceeded a hard protocol limit (body size, header
    /// count, …).
    TooLarge(String),
    /// A delta was parsed against session shapes that no longer exist:
    /// the session was dropped and re-created (with different relations)
    /// between the shape read and the apply. Retry against the fresh
    /// session.
    ShapeConflict(String),
    /// The peer went silent mid-request and the connection timed out.
    Timeout(String),
    /// Strict durability mode: the session's storage is degraded and the
    /// write could not be logged, so it is refused rather than acked
    /// without durability. Retry after the `Retry-After` hint.
    DurabilityUnavailable(String),
    /// An internal invariant failed (e.g. a poisoned session lock after a
    /// worker panic). The worker survives and reports it instead of dying.
    Internal(String),
}

impl ServiceError {
    /// Short machine-readable error code (stable across messages).
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::BadRequest(_) => "bad_request",
            ServiceError::SessionNotFound(_) => "session_not_found",
            ServiceError::SessionExists(_) => "session_exists",
            ServiceError::Delta(_) => "delta_out_of_range",
            ServiceError::NoReport(_) => "no_report",
            ServiceError::Overloaded => "overloaded",
            ServiceError::NotFound(_) => "not_found",
            ServiceError::TooLarge(_) => "too_large",
            ServiceError::ShapeConflict(_) => "shape_conflict",
            ServiceError::Timeout(_) => "timeout",
            ServiceError::DurabilityUnavailable(_) => "durability_unavailable",
            ServiceError::Internal(_) => "internal",
        }
    }

    /// The HTTP status this error travels under.
    pub fn http_status(&self) -> (u16, &'static str) {
        match self {
            ServiceError::BadRequest(_) | ServiceError::Delta(_) => (400, "Bad Request"),
            ServiceError::SessionNotFound(_) | ServiceError::NotFound(_) => (404, "Not Found"),
            ServiceError::SessionExists(_) => (409, "Conflict"),
            ServiceError::NoReport(_) => (409, "Conflict"),
            ServiceError::TooLarge(_) => (413, "Payload Too Large"),
            ServiceError::ShapeConflict(_) => (409, "Conflict"),
            ServiceError::Timeout(_) => (408, "Request Timeout"),
            ServiceError::Overloaded => (429, "Too Many Requests"),
            ServiceError::DurabilityUnavailable(_) => (503, "Service Unavailable"),
            ServiceError::Internal(_) => (500, "Internal Server Error"),
        }
    }

    /// The JSON error body.
    pub fn to_json(&self) -> Json {
        Json::obj().set("error", self.code()).set("message", self.to_string())
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServiceError::SessionNotFound(name) => write!(f, "no session named {name:?}"),
            ServiceError::SessionExists(name) => {
                write!(f, "session {name:?} already exists")
            }
            ServiceError::Delta(e) => write!(f, "{e}"),
            ServiceError::NoReport(name) => {
                write!(f, "session {name:?} has not been explained yet")
            }
            ServiceError::Overloaded => {
                write!(f, "admission queue full, request shed — retry later")
            }
            ServiceError::NotFound(what) => write!(f, "no such route: {what}"),
            ServiceError::TooLarge(what) => write!(f, "request too large: {what}"),
            ServiceError::ShapeConflict(name) => write!(
                f,
                "session {name:?} was re-created with different shapes while this \
                 delta was in flight — retry against the current session"
            ),
            ServiceError::Timeout(what) => write!(f, "request timed out: {what}"),
            ServiceError::DurabilityUnavailable(name) => write!(
                f,
                "session {name:?} cannot log writes durably right now — \
                 retry with the same request_id"
            ),
            ServiceError::Internal(what) => write!(f, "internal error: {what}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<DeltaError> for ServiceError {
    fn from(e: DeltaError) -> Self {
        ServiceError::Delta(e)
    }
}

impl From<crate::json::JsonError> for ServiceError {
    fn from(e: crate::json::JsonError) -> Self {
        ServiceError::BadRequest(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_and_codes_are_stable() {
        assert_eq!(ServiceError::Overloaded.http_status().0, 429);
        assert_eq!(ServiceError::SessionNotFound("x".into()).http_status().0, 404);
        assert_eq!(ServiceError::SessionExists("x".into()).http_status().0, 409);
        assert_eq!(ServiceError::BadRequest("y".into()).http_status().0, 400);
        assert_eq!(ServiceError::TooLarge("z".into()).http_status().0, 413);
        let body = ServiceError::Overloaded.to_json().to_string();
        assert!(body.contains("\"error\":\"overloaded\""));
    }
}
