//! A std-only HTTP/1.1 JSON server over [`std::net::TcpListener`].
//!
//! The serving architecture mirrors the offline-workspace discipline of
//! the rest of the repo: no async runtime, no hyper — a blocking accept
//! loop that hands each connection to a fixed
//! [`explain3d_parallel::TaskPool`]. Admission control is the pool's
//! bounded queue: when it is full, the accept loop answers
//! `429 Too Many Requests` *itself* (a constant-cost write) and closes, so
//! overload sheds instead of queueing without bound.
//!
//! ## Routes
//!
//! | Method & path                  | Meaning                                |
//! |--------------------------------|----------------------------------------|
//! | `POST /sessions/{name}`        | create a session (relation upload)     |
//! | `POST /sessions/{name}/explain`| cold explain                           |
//! | `POST /sessions/{name}/delta`  | apply a delta (coalesced under load)   |
//! | `GET /sessions/{name}/report`  | last stored report                     |
//! | `DELETE /sessions/{name}`      | drop the session                       |
//! | `GET /sessions`                | list sessions + footprints             |
//! | `GET /healthz`                 | liveness probe                         |
//!
//! Connections are keep-alive (one worker drives one connection at a time);
//! per-request MILP deadlines arrive as `deadline_ms` in the body and are
//! scoped to that run. Every parse or protocol failure becomes a typed
//! JSON error response — a malformed request can never panic a worker.

use crate::error::ServiceError;
use crate::json::Json;
use crate::registry::{ServiceConfig, SessionRegistry};
use crate::wire;
use explain3d_parallel::TaskPool;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads (each drives one connection at a time).
    pub threads: usize,
    /// Bounded admission queue: connections waiting for a worker beyond
    /// this are shed with a 429.
    pub queue_capacity: usize,
    /// Hard cap on request body bytes.
    pub max_body_bytes: usize,
    /// Socket read/write timeout (also bounds how long an idle keep-alive
    /// connection can hold a worker).
    pub io_timeout: Duration,
    /// Registry configuration (memory budget, delta recording).
    pub service: ServiceConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: explain3d_parallel::max_threads(),
            queue_capacity: 64,
            max_body_bytes: 64 << 20,
            io_timeout: Duration::from_secs(10),
            service: ServiceConfig::default(),
        }
    }
}

/// A bound (but not yet accepting) server.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    registry: Arc<SessionRegistry>,
    config: ServerConfig,
}

/// Handle to a server running on a background accept thread.
pub struct ServerHandle {
    addr: SocketAddr,
    registry: Arc<SessionRegistry>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and builds the registry; call
    /// [`run`](Server::run) or [`spawn`](Server::spawn) to start serving.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let registry = Arc::new(SessionRegistry::new(config.service.clone()));
        Ok(Server { listener, local_addr, registry, config })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared session registry (usable in-process alongside the wire).
    pub fn registry(&self) -> Arc<SessionRegistry> {
        Arc::clone(&self.registry)
    }

    /// How long the accept loop sleeps between polls when no connection is
    /// waiting (the listener runs non-blocking so a signal-driven `stop`
    /// is honoured promptly even if no connection ever arrives).
    const ACCEPT_POLL: Duration = Duration::from_millis(5);

    /// Runs the accept loop on the calling thread until `stop` is set,
    /// then drains: admitted connections finish, and every durable session
    /// is flushed to a fresh snapshot before this returns.
    pub fn run(self, stop: &AtomicBool) {
        let pool = TaskPool::new(self.config.threads, self.config.queue_capacity);
        let nonblocking = self.listener.set_nonblocking(true).is_ok();
        while !stop.load(Ordering::Relaxed) {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Self::ACCEPT_POLL);
                    continue;
                }
                Err(_) => {
                    // A persistent accept failure (e.g. EMFILE when the
                    // process is out of fds) must back off like WouldBlock
                    // does, not spin the accept thread at 100%.
                    std::thread::sleep(Self::ACCEPT_POLL);
                    continue;
                }
            };
            // Whether an accepted socket inherits the listener's
            // non-blocking mode is platform-specific; workers need it
            // blocking either way.
            if nonblocking && stream.set_nonblocking(false).is_err() {
                continue;
            }
            let _ = stream.set_read_timeout(Some(self.config.io_timeout));
            let _ = stream.set_write_timeout(Some(self.config.io_timeout));
            // Responses are written whole; Nagle only adds delayed-ACK
            // stalls to the small keep-alive exchanges.
            let _ = stream.set_nodelay(true);
            let registry = Arc::clone(&self.registry);
            let max_body = self.config.max_body_bytes;
            // A second handle to the same socket, kept out of the job so
            // the accept thread can still answer if the queue sheds it.
            let shed_handle = stream.try_clone().ok();
            if let Err(saturated) = pool.try_execute(move || {
                serve_connection(stream, &registry, max_body);
            }) {
                // Queue full: 429 from the accept thread (constant cost —
                // a short bounded write), then drop both handles.
                if let Some(handle) = shed_handle {
                    shed_connection(handle);
                }
                drop(saturated);
            }
        }
        // Graceful drain: stop accepting (the loop exited), finish every
        // admitted connection (pool drop joins the workers), then snapshot
        // all durable sessions so recovery needs no WAL replay.
        drop(pool);
        self.registry.flush_all();
    }

    /// Spawns the accept loop on a background thread and returns a handle.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr;
        let registry = Arc::clone(&self.registry);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("explain3d-accept".into())
            .spawn(move || self.run(&stop2))
            .expect("spawning the accept thread");
        ServerHandle { addr, registry, stop, accept_thread: Some(accept_thread) }
    }
}

impl ServerHandle {
    /// The server's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared registry.
    pub fn registry(&self) -> Arc<SessionRegistry> {
        Arc::clone(&self.registry)
    }

    /// Stops the accept loop (in-flight requests finish first).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

/// One parsed request.
struct Request {
    method: String,
    path: String,
    body: String,
    keep_alive: bool,
}

/// Hard cap on one request or header line.
const MAX_LINE_BYTES: u64 = 8192;

/// Reads one `\n`-terminated line, never buffering more than
/// [`MAX_LINE_BYTES`] + 1 bytes: a newline-free flood fills at most one
/// bounded buffer (and then fails the caller's length check) instead of
/// growing a `String` without limit.
fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
) -> std::io::Result<usize> {
    reader.by_ref().take(MAX_LINE_BYTES + 1).read_line(line)
}

/// Reads one request off the connection. `Ok(None)` is a clean EOF (client
/// closed between requests); errors are protocol violations the caller
/// answers with a 400-class response where possible.
fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body: usize,
) -> Result<Option<Request>, ServiceError> {
    let mut line = String::new();
    match read_line_bounded(reader, &mut line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(_) => return Ok(None), // timeout or reset: drop the connection
    }
    if line.len() as u64 > MAX_LINE_BYTES {
        return Err(ServiceError::TooLarge("request line".into()));
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(ServiceError::BadRequest("malformed request line".into()));
    };
    let method = method.to_ascii_uppercase();
    let path = path.to_string();

    let mut content_length: usize = 0;
    let mut keep_alive = true;
    for _ in 0..64 {
        let mut header = String::new();
        match read_line_bounded(reader, &mut header) {
            Ok(0) => return Err(ServiceError::BadRequest("truncated headers".into())),
            Ok(_) => {}
            Err(_) => return Err(ServiceError::BadRequest("unreadable headers".into())),
        }
        if header.len() as u64 > MAX_LINE_BYTES {
            return Err(ServiceError::TooLarge("header line".into()));
        }
        let trimmed = header.trim_end();
        if trimmed.is_empty() {
            let body = if content_length > 0 {
                let mut buf = vec![0u8; content_length];
                reader
                    .read_exact(&mut buf)
                    .map_err(|_| ServiceError::BadRequest("truncated body".into()))?;
                String::from_utf8(buf)
                    .map_err(|_| ServiceError::BadRequest("body is not UTF-8".into()))?
            } else {
                String::new()
            };
            return Ok(Some(Request { method, path, body, keep_alive }));
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(ServiceError::BadRequest("malformed header".into()));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| ServiceError::BadRequest("bad Content-Length".into()))?;
                if content_length > max_body {
                    return Err(ServiceError::TooLarge(format!(
                        "body of {content_length} bytes (limit {max_body})"
                    )));
                }
            }
            "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
            "transfer-encoding" => {
                return Err(ServiceError::BadRequest(
                    "chunked transfer encoding is not supported; send Content-Length".into(),
                ))
            }
            _ => {}
        }
    }
    Err(ServiceError::TooLarge("more than 64 headers".into()))
}

fn write_response(
    stream: &mut TcpStream,
    status: (u16, &str),
    body: &Json,
    keep_alive: bool,
) -> std::io::Result<()> {
    let body = body.to_string();
    // One write per response: head and body split across two segments
    // interacts badly with Nagle + delayed ACKs on the client side.
    let mut message = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status.0,
        status.1,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    message.push_str(&body);
    stream.write_all(message.as_bytes())?;
    stream.flush()
}

/// Writes a bare 429 — used by the accept thread when the admission queue
/// is full, before the connection ever reaches a worker.
pub(crate) fn shed_connection(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let _ = write_response(
        &mut stream,
        ServiceError::Overloaded.http_status(),
        &ServiceError::Overloaded.to_json(),
        false,
    );
}

/// Drives one connection: reads requests until the peer closes, answering
/// each. Never panics on any input; protocol violations get a typed error
/// response and close the connection.
fn serve_connection(stream: TcpStream, registry: &SessionRegistry, max_body: usize) {
    let Ok(reader_stream) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = stream;
    loop {
        match read_request(&mut reader, max_body) {
            Ok(None) => return,
            Ok(Some(req)) => {
                let keep_alive = req.keep_alive;
                // A panic in a handler answers 500 instead of unwinding
                // into the pool: the worker (and its session slot, which
                // the poisoned mutex marks) stays accounted for, and the
                // connection keeps its protocol state.
                let routed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    route(&req, registry)
                }))
                .unwrap_or_else(|_| Err(ServiceError::Internal("request handler panicked".into())));
                let (status, body) = match routed {
                    Ok(json) => ((200, "OK"), json),
                    Err(e) => (e.http_status(), e.to_json()),
                };
                if write_response(&mut writer, status, &body, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Err(e) => {
                let _ = write_response(&mut writer, e.http_status(), &e.to_json(), false);
                return;
            }
        }
    }
}

/// Splits `/sessions/{name}[/verb]` into its parts.
fn session_route(path: &str) -> Option<(&str, Option<&str>)> {
    let rest = path.strip_prefix("/sessions/")?;
    match rest.split_once('/') {
        None => (!rest.is_empty()).then_some((rest, None)),
        Some((name, verb)) => {
            (!name.is_empty() && !verb.contains('/')).then_some((name, Some(verb)))
        }
    }
}

/// Dispatches one request against the registry.
fn route(req: &Request, registry: &SessionRegistry) -> Result<Json, ServiceError> {
    let method = req.method.as_str();
    let path = req.path.split('?').next().unwrap_or(&req.path);
    match (method, path) {
        ("GET", "/healthz") => return Ok(Json::obj().set("ok", true)),
        ("GET", "/sessions") => {
            let sessions: Vec<Json> = registry
                .list()
                .into_iter()
                .map(|s| {
                    Json::obj()
                        .set("name", s.name)
                        .set("footprint_bytes", s.footprint)
                        .set("explained", s.explained)
                        .set("deltas_logged", s.deltas_logged as usize)
                })
                .collect();
            let stats = registry.stats();
            return Ok(Json::obj()
                .set("sessions", sessions)
                .set("total_footprint_bytes", registry.total_footprint())
                .set(
                    "stats",
                    Json::obj()
                        .set("creates", stats.creates)
                        .set("drops", stats.drops)
                        .set("evictions", stats.evictions)
                        .set("spills", stats.spills)
                        .set("recoveries", stats.recoveries)
                        .set("explains", stats.explains)
                        .set("deltas_applied", stats.deltas_applied)
                        .set("coalesced_deltas", stats.coalesced_deltas)
                        .set("reports", stats.reports),
                ));
        }
        _ => {}
    }
    let Some((name, verb)) = session_route(path) else {
        return Err(ServiceError::NotFound(format!("{method} {path}")));
    };
    match (method, verb) {
        ("POST", None) => {
            let create = wire::parse_create(&req.body)?;
            registry.create(name, create)?;
            Ok(Json::obj().set("created", name))
        }
        ("DELETE", None) => {
            registry.drop_session(name)?;
            Ok(Json::obj().set("dropped", name))
        }
        ("POST", Some("explain")) => {
            let deadline = wire::parse_explain(&req.body)?;
            let report = registry.explain(name, deadline)?;
            Ok(wire::emit_report(name, &report, 0))
        }
        ("POST", Some("delta")) => {
            let (left, right) = registry.shapes(name)?;
            let parsed = wire::parse_delta(&req.body, &left, &right)?;
            let outcome = registry.delta(name, parsed.delta, parsed.deadline)?;
            Ok(wire::emit_report(name, &outcome.report, outcome.coalesced_with))
        }
        ("GET", Some("report")) => {
            let report = registry.report(name)?;
            Ok(wire::emit_report(name, &report, 0))
        }
        _ => Err(ServiceError::NotFound(format!("{method} {path}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_routes_parse() {
        assert_eq!(session_route("/sessions/s1"), Some(("s1", None)));
        assert_eq!(session_route("/sessions/s1/delta"), Some(("s1", Some("delta"))));
        assert_eq!(session_route("/sessions/"), None);
        assert_eq!(session_route("/sessions/a/b/c"), None);
        assert_eq!(session_route("/health"), None);
    }
}
