//! A std-only, readiness-based HTTP/1.1 JSON server.
//!
//! One **event loop** (the thread that calls [`Server::run`]) owns every
//! socket: a [`Poller`] (raw `epoll`, or `poll(2)` as the portable
//! fallback) watches the nonblocking listener plus every connection fd,
//! and each connection walks a small state machine —
//!
//! ```text
//!   reading (head + body, incremental byte-bounded parse)
//!      └─ complete request ──▶ executing (on the TaskPool)
//!                                  └─ response ready ──▶ writing
//!                                                           └─ keep-alive ──▶ reading
//! ```
//!
//! Ready **requests** — never whole connections — are dispatched onto the
//! fixed [`explain3d_parallel::TaskPool`], so a slow MILP solve occupies
//! one worker while the event loop keeps serving every other socket; a
//! keep-alive connection costs a buffer, not a thread. Workers hand the
//! encoded response back through a completion queue and wake the loop via
//! a [`WakeSignal`] self-pipe. Admission control is unchanged in spirit:
//! when the pool's bounded queue is full the event loop answers
//! `429 Too Many Requests` itself (a constant-cost write) instead of
//! queueing without bound.
//!
//! ## Routes
//!
//! | Method & path                  | Meaning                                |
//! |--------------------------------|----------------------------------------|
//! | `POST /sessions/{name}`        | create a session (relation upload)     |
//! | `POST /sessions/{name}/explain`| cold explain                           |
//! | `POST /sessions/{name}/delta`  | apply a delta (coalesced under load)   |
//! | `GET /sessions/{name}/report`  | last stored report                     |
//! | `DELETE /sessions/{name}`      | drop the session                       |
//! | `GET /sessions`                | list sessions + registry stats         |
//! | `GET /healthz`                 | liveness probe                         |
//! | `GET /metrics`                 | Prometheus text exposition             |
//! | `GET /debug/trace/{id}`        | one retained trace as a span tree      |
//! | `GET /debug/slow?limit=N`      | the N slowest retained traces          |
//!
//! `{name}` is percent-decoded (`%2F` rejected), so the wire addresses
//! exactly the session a library caller names. Idle connections are
//! reaped after [`ServerConfig::io_timeout`]; a connection that went
//! silent **mid-request** is answered `408 Request Timeout` first. A
//! request executing on the pool is never timed out by the loop — MILP
//! deadlines govern it. Every parse or protocol failure becomes a typed
//! JSON error response — malformed input can never panic a worker.
//!
//! [`Poller`]: crate::poller::Poller
//! [`WakeSignal`]: explain3d_parallel::WakeSignal

use crate::error::ServiceError;
use crate::json::Json;
use crate::poller::{Backend, Event, Interest, Poller};
use crate::proto::{self, Parse, ParsedRequest};
use crate::registry::{ServiceConfig, SessionRegistry};
use crate::telemetry::TraceCtx;
use crate::wire;
use explain3d_parallel::{TaskPool, WakeSignal};
use explain3d_telemetry::{FinishedTrace, Trace, NO_PARENT};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing requests (not connections).
    pub threads: usize,
    /// Bounded admission queue: ready requests beyond this are shed with
    /// a 429.
    pub queue_capacity: usize,
    /// Hard cap on request body bytes.
    pub max_body_bytes: usize,
    /// I/O timeout. Reading: how long a connection may sit without
    /// progress before it is reaped (mid-request silences answer 408
    /// first). Writing: a **total** deadline for the whole response — a
    /// peer draining one byte at a time is cut, not kept alive by its
    /// trickle. Executing requests are exempt.
    pub io_timeout: Duration,
    /// Readiness backend (`epoll` on Linux, `poll` anywhere).
    pub backend: Backend,
    /// Hard cap on concurrently open connections; beyond it, accepts are
    /// answered 429 and closed.
    pub max_connections: usize,
    /// Registry configuration (memory budget, shards, delta recording).
    pub service: ServiceConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: explain3d_parallel::max_threads(),
            queue_capacity: 64,
            max_body_bytes: 64 << 20,
            io_timeout: Duration::from_secs(10),
            backend: Backend::auto(),
            max_connections: 16384,
            service: ServiceConfig::default(),
        }
    }
}

/// A bound (but not yet accepting) server.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    registry: Arc<SessionRegistry>,
    config: ServerConfig,
}

/// Handle to a server running on a background event-loop thread.
pub struct ServerHandle {
    addr: SocketAddr,
    registry: Arc<SessionRegistry>,
    stop: Arc<AtomicBool>,
    event_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and builds the registry; call
    /// [`run`](Server::run) or [`spawn`](Server::spawn) to start serving.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let registry = Arc::new(SessionRegistry::new(config.service.clone()));
        Ok(Server { listener, local_addr, registry, config })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared session registry (usable in-process alongside the wire).
    pub fn registry(&self) -> Arc<SessionRegistry> {
        Arc::clone(&self.registry)
    }

    /// Runs the event loop on the calling thread until `stop` is set, then
    /// drains: in-flight requests finish and their responses are written,
    /// and every durable session is flushed to a fresh snapshot before
    /// this returns.
    pub fn run(self, stop: &AtomicBool) {
        match EventLoop::new(self.listener, Arc::clone(&self.registry), &self.config) {
            Ok(mut event_loop) => event_loop.run(stop),
            Err(e) => eprintln!("explain3d-service: cannot start the event loop: {e}"),
        }
        // The event loop (and its pool, which drains queued jobs on drop)
        // is gone; snapshot all durable sessions so recovery needs no WAL
        // replay.
        self.registry.flush_all();
    }

    /// Spawns the event loop on a background thread and returns a handle.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr;
        let registry = Arc::clone(&self.registry);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let event_thread = std::thread::Builder::new()
            .name("explain3d-events".into())
            .spawn(move || self.run(&stop2))
            .expect("spawning the event-loop thread");
        ServerHandle { addr, registry, stop, event_thread: Some(event_thread) }
    }
}

impl ServerHandle {
    /// The server's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared registry.
    pub fn registry(&self) -> Arc<SessionRegistry> {
        Arc::clone(&self.registry)
    }

    /// Stops the event loop (in-flight requests finish first).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the parked poller with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.event_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.event_thread.take() {
            let _ = h.join();
        }
    }
}

/// Poller token of the listener.
const LISTENER_TOKEN: u64 = u64::MAX;
/// Poller token of the completion wake pipe.
const WAKE_TOKEN: u64 = u64::MAX - 1;
/// Upper bound on the poller wait, so the stop flag (set by a signal
/// handler with nothing to connect) is honoured promptly.
const WAIT_CAP: Duration = Duration::from_millis(50);
/// How often the idle-timeout sweep walks the connection table.
const SWEEP_EVERY: Duration = Duration::from_millis(100);
/// Read chunk size per readiness event (level-triggered: leftover bytes
/// re-arm the fd, so a bounded chunk never strands data).
const READ_CHUNK: usize = 16 * 1024;

#[cfg(unix)]
fn raw_fd<T: std::os::unix::io::AsRawFd>(t: &T) -> i32 {
    t.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd<T>(_t: &T) -> i32 {
    -1
}

/// Where a connection is in its request/response lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Accumulating head + body bytes of the next request.
    Reading,
    /// A request from this connection is executing on the pool; the fd is
    /// parked (no interest) until the response comes back.
    Executing,
    /// Writing the response; the payload says what happens after.
    Writing { keep_alive: bool },
}

struct Conn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    written: usize,
    phase: Phase,
    last_activity: Instant,
    interest: Interest,
    /// When the first byte of the in-progress request arrived — the trace
    /// epoch. Taken when the request finishes parsing.
    req_start: Option<Instant>,
    /// The request's trace, parked here while its response drains so the
    /// `write` span covers the actual socket writes.
    trace: Option<TraceCarry>,
}

/// A trace riding a connection through the write phase: sealed (and
/// pushed to the ring) when the last response byte hits the socket.
struct TraceCarry {
    trace: Trace,
    route: usize,
    write_span: u32,
}

/// A finished request: the worker pushes this and notifies the wake pipe.
struct Completion {
    slot: usize,
    gen: u64,
    response: Vec<u8>,
    keep_alive: bool,
    trace: Option<(Trace, usize)>,
}

/// State shared between the event loop and the pool workers.
struct Shared {
    completions: Mutex<Vec<Completion>>,
    wake: WakeSignal,
}

/// One connection slab slot. `gen` increments on every close, so a
/// completion for a connection that died while its request executed can
/// never be delivered to the slot's next tenant.
struct SlabEntry {
    gen: u64,
    conn: Option<Conn>,
}

struct EventLoop {
    listener: TcpListener,
    poller: Poller,
    pool: TaskPool,
    registry: Arc<SessionRegistry>,
    shared: Arc<Shared>,
    conns: Vec<SlabEntry>,
    free: Vec<usize>,
    active: usize,
    /// Requests dispatched to the pool whose completions have not been
    /// delivered yet (counts queued jobs too — every dispatched job pushes
    /// exactly one completion).
    inflight: usize,
    max_body: usize,
    io_timeout: Duration,
    max_connections: usize,
    accept_paused_until: Option<Instant>,
    last_sweep: Instant,
}

impl EventLoop {
    fn new(
        listener: TcpListener,
        registry: Arc<SessionRegistry>,
        config: &ServerConfig,
    ) -> std::io::Result<EventLoop> {
        listener.set_nonblocking(true)?;
        let mut poller = Poller::new(config.backend)?;
        let wake = WakeSignal::new()?;
        poller.register(raw_fd(&listener), LISTENER_TOKEN, Interest::READ)?;
        poller.register(wake.fd(), WAKE_TOKEN, Interest::READ)?;
        let pool = TaskPool::new(config.threads, config.queue_capacity);
        if let Some(tel) = registry.telemetry() {
            // Scrape-time sampling only; the pool itself stays untouched.
            tel.attach_pool(pool.monitor());
        }
        Ok(EventLoop {
            listener,
            poller,
            pool,
            registry,
            shared: Arc::new(Shared { completions: Mutex::new(Vec::new()), wake }),
            conns: Vec::new(),
            free: Vec::new(),
            active: 0,
            inflight: 0,
            max_body: config.max_body_bytes,
            io_timeout: config.io_timeout,
            max_connections: config.max_connections,
            accept_paused_until: None,
            last_sweep: Instant::now(),
        })
    }

    fn run(&mut self, stop: &AtomicBool) {
        let mut events: Vec<Event> = Vec::new();
        let mut batch: Vec<Event> = Vec::new();
        let mut draining = false;
        let mut drain_deadline = Instant::now();
        loop {
            if !draining && stop.load(Ordering::Relaxed) {
                // Graceful drain: stop accepting, finish every dispatched
                // request and flush its response, then leave. The deadline
                // bounds the drain against a stuck peer.
                draining = true;
                drain_deadline = Instant::now() + self.io_timeout;
                self.poller.deregister(raw_fd(&self.listener));
            }
            if draining {
                let flushing = self.conns.iter().any(|entry| {
                    matches!(&entry.conn, Some(c) if matches!(c.phase, Phase::Writing { .. }))
                });
                if (self.inflight == 0 && !flushing) || Instant::now() >= drain_deadline {
                    break;
                }
            }
            if self.poller.wait(&mut events, WAIT_CAP).is_err() {
                break;
            }
            let now = Instant::now();
            batch.clear();
            batch.extend(events.iter().copied());
            for ev in &batch {
                match ev.token {
                    LISTENER_TOKEN => {
                        if !draining {
                            self.accept_ready(now);
                        }
                    }
                    WAKE_TOKEN => {
                        self.shared.wake.drain();
                    }
                    token => self.conn_event(token as usize, *ev, now),
                }
            }
            self.deliver_completions(now);
            if now.duration_since(self.last_sweep) >= SWEEP_EVERY {
                self.last_sweep = now;
                self.sweep_timeouts(now);
                // Background re-attach for degraded durable sessions: idle
                // sessions heal without waiting for their next request.
                // Cheap when nothing is degraded (an atomic scan); when a
                // session does re-attach, the snapshot write happens under
                // try_lock, so a busy session is skipped, never blocked.
                self.registry.reattach_degraded();
                if self.accept_paused_until.is_some_and(|until| now >= until) {
                    self.accept_paused_until = None;
                    let _ = self.poller.register(
                        raw_fd(&self.listener),
                        LISTENER_TOKEN,
                        Interest::READ,
                    );
                }
            }
        }
    }

    // ---- accept path ----------------------------------------------------

    fn accept_ready(&mut self, now: Instant) {
        if self.accept_paused_until.is_some() {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.admit(stream, now),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // EMFILE and friends: pause accepting briefly instead
                    // of spinning on a level-triggered ready listener.
                    self.poller.deregister(raw_fd(&self.listener));
                    self.accept_paused_until = Some(now + WAIT_CAP);
                    break;
                }
            }
        }
    }

    fn admit(&mut self, stream: TcpStream, now: Instant) {
        if self.active >= self.max_connections {
            shed(stream);
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        // Responses are written whole; Nagle only adds delayed-ACK stalls
        // to the small keep-alive exchanges.
        let _ = stream.set_nodelay(true);
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.conns.push(SlabEntry { gen: 0, conn: None });
                self.conns.len() - 1
            }
        };
        if self.poller.register(raw_fd(&stream), slot as u64, Interest::READ).is_err() {
            self.free.push(slot);
            return;
        }
        self.conns[slot].conn = Some(Conn {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            written: 0,
            phase: Phase::Reading,
            last_activity: now,
            interest: Interest::READ,
            req_start: None,
            trace: None,
        });
        self.active += 1;
    }

    // ---- connection events ----------------------------------------------

    fn conn_event(&mut self, slot: usize, ev: Event, now: Instant) {
        let Some(phase) = self.conns.get(slot).and_then(|e| e.conn.as_ref()).map(|c| c.phase)
        else {
            return;
        };
        if ev.hangup {
            self.close(slot);
            return;
        }
        if ev.readable && phase == Phase::Reading {
            self.handle_read(slot, now);
        } else if ev.writable && matches!(phase, Phase::Writing { .. }) {
            self.continue_write(slot, now);
        }
    }

    fn handle_read(&mut self, slot: usize, now: Instant) {
        let mut eof = false;
        {
            let Some(conn) = self.conns.get_mut(slot).and_then(|e| e.conn.as_mut()) else {
                return;
            };
            let mut chunk = [0u8; READ_CHUNK];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.inbuf.extend_from_slice(&chunk[..n]);
                        conn.last_activity = now;
                        if n < chunk.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.close(slot);
                        return;
                    }
                }
            }
        }
        self.advance_parse(slot, now, eof);
    }

    /// Parses whatever is buffered while the connection is in the reading
    /// state. At most one request is dispatched — pipelined successors
    /// stay buffered until the response is written.
    fn advance_parse(&mut self, slot: usize, now: Instant, eof: bool) {
        let parse = {
            let Some(conn) = self.conns.get_mut(slot).and_then(|e| e.conn.as_mut()) else {
                return;
            };
            if conn.phase != Phase::Reading {
                return;
            }
            if conn.req_start.is_none() && !conn.inbuf.is_empty() {
                // First byte of a new request: the trace clock starts here.
                conn.req_start = Some(now);
            }
            proto::parse_request(&conn.inbuf, self.max_body)
        };
        match parse {
            Parse::NeedMore => {
                if eof {
                    let empty = self
                        .conns
                        .get_mut(slot)
                        .and_then(|e| e.conn.as_mut())
                        .map(|c| c.inbuf.is_empty())
                        .unwrap_or(true);
                    if empty {
                        // Clean EOF between requests.
                        self.close(slot);
                    } else {
                        // The peer closed mid-request: tell it (best
                        // effort — it may only have half-closed).
                        let e = ServiceError::BadRequest("truncated request".into());
                        self.respond_error(slot, e, now);
                    }
                }
            }
            Parse::Complete { request, consumed } => {
                let epoch = {
                    let Some(conn) = self.conns.get_mut(slot).and_then(|e| e.conn.as_mut()) else {
                        return;
                    };
                    conn.inbuf.drain(..consumed);
                    conn.phase = Phase::Executing;
                    conn.req_start.take().unwrap_or(now)
                };
                self.set_interest(slot, Interest::NONE);
                let trace = self.registry.telemetry().map(|tel| {
                    let mut trace = tel.begin_trace(epoch);
                    let parsed_at = trace.now_us();
                    trace.record("parse", NO_PARENT, 0, parsed_at);
                    (trace, route_index(&request))
                });
                self.dispatch(slot, request, trace, now);
            }
            Parse::Invalid(e) => self.respond_error(slot, e, now),
        }
    }

    fn dispatch(
        &mut self,
        slot: usize,
        request: ParsedRequest,
        trace: Option<(Trace, usize)>,
        now: Instant,
    ) {
        let Some(gen) = self.conns.get(slot).map(|e| e.gen) else {
            return;
        };
        let registry = Arc::clone(&self.registry);
        let shared = Arc::clone(&self.shared);
        let keep_alive = request.keep_alive;
        let queued_at = trace.as_ref().map(|(t, _)| t.now_us());
        let job = move || {
            let mut trace = trace;
            let mut handle_span = NO_PARENT;
            if let (Some((t, _)), Some(from)) = (trace.as_mut(), queued_at) {
                // The gap between dispatch and this line is time spent in
                // the pool's admission queue.
                let picked_up = t.now_us();
                t.record("queue_wait", NO_PARENT, from, picked_up);
                if let Some(tel) = registry.telemetry() {
                    tel.queue_wait_us.observe(picked_up.saturating_sub(from));
                }
                handle_span = t.start("handle", NO_PARENT);
            }
            // A panic in a handler answers 500 instead of unwinding into
            // the pool: the worker (and its session slot, which the
            // poisoned mutex marks) stays accounted for.
            let routed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                route(&request, &registry, trace.as_mut().map(|(t, _)| t), handle_span)
            }))
            .unwrap_or_else(|_| Err(ServiceError::Internal("request handler panicked".into())));
            if let Some((t, _)) = trace.as_mut() {
                t.end(handle_span);
            }
            let trace_id = trace.as_ref().map(|(t, _)| format!("{:016x}", t.id));
            let response = match routed {
                Ok(RouteReply::Json(json)) => {
                    let extra: Vec<(&str, String)> =
                        trace_id.map(|id| ("X-Trace-Id", id)).into_iter().collect();
                    proto::encode_response_with((200, "OK"), &extra, &json, keep_alive)
                }
                Ok(RouteReply::Text { content_type, body }) => {
                    let extra: Vec<(&str, String)> =
                        trace_id.map(|id| ("X-Trace-Id", id)).into_iter().collect();
                    proto::encode_text_response(
                        (200, "OK"),
                        content_type,
                        &extra,
                        &body,
                        keep_alive,
                    )
                }
                Err(e) => {
                    // Refusals that name a retry moment carry it: a strict
                    // 503 hints at the re-attach cadence, a 429 at the
                    // next admission window.
                    let retry_after = match &e {
                        ServiceError::DurabilityUnavailable(_) => Some(registry.retry_after_secs()),
                        ServiceError::Overloaded => Some(1),
                        _ => None,
                    };
                    let mut extra: Vec<(&str, String)> = retry_after
                        .map(|secs| ("Retry-After", secs.to_string()))
                        .into_iter()
                        .collect();
                    if let Some(id) = trace_id {
                        extra.push(("X-Trace-Id", id));
                    }
                    proto::encode_response_with(e.http_status(), &extra, &e.to_json(), keep_alive)
                }
            };
            if let Ok(mut queue) = shared.completions.lock() {
                queue.push(Completion { slot, gen, response, keep_alive, trace });
            }
            // Enqueue-then-notify: the loop drains the pipe before the
            // queue, so this completion is seen by the wakeup it triggers.
            shared.wake.notify();
        };
        match self.pool.try_execute(job) {
            Ok(()) => self.inflight += 1,
            Err(saturated) => {
                // Queue full: shed this request with a constant-cost 429
                // from the event loop; the connection closes after. The
                // trace (moved into the refused job) is dropped with it —
                // a shed request costs a counter bump, not a ring slot.
                drop(saturated);
                if let Some(tel) = self.registry.telemetry() {
                    tel.shed.inc();
                }
                let e = ServiceError::Overloaded;
                let response = proto::encode_response(e.http_status(), &e.to_json(), false);
                self.start_write(slot, response, false, None, now);
            }
        }
    }

    fn deliver_completions(&mut self, now: Instant) {
        let completed: Vec<Completion> = {
            let mut queue = match self.shared.completions.lock() {
                Ok(queue) => queue,
                Err(poisoned) => poisoned.into_inner(),
            };
            queue.drain(..).collect()
        };
        for c in completed {
            self.inflight = self.inflight.saturating_sub(1);
            let stale = match self.conns.get(c.slot) {
                Some(entry) => entry.gen != c.gen || entry.conn.is_none(),
                None => true,
            };
            if stale {
                continue; // the connection died while its request executed
            }
            self.start_write(c.slot, c.response, c.keep_alive, c.trace, now);
        }
    }

    // ---- response writing -----------------------------------------------

    fn respond_error(&mut self, slot: usize, e: ServiceError, now: Instant) {
        let response = proto::encode_response(e.http_status(), &e.to_json(), false);
        self.start_write(slot, response, false, None, now);
    }

    fn start_write(
        &mut self,
        slot: usize,
        response: Vec<u8>,
        keep_alive: bool,
        trace: Option<(Trace, usize)>,
        now: Instant,
    ) {
        {
            let Some(conn) = self.conns.get_mut(slot).and_then(|e| e.conn.as_mut()) else {
                return;
            };
            conn.outbuf = response;
            conn.written = 0;
            conn.phase = Phase::Writing { keep_alive };
            conn.last_activity = now;
            conn.trace = trace.map(|(mut trace, route)| {
                let write_span = trace.start("write", NO_PARENT);
                TraceCarry { trace, route, write_span }
            });
        }
        self.continue_write(slot, now);
    }

    fn continue_write(&mut self, slot: usize, now: Instant) {
        let keep_alive = loop {
            let Some(conn) = self.conns.get_mut(slot).and_then(|e| e.conn.as_mut()) else {
                return;
            };
            let Phase::Writing { keep_alive } = conn.phase else { return };
            if conn.written >= conn.outbuf.len() {
                break keep_alive;
            }
            match conn.stream.write(&conn.outbuf[conn.written..]) {
                Ok(0) => {
                    self.close(slot);
                    return;
                }
                Ok(n) => {
                    // Deliberately no `last_activity` refresh: the write
                    // clock starts at `start_write`, so a peer draining
                    // the response one byte at a time cannot hold the
                    // slot open forever — the whole response must land
                    // within `io_timeout`.
                    conn.written += n;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.set_interest(slot, Interest::WRITE);
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        };
        // The whole response hit the socket: seal the trace. Total wall
        // time is measured from the same epoch every span uses, so the
        // root spans (parse, queue_wait, handle, write) tile it.
        let carry =
            self.conns.get_mut(slot).and_then(|e| e.conn.as_mut()).and_then(|c| c.trace.take());
        if let (Some(TraceCarry { mut trace, route, write_span }), Some(tel)) =
            (carry, self.registry.telemetry())
        {
            trace.end(write_span);
            let total_us = trace.now_us();
            tel.finish_request(trace, route, total_us);
        }
        if !keep_alive {
            self.close(slot);
            return;
        }
        let has_pipelined = {
            let Some(conn) = self.conns.get_mut(slot).and_then(|e| e.conn.as_mut()) else {
                return;
            };
            conn.outbuf.clear();
            conn.written = 0;
            conn.phase = Phase::Reading;
            !conn.inbuf.is_empty()
        };
        self.set_interest(slot, Interest::READ);
        if has_pipelined {
            // The next pipelined request is already buffered; don't wait
            // for a readiness event that may never come.
            self.advance_parse(slot, now, false);
        }
    }

    // ---- housekeeping ---------------------------------------------------

    fn sweep_timeouts(&mut self, now: Instant) {
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].conn.as_ref() else { continue };
            if now.duration_since(conn.last_activity) < self.io_timeout {
                continue;
            }
            match conn.phase {
                // Executing requests answer on their own schedule (MILP
                // deadlines bound them) — never reaped here.
                Phase::Executing => {}
                Phase::Reading if conn.inbuf.is_empty() => self.close(slot),
                Phase::Reading => {
                    // Bytes arrived, then silence: the peer deserves to
                    // know before the close.
                    let e = ServiceError::Timeout("mid-request silence".into());
                    self.respond_error(slot, e, now);
                }
                Phase::Writing { .. } => self.close(slot),
            }
        }
    }

    fn set_interest(&mut self, slot: usize, want: Interest) {
        let Some(conn) = self.conns.get_mut(slot).and_then(|e| e.conn.as_mut()) else {
            return;
        };
        if conn.interest == want {
            return;
        }
        let fd = raw_fd(&conn.stream);
        if self.poller.modify(fd, slot as u64, want).is_ok() {
            conn.interest = want;
        }
    }

    fn close(&mut self, slot: usize) {
        let Some(entry) = self.conns.get_mut(slot) else { return };
        let Some(conn) = entry.conn.take() else { return };
        entry.gen += 1;
        self.poller.deregister(raw_fd(&conn.stream));
        self.free.push(slot);
        self.active -= 1;
    }
}

/// Best-effort 429 to a connection refused at the door (connection cap).
/// The socket is fresh, so the single write fits its empty send buffer.
fn shed(stream: TcpStream) {
    let mut stream = stream;
    let _ = stream.set_nonblocking(true);
    let e = ServiceError::Overloaded;
    let _ = stream.write_all(&proto::encode_response(e.http_status(), &e.to_json(), false));
}

/// Splits `/sessions/{name}[/verb]` into its parts, percent-decoding the
/// name segment (`%2F` and malformed escapes are typed 400s).
fn session_route(path: &str) -> Result<Option<(String, Option<&str>)>, ServiceError> {
    let Some(rest) = path.strip_prefix("/sessions/") else {
        return Ok(None);
    };
    let (raw_name, verb) = match rest.split_once('/') {
        None => (rest, None),
        Some((name, verb)) if !verb.contains('/') => (name, Some(verb)),
        Some(_) => return Ok(None),
    };
    if raw_name.is_empty() {
        return Ok(None);
    }
    Ok(Some((proto::percent_decode(raw_name)?, verb)))
}

/// Tags a report response with its session's durability state (absent
/// when the registry runs memory-only).
fn with_durability(json: Json, durability: Option<&'static str>) -> Json {
    match durability {
        Some(label) => json.set("durability", label),
        None => json,
    }
}

/// What a handler produced: the usual JSON document, or a verbatim text
/// body (the Prometheus exposition).
enum RouteReply {
    Json(Json),
    Text { content_type: &'static str, body: String },
}

/// Index into [`crate::telemetry::ROUTES`] for a request. Label
/// cardinality stays fixed: every unrecognised path counts as `other`.
fn route_index(req: &ParsedRequest) -> usize {
    let method = req.method.as_str();
    let path = req.path.split('?').next().unwrap_or(&req.path);
    match (method, path) {
        ("GET", "/sessions") => 5,
        ("GET", "/healthz") => 6,
        ("GET", "/metrics") => 7,
        ("GET", _) if path.starts_with("/debug/") => 8,
        _ => match session_route(path) {
            Ok(Some((_, verb))) => match (method, verb) {
                ("POST", None) => 0,
                ("POST", Some("explain")) => 1,
                ("POST", Some("delta")) => 2,
                ("GET", Some("report")) => 3,
                ("DELETE", None) => 4,
                _ => 9,
            },
            _ => 9,
        },
    }
}

/// Dispatches one request against the registry. `trace`/`parent` carry
/// the request's in-flight trace (absent with telemetry off); handlers
/// that do pipeline work thread it down as a [`TraceCtx`].
fn route(
    req: &ParsedRequest,
    registry: &SessionRegistry,
    trace: Option<&mut Trace>,
    parent: u32,
) -> Result<RouteReply, ServiceError> {
    let method = req.method.as_str();
    let path = req.path.split('?').next().unwrap_or(&req.path);
    match (method, path) {
        ("GET", "/healthz") => {
            // Liveness plus the durability health gauges. Deliberately
            // cheap: atomic loads, the per-slot degraded mirror, and the
            // sharded index's read locks — no per-session state lock is
            // ever taken, so a wedged session cannot wedge the probe.
            let stats = registry.stats();
            let degraded: Vec<Json> =
                registry.degraded_names(16).into_iter().map(Json::from).collect();
            let mut json = Json::obj()
                .set("ok", true)
                .set("degraded_sessions", stats.degraded_sessions)
                .set("wal_errors", stats.wal_errors)
                .set("storage_errors", stats.storage_errors)
                .set("reattached", stats.reattached)
                .set("quarantined", stats.quarantined)
                .set("dedup_hits", stats.dedup_hits)
                .set("degraded", degraded);
            if let Some(tel) = registry.telemetry() {
                json = json.set("uptime_secs", tel.uptime_secs() as usize);
            }
            return Ok(RouteReply::Json(json));
        }
        ("GET", "/sessions") => {
            let sessions: Vec<Json> = registry
                .list()
                .into_iter()
                .map(|s| {
                    Json::obj()
                        .set("name", s.name)
                        .set("footprint_bytes", s.footprint)
                        .set("explained", s.explained)
                        .set("deltas_logged", s.deltas_logged as usize)
                })
                .collect();
            // The stats object and the /metrics exposition are generated
            // from the same sample table, so the two surfaces can never
            // drift apart.
            let mut stats = Json::obj();
            for s in registry.stats().samples() {
                stats = stats.set(s.key, s.value as usize);
            }
            return Ok(RouteReply::Json(
                Json::obj()
                    .set("sessions", sessions)
                    .set("total_footprint_bytes", registry.total_footprint())
                    .set("stats", stats),
            ));
        }
        ("GET", "/metrics") => return metrics_response(registry),
        ("GET", _) if path.starts_with("/debug/") => {
            return debug_route(registry, path, &req.path);
        }
        _ => {}
    }
    let Some((name, verb)) = session_route(path)? else {
        return Err(ServiceError::NotFound(format!("{method} {path}")));
    };
    let name = name.as_str();
    match (method, verb) {
        ("POST", None) => {
            let create = wire::parse_create(&req.body)?;
            registry.create(name, create)?;
            Ok(RouteReply::Json(Json::obj().set("created", name)))
        }
        ("DELETE", None) => {
            registry.drop_session(name)?;
            Ok(RouteReply::Json(Json::obj().set("dropped", name)))
        }
        ("POST", Some("explain")) => {
            let deadline = wire::parse_explain(&req.body)?;
            let tctx = trace.map(|trace| TraceCtx { trace, parent });
            let report = registry.explain_traced(name, deadline, tctx)?;
            Ok(RouteReply::Json(with_durability(
                wire::emit_report(name, &report, 0),
                registry.durability_status(name)?,
            )))
        }
        ("POST", Some("delta")) => {
            // The shapes and the apply are two registry calls; the token
            // pins them to the same underlying session incarnation, so a
            // concurrent drop + re-create with different shapes becomes a
            // typed 409 instead of a delta parsed against stale shapes.
            let (left, right, token) = registry.shapes_tagged(name)?;
            let parsed = wire::parse_delta(&req.body, &left, &right)?;
            let tctx = trace.map(|trace| TraceCtx { trace, parent });
            let outcome = registry.delta_traced(
                name,
                parsed.delta,
                parsed.deadline,
                Some(token),
                parsed.request_id,
                tctx,
            )?;
            let mut json = wire::emit_report(name, &outcome.report, outcome.coalesced_with);
            json = with_durability(json, outcome.durability);
            if outcome.deduplicated {
                json = json.set("deduplicated", true);
            }
            Ok(RouteReply::Json(json))
        }
        ("GET", Some("report")) => {
            let report = registry.report(name)?;
            Ok(RouteReply::Json(with_durability(
                wire::emit_report(name, &report, 0),
                registry.durability_status(name)?,
            )))
        }
        _ => Err(ServiceError::NotFound(format!("{method} {path}"))),
    }
}

/// `GET /metrics`: the registered hot-path metrics plus scrape-time
/// samples — registry lifetime stats (the same table `/sessions` renders),
/// resident footprint, uptime, and pool occupancy.
fn metrics_response(registry: &SessionRegistry) -> Result<RouteReply, ServiceError> {
    let Some(tel) = registry.telemetry() else {
        return Err(ServiceError::NotFound("telemetry is disabled".into()));
    };
    let mut exp = tel.registry().render();
    for s in registry.stats().samples() {
        if s.gauge {
            exp.gauge_sample(s.metric, "", s.help, s.value as i64);
        } else {
            exp.sample(s.metric, "", s.help, s.value);
        }
    }
    exp.gauge_sample(
        "e3d_sessions_footprint_bytes",
        "",
        "Total resident session footprint in bytes",
        registry.total_footprint() as i64,
    );
    exp.gauge_sample(
        "e3d_uptime_seconds",
        "",
        "Seconds since telemetry was armed",
        tel.uptime_secs() as i64,
    );
    if let Some(pool) = tel.pool() {
        let stats = pool.stats();
        exp.sample(
            "e3d_pool_admitted_total",
            "",
            "Requests admitted to the worker pool",
            stats.admitted as u64,
        );
        exp.sample(
            "e3d_pool_shed_total",
            "",
            "Requests refused by the pool's bounded queue",
            stats.shed as u64,
        );
        exp.sample(
            "e3d_pool_executed_total",
            "",
            "Jobs finished by a worker",
            stats.executed as u64,
        );
        exp.sample(
            "e3d_pool_respawns_total",
            "",
            "Worker recoveries after a handler panic",
            stats.respawns as u64,
        );
        exp.gauge_sample(
            "e3d_pool_queue_depth",
            "",
            "Jobs waiting in the pool's admission queue",
            pool.queued() as i64,
        );
        exp.gauge_sample("e3d_pool_threads", "", "Worker threads", pool.threads() as i64);
    }
    match exp.finish() {
        Ok(body) => {
            Ok(RouteReply::Text { content_type: "text/plain; version=0.0.4; charset=utf-8", body })
        }
        Err(dup) => Err(ServiceError::Internal(format!("duplicate metric series: {dup}"))),
    }
}

/// `GET /debug/trace/<id>` (one trace by hex id) and
/// `GET /debug/slow?limit=N` (the N slowest retained traces).
fn debug_route(
    registry: &SessionRegistry,
    path: &str,
    raw_path: &str,
) -> Result<RouteReply, ServiceError> {
    let Some(tel) = registry.telemetry() else {
        return Err(ServiceError::NotFound("telemetry is disabled".into()));
    };
    if let Some(hex) = path.strip_prefix("/debug/trace/") {
        let id = u64::from_str_radix(hex, 16)
            .map_err(|_| ServiceError::BadRequest(format!("bad trace id {hex:?}")))?;
        let trace = tel
            .ring()
            .get(id)
            .ok_or_else(|| ServiceError::NotFound(format!("trace {hex} (unknown or evicted)")))?;
        return Ok(RouteReply::Json(emit_trace(&trace)));
    }
    if path == "/debug/slow" {
        let limit = raw_path
            .split_once('?')
            .and_then(|(_, query)| query.strip_prefix("limit="))
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(10)
            .min(100);
        let traces: Vec<Json> = tel.ring().slowest(limit).iter().map(|t| emit_trace(t)).collect();
        return Ok(RouteReply::Json(Json::obj().set("traces", traces)));
    }
    Err(ServiceError::NotFound(format!("GET {path}")))
}

/// Serialises one finished trace as a span tree: children name their
/// parent by span index; root spans omit the key.
fn emit_trace(trace: &FinishedTrace) -> Json {
    let spans: Vec<Json> = trace
        .spans
        .iter()
        .map(|s| {
            let mut span = Json::obj()
                .set("name", s.name)
                .set("start_us", s.start_us as usize)
                .set("end_us", s.end_us as usize);
            if s.parent != NO_PARENT {
                span = span.set("parent", s.parent as usize);
            }
            span
        })
        .collect();
    Json::obj()
        .set("trace_id", format!("{:016x}", trace.id))
        .set("total_us", trace.total_us as usize)
        .set("spans", spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_routes_parse() {
        let route = |p: &str| session_route(p).unwrap().map(|(n, v)| (n, v.map(str::to_string)));
        assert_eq!(route("/sessions/s1"), Some(("s1".into(), None)));
        assert_eq!(route("/sessions/s1/delta"), Some(("s1".into(), Some("delta".into()))));
        assert_eq!(route("/sessions/"), None);
        assert_eq!(route("/sessions/a/b/c"), None);
        assert_eq!(route("/health"), None);
        // Percent-decoding addresses the decoded name; %2F is refused.
        assert_eq!(route("/sessions/a%20b"), Some(("a b".into(), None)));
        assert!(session_route("/sessions/a%2Fb").is_err());
    }
}
