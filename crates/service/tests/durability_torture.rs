//! Fault-injection torture: `kill -9` the real `explain3d-serve` binary
//! mid-delta-storm at randomized points, restart it on the same data
//! directory, and assert every recovered session's report fingerprint is
//! byte-identical to a never-crashed in-process replay of exactly the
//! deltas the WAL acknowledged. Also pins graceful SIGTERM drain (exit 0,
//! every session flushed).

use explain3d_service::client::Client;
use explain3d_service::json::Json;
use explain3d_service::registry::{ServiceConfig, SessionRegistry};
use explain3d_service::wire;
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const CREATE_BODY: &str = r#"{
  "left":  {"name": "Q1", "columns": [["k", "str"]], "key": ["k"],
            "tuples": [{"values": ["alpha"], "impact": 2.0},
                       {"values": ["beta"]},
                       {"values": ["gamma"]}]},
  "right": {"name": "Q2", "columns": [["k", "str"]], "key": ["k"],
            "tuples": [{"values": ["alpha"]},
                       {"values": ["beta"]}]},
  "match": {"left": "k", "right": "k"}
}"#;

/// Deterministic xorshift so failures reproduce.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// The serial delta script: always-valid inserts and index-0 updates with
/// distinct keys, so any acknowledged prefix is replayable.
fn delta_body(i: usize) -> String {
    match i % 4 {
        0 => format!(
            r#"{{"ops": [{{"op": "insert", "side": "right",
                 "tuple": {{"values": ["t{i}"], "impact": {}.0}}}}]}}"#,
            (i % 5) + 1
        ),
        1 => format!(
            r#"{{"ops": [{{"op": "insert", "side": "left",
                 "tuple": {{"values": ["t{i}"], "impact": {}.0}}}}]}}"#,
            (i % 3) + 1
        ),
        2 => format!(
            r#"{{"ops": [{{"op": "update", "side": "left", "index": 0,
                 "tuple": {{"values": ["alpha"], "impact": {}.0}}}}]}}"#,
            (i % 4) + 1
        ),
        _ => format!(
            r#"{{"ops": [{{"op": "insert", "side": "right",
                 "tuple": {{"values": ["u{i}"]}}}},
                {{"op": "insert", "side": "left",
                 "tuple": {{"values": ["u{i}"]}}}}]}}"#
        ),
    }
}

/// Spawns the serve binary on an ephemeral port with the given data dir
/// and parses the bound address from its stdout banner.
fn spawn_server(data_dir: &Path, fsync: &str) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_explain3d-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--data-dir",
            data_dir.to_str().unwrap(),
            "--fsync",
            fsync,
            "--threads",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning explain3d-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let banner = lines.next().expect("server prints its banner").expect("banner is readable");
    // "explain3d-serve: listening on 127.0.0.1:PORT (N workers, queue Q)"
    let addr = banner
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("unparseable banner {banner:?}"));
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn connect(addr: SocketAddr) -> Client {
    // The restarted server may still be recovering; retry briefly.
    for _ in 0..50 {
        if let Ok(c) = Client::connect(addr) {
            return c;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("could not connect to {addr}");
}

fn get(client: &mut Client, path: &str) -> Json {
    let (status, body) = client.request("GET", path, "").expect("GET");
    assert_eq!(status, 200, "GET {path}: {body}");
    body
}

/// Fingerprint of a never-crashed in-process run: create, explain, then
/// the first `n` deltas of the serial script.
fn oracle_fingerprint(n: usize) -> String {
    let oracle = SessionRegistry::new(ServiceConfig::default());
    oracle.create("s", wire::parse_create(CREATE_BODY).unwrap()).unwrap();
    let mut fp = wire::fingerprint_hex(&oracle.explain("s", None).unwrap());
    for i in 0..n {
        let (left, right) = oracle.shapes("s").unwrap();
        let parsed = wire::parse_delta(&delta_body(i), &left, &right).unwrap();
        fp = wire::fingerprint_hex(
            &oracle.delta("s", parsed.delta, parsed.deadline).unwrap().report,
        );
    }
    fp
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("e3d-torture-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn kill_nine_mid_delta_storm_recovers_byte_identical_reports() {
    let dir = tempdir("kill9");
    let mut rng = Rng(0x5eed_cafe_f00d_0001);

    for round in 0..4 {
        // Fresh server on the same data dir; one new session per round so
        // every restart must also keep all previous rounds recoverable.
        let (mut child, addr) = spawn_server(&dir, "off");
        let session = format!("storm-{round}");
        let mut client = connect(addr);
        let (status, body) =
            client.request("POST", &format!("/sessions/{session}"), CREATE_BODY).unwrap();
        assert_eq!(status, 200, "create: {body}");
        let (status, _) =
            client.request("POST", &format!("/sessions/{session}/explain"), "").unwrap();
        assert_eq!(status, 200);

        // SIGKILL from a background thread at a randomized point in the
        // storm: the kill lands between, or in the middle of, requests.
        let kill_after = Duration::from_millis(5 + rng.next() % 60);
        let pid = child.id();
        let killer = std::thread::spawn(move || {
            std::thread::sleep(kill_after);
            let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
        });

        // Fire the serial delta storm until the crash cuts us off.
        let mut acked = 0usize;
        for i in 0..10_000 {
            match client.request("POST", &format!("/sessions/{session}/delta"), &delta_body(i)) {
                Ok((200, _)) => acked += 1,
                Ok((status, body)) => panic!("delta {i}: status {status}: {body}"),
                Err(_) => break, // the kill landed
            }
        }
        killer.join().unwrap();
        let _ = child.wait();

        // Restart on the same data dir and compare every session recovered
        // so far against the in-process oracle.
        let (mut child2, addr2) = spawn_server(&dir, "off");
        let mut client2 = connect(addr2);
        for r in 0..=round {
            let name = format!("storm-{r}");
            // `deltas_logged` tells the oracle how many deltas of the known
            // serial order survived; every acknowledged delta must have.
            let report = get(&mut client2, &format!("/sessions/{name}/report"));
            let list = get(&mut client2, "/sessions");
            let logged = list
                .get("sessions")
                .and_then(Json::as_arr)
                .and_then(|ss| {
                    ss.iter().find(|s| s.get("name").and_then(Json::as_str) == Some(&name))
                })
                .and_then(|s| s.get("deltas_logged"))
                .and_then(Json::as_i64)
                .unwrap_or_else(|| panic!("session {name} missing from list"))
                as usize;
            if r == round {
                assert!(
                    logged >= acked,
                    "round {round}: {acked} deltas were acknowledged but only {logged} recovered"
                );
                assert!(
                    logged <= acked + 1,
                    "round {round}: recovered {logged} deltas but only {acked} were acknowledged \
                     (+1 in-flight at most)"
                );
            }
            let fp = report.get("fingerprint").and_then(Json::as_str).expect("fingerprint");
            assert_eq!(
                fp,
                oracle_fingerprint(logged),
                "round {round}, session {name}: recovered report diverged from a \
                 never-crashed replay of its {logged} logged deltas"
            );
        }
        let _ = Command::new("kill").args(["-9", &child2.id().to_string()]).status();
        let _ = child2.wait();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sigterm_drains_flushes_and_exits_zero() {
    let dir = tempdir("drain");
    let (mut child, addr) = spawn_server(&dir, "interval:4");
    let mut client = connect(addr);
    let (status, _) = client.request("POST", "/sessions/d", CREATE_BODY).unwrap();
    assert_eq!(status, 200);
    let (status, _) = client.request("POST", "/sessions/d/explain", "").unwrap();
    assert_eq!(status, 200);
    let mut last_fp = String::new();
    for i in 0..7 {
        let (status, body) = client.request("POST", "/sessions/d/delta", &delta_body(i)).unwrap();
        assert_eq!(status, 200, "{body}");
        last_fp = body.get("fingerprint").and_then(Json::as_str).unwrap().to_string();
    }
    drop(client); // release the keep-alive worker before the drain

    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("sending SIGTERM");
    assert!(status.success());
    let exit = child.wait().expect("server exits after SIGTERM");
    assert!(exit.success(), "graceful drain must exit 0, got {exit:?}");

    // The drain flushed a snapshot: the restarted server serves the exact
    // pre-shutdown report.
    let (mut child2, addr2) = spawn_server(&dir, "interval:4");
    let mut client2 = connect(addr2);
    let report = get(&mut client2, "/sessions/d/report");
    assert_eq!(report.get("fingerprint").and_then(Json::as_str), Some(last_fp.as_str()));
    let _ = Command::new("kill").args(["-9", &child2.id().to_string()]).status();
    let _ = child2.wait();
    std::fs::remove_dir_all(&dir).unwrap();
}
