//! Wire-level contract of the observability layer: `/metrics` renders
//! valid Prometheus text exposition whose counters are monotone across
//! scrapes and whose histograms are internally consistent; every traced
//! response carries an `X-Trace-Id` readable back via `/debug/trace/<id>`
//! whose root spans tile the measured wall time; `/debug/slow` ranks
//! retained traces; `/healthz` stays lock-free and reports uptime plus
//! degraded names; and with telemetry off none of the surfaces exist.

use explain3d_service::json::Json;
use explain3d_service::{Server, ServerConfig, ServerHandle, Telemetry, TelemetryConfig};
use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const CREATE_BODY: &str = r#"{
  "left":  {"name": "Q1", "columns": [["name", "str"], ["year", "int"]],
            "key": ["name"],
            "tuples": [{"values": ["computer science", 1999], "impact": 2.0},
                       {"values": ["electrical engineering", 2001]},
                       {"values": ["design", 2003]},
                       {"values": ["mathematics", 1997]}]},
  "right": {"name": "Q2", "columns": [["title", "str"], ["published", "int"]],
            "key": ["title"],
            "tuples": [{"values": ["computer science", 1999]},
                       {"values": ["electrical engineering", 2001]}]},
  "match": {"left": "name", "right": "title"},
  "options": {"min_similarity": 0.2}
}"#;

const DELTA_BODY: &str = r#"{"ops": [
    {"op": "insert", "side": "right", "tuple": {"values": ["design", 2003]}}
]}"#;

fn telemetry_server() -> (ServerHandle, SocketAddr) {
    let mut config = ServerConfig { addr: "127.0.0.1:0".to_string(), ..Default::default() };
    config.service.telemetry =
        Some(Arc::new(Telemetry::new(TelemetryConfig::default()).expect("telemetry arms")));
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    (server.spawn(), addr)
}

fn plain_server() -> (ServerHandle, SocketAddr) {
    let config = ServerConfig { addr: "127.0.0.1:0".to_string(), ..Default::default() };
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    (server.spawn(), addr)
}

/// One raw HTTP exchange keeping status, headers (lowercased names), and
/// the body verbatim — the shipped `Client` hides both headers and
/// non-JSON bodies, and this test is about exactly those.
struct RawResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl RawResponse {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    fn json(&self) -> Json {
        Json::parse(&self.body).expect("response body parses as JSON")
    }
}

fn raw_request(addr: SocketAddr, method: &str, path: &str, body: &str) -> RawResponse {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("read timeout");
    stream.set_write_timeout(Some(Duration::from_secs(5))).expect("write timeout");
    let mut writer = stream.try_clone().expect("clone");
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        assert_ne!(reader.read_line(&mut line).expect("header line"), 0, "truncated headers");
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let (name, value) = trimmed.split_once(':').expect("header has a colon");
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse().expect("numeric Content-Length");
        }
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut buf = vec![0u8; content_length];
    reader.read_exact(&mut buf).expect("body");
    RawResponse { status, headers, body: String::from_utf8(buf).expect("utf-8 body") }
}

// ---------------------------------------------------------------------------
// A minimal Prometheus text-format 0.0.4 parser: enough to assert the
// exposition is well-formed, series are unique, and histograms cohere.
// ---------------------------------------------------------------------------

struct Scrape {
    /// Full series key (name + label set) → value.
    samples: HashMap<String, f64>,
    /// Metric family → declared TYPE.
    types: HashMap<String, String>,
}

impl Scrape {
    /// Resolves a sample's family: `_bucket`/`_sum`/`_count` suffixes
    /// belong to their histogram when one is declared.
    fn family<'a>(&self, series: &'a str) -> &'a str {
        let name = series.split('{').next().unwrap_or(series);
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(stem) = name.strip_suffix(suffix) {
                if self.types.get(stem).is_some_and(|t| t == "histogram") {
                    return stem;
                }
            }
        }
        name
    }

    fn counters(&self) -> HashMap<String, f64> {
        self.samples
            .iter()
            .filter(|(series, _)| {
                self.types.get(self.family(series)).is_some_and(|t| t == "counter")
            })
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    fn value(&self, series: &str) -> f64 {
        *self.samples.get(series).unwrap_or_else(|| panic!("series {series} missing"))
    }
}

fn parse_scrape(text: &str) -> Scrape {
    let mut types: HashMap<String, String> = HashMap::new();
    let mut helps: HashSet<String> = HashSet::new();
    let mut samples: HashMap<String, f64> = HashMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let family = rest.split_whitespace().next().expect("HELP names a family").to_string();
            assert!(helps.insert(family.clone()), "duplicate # HELP for {family}");
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let family = parts.next().expect("TYPE names a family").to_string();
            let ty = parts.next().expect("TYPE declares a type").to_string();
            assert!(
                matches!(ty.as_str(), "counter" | "gauge" | "histogram"),
                "unknown type {ty} for {family}"
            );
            assert!(helps.contains(&family), "# TYPE {family} without a preceding # HELP");
            assert!(types.insert(family.clone(), ty).is_none(), "duplicate # TYPE for {family}");
        } else if line.starts_with('#') {
            panic!("unrecognised comment line {line:?}");
        } else {
            let (series, value) = line.rsplit_once(' ').expect("sample is `series value`");
            let value: f64 = match value {
                "+Inf" => f64::INFINITY,
                v => v.parse().unwrap_or_else(|_| panic!("non-numeric value {v:?} in {line:?}")),
            };
            assert!(
                samples.insert(series.to_string(), value).is_none(),
                "duplicate series {series}"
            );
        }
    }
    let scrape = Scrape { samples, types };
    for series in scrape.samples.keys() {
        let family = scrape.family(series);
        assert!(scrape.types.contains_key(family), "sample {series} has no # TYPE {family}");
    }
    scrape
}

/// Histogram coherence: cumulative buckets are non-decreasing, the `+Inf`
/// bucket equals `_count`, and an empty histogram has a zero sum.
fn assert_histograms_cohere(scrape: &Scrape) {
    for (family, ty) in &scrape.types {
        if ty != "histogram" {
            continue;
        }
        let mut buckets: Vec<(f64, f64)> = scrape
            .samples
            .iter()
            .filter(|(series, _)| {
                series.starts_with(&format!("{family}_bucket{{")) && series.contains("le=")
            })
            .map(|(series, v)| {
                let le = series
                    .split("le=\"")
                    .nth(1)
                    .and_then(|s| s.split('"').next())
                    .expect("le label");
                let le = if le == "+Inf" { f64::INFINITY } else { le.parse().expect("le bound") };
                (le, *v)
            })
            .collect();
        buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
        assert!(!buckets.is_empty(), "{family}: no buckets");
        for pair in buckets.windows(2) {
            assert!(
                pair[1].1 >= pair[0].1,
                "{family}: cumulative buckets must be non-decreasing, got {pair:?}"
            );
        }
        let last = buckets.last().expect("checked non-empty");
        assert_eq!(last.0, f64::INFINITY, "{family}: final bucket must be +Inf");
        let count = scrape.value(&format!("{family}_count"));
        let sum = scrape.value(&format!("{family}_sum"));
        assert_eq!(last.1, count, "{family}: +Inf bucket must equal _count");
        assert!(sum >= 0.0, "{family}: negative _sum");
        if count == 0.0 {
            assert_eq!(sum, 0.0, "{family}: empty histogram with non-zero _sum");
        }
    }
}

fn drive_mixed_traffic(addr: SocketAddr, session: &str) {
    let create = raw_request(addr, "POST", &format!("/sessions/{session}"), CREATE_BODY);
    assert_eq!(create.status, 200, "create: {}", create.body);
    let explain = raw_request(addr, "POST", &format!("/sessions/{session}/explain"), "");
    assert_eq!(explain.status, 200, "explain: {}", explain.body);
    let delta = raw_request(addr, "POST", &format!("/sessions/{session}/delta"), DELTA_BODY);
    assert_eq!(delta.status, 200, "delta: {}", delta.body);
    assert_eq!(raw_request(addr, "GET", &format!("/sessions/{session}/report"), "").status, 200);
    assert_eq!(raw_request(addr, "GET", "/sessions", "").status, 200);
    assert_eq!(raw_request(addr, "GET", "/healthz", "").status, 200);
    assert_eq!(raw_request(addr, "GET", "/nope", "").status, 404);
}

#[test]
fn metrics_exposition_is_valid_and_counters_are_monotone() {
    let (handle, addr) = telemetry_server();
    drive_mixed_traffic(addr, "m1");

    let first = raw_request(addr, "GET", "/metrics", "");
    assert_eq!(first.status, 200);
    assert!(
        first.header("content-type").is_some_and(|ct| ct.starts_with("text/plain")),
        "metrics content type: {:?}",
        first.header("content-type")
    );
    let scrape1 = parse_scrape(&first.body);
    assert_histograms_cohere(&scrape1);

    // The hot-path families, the per-route counters, the registry sample
    // table, and the pool samples all land in one exposition.
    assert!(scrape1.value(r#"e3d_http_requests_total{route="explain"}"#) >= 1.0);
    assert!(scrape1.value(r#"e3d_http_requests_total{route="delta"}"#) >= 1.0);
    assert!(scrape1.value(r#"e3d_http_requests_total{route="other"}"#) >= 1.0);
    assert!(scrape1.value("e3d_registry_creates_total") >= 1.0);
    assert!(scrape1.value("e3d_registry_explains_total") >= 1.0);
    assert!(scrape1.value("e3d_request_us_count") >= 1.0);
    assert!(scrape1.value("e3d_queue_wait_us_count") >= 1.0);
    assert!(scrape1.value("e3d_explain_run_us_count") >= 1.0);
    assert!(scrape1.value("e3d_delta_run_us_count") >= 1.0);
    assert!(scrape1.value("e3d_pool_admitted_total") >= 1.0);
    assert!(scrape1.value("e3d_pool_threads") >= 1.0);
    assert!(scrape1.value("e3d_sessions_footprint_bytes") > 0.0);

    drive_mixed_traffic(addr, "m2");

    let second = raw_request(addr, "GET", "/metrics", "");
    assert_eq!(second.status, 200);
    let scrape2 = parse_scrape(&second.body);
    assert_histograms_cohere(&scrape2);
    for (series, v1) in scrape1.counters() {
        let v2 = scrape2.value(&series);
        assert!(v2 >= v1, "counter {series} went backwards: {v1} -> {v2}");
    }
    assert!(
        scrape2.value(r#"e3d_http_requests_total{route="explain"}"#)
            > scrape1.value(r#"e3d_http_requests_total{route="explain"}"#),
        "a second explain must advance its route counter"
    );
    handle.shutdown();
}

/// Fetches a response's trace by its `X-Trace-Id` header, asserts the
/// root spans (parse, queue_wait, handle, write) are present exactly
/// once with sane bounds, and returns `(root_sum_us, total_us, spans)`.
fn fetch_trace(addr: SocketAddr, response: &RawResponse) -> (f64, f64, Vec<Json>) {
    let id = response.header("x-trace-id").expect("traced response echoes X-Trace-Id");
    assert_eq!(id.len(), 16, "trace id is 16 hex digits, got {id:?}");
    assert!(id.chars().all(|c| c.is_ascii_hexdigit()));

    let debug = raw_request(addr, "GET", &format!("/debug/trace/{id}"), "");
    assert_eq!(debug.status, 200, "trace lookup: {}", debug.body);
    let json = debug.json();
    assert_eq!(json.get("trace_id").and_then(Json::as_str), Some(id));
    let total = json.get("total_us").and_then(Json::as_f64).expect("total_us");
    let spans = json.get("spans").and_then(Json::as_arr).map(<[Json]>::to_vec).expect("spans");

    let mut roots: HashMap<&str, f64> = HashMap::new();
    for span in &spans {
        let name = span.get("name").and_then(Json::as_str).expect("span name");
        let start = span.get("start_us").and_then(Json::as_f64).expect("start_us");
        let end = span.get("end_us").and_then(Json::as_f64).expect("end_us");
        assert!(end >= start, "span {name} runs backwards");
        assert!(end <= total, "span {name} ends after the request finished");
        if span.get("parent").is_none() {
            assert!(roots.insert(name, end - start).is_none(), "duplicate root {name}");
        }
    }
    for required in ["parse", "queue_wait", "handle", "write"] {
        assert!(roots.contains_key(required), "missing root span {required}");
    }
    (roots.values().sum(), total, spans)
}

#[test]
fn trace_spans_tile_the_request_wall_time() {
    let (handle, addr) = telemetry_server();

    // The root spans (parse, queue_wait, handle, write) are laid
    // end-to-end from the same epoch the total is measured from; the only
    // untraced time is scheduling (completion-queue delivery between
    // handle and write), a fixed few tens of microseconds. Measure on a
    // request with real work — a create whose large body takes
    // milliseconds of traced parse + canonicalisation — so that fixed
    // gap is well under the 5% criterion; the min over a few attempts
    // shields against a one-off scheduler stall.
    let tuples = |n: usize, tag: &str| -> String {
        (0..n)
            .map(|i| format!("{{\"values\": [\"{tag}{i}\", {}]}}", 1950 + (i % 60)))
            .collect::<Vec<_>>()
            .join(",")
    };
    let big_body = format!(
        "{{\"left\": {{\"name\": \"Q1\", \"columns\": [[\"k\", \"str\"], [\"year\", \"int\"]], \
         \"key\": [\"k\"], \"tuples\": [{}]}}, \
         \"right\": {{\"name\": \"Q2\", \"columns\": [[\"k\", \"str\"], [\"year\", \"int\"]], \
         \"key\": [\"k\"], \"tuples\": [{}]}}, \
         \"match\": {{\"left\": \"k\", \"right\": \"k\"}}}}",
        tuples(1200, "x"),
        tuples(1000, "x"),
    );
    let mut best_gap = f64::INFINITY;
    let mut checked = None;
    for attempt in 0..5 {
        let create = raw_request(addr, "POST", &format!("/sessions/big{attempt}"), &big_body);
        assert_eq!(create.status, 200, "create: {}", create.body);
        let (root_sum, total, _) = fetch_trace(addr, &create);
        let gap = (total - root_sum).abs() / total.max(1.0);
        if gap < best_gap {
            best_gap = gap;
            checked = Some((root_sum, total));
        }
    }
    assert!(
        best_gap <= 0.05,
        "root spans must tile the wall time within 5%; best attempt was {:?} (gap {:.1}%)",
        checked,
        best_gap * 100.0
    );

    // An explain's trace carries the pipeline children under `handle`.
    let create = raw_request(addr, "POST", "/sessions/t1", CREATE_BODY);
    assert_eq!(create.status, 200, "create: {}", create.body);
    let explain = raw_request(addr, "POST", "/sessions/t1/explain", "");
    assert_eq!(explain.status, 200, "explain: {}", explain.body);
    let (_, _, spans) = fetch_trace(addr, &explain);
    assert!(
        spans.iter().any(|s| s.get("name").and_then(Json::as_str) == Some("explain_run")),
        "explain request must carry an explain_run child span"
    );
    handle.shutdown();
}

#[test]
fn debug_slow_ranks_retained_traces() {
    let (handle, addr) = telemetry_server();
    drive_mixed_traffic(addr, "s1");

    let slow = raw_request(addr, "GET", "/debug/slow?limit=3", "");
    assert_eq!(slow.status, 200);
    let traces = slow.json().get("traces").and_then(Json::as_arr).map(<[Json]>::to_vec).unwrap();
    assert!(!traces.is_empty() && traces.len() <= 3, "limit respected, got {}", traces.len());
    let totals: Vec<f64> =
        traces.iter().map(|t| t.get("total_us").and_then(Json::as_f64).unwrap()).collect();
    assert!(totals.windows(2).all(|w| w[0] >= w[1]), "slowest-first order, got {totals:?}");

    // Typed errors on the lookup edge: bad hex is a 400, unknown a 404.
    assert_eq!(raw_request(addr, "GET", "/debug/trace/zzzz", "").status, 400);
    assert_eq!(raw_request(addr, "GET", "/debug/trace/ffffffffffffffff", "").status, 404);
    assert_eq!(raw_request(addr, "GET", "/debug/unknown", "").status, 404);
    handle.shutdown();
}

#[test]
fn healthz_answers_while_a_session_state_lock_is_held() {
    let (handle, addr) = telemetry_server();
    let create = raw_request(addr, "POST", "/sessions/held", CREATE_BODY);
    assert_eq!(create.status, 200, "create: {}", create.body);

    // Hold the session's state mutex on this thread and probe from inside
    // the critical section: if /healthz (or its degraded-name listing)
    // ever regresses into taking session locks, this deadlocks and the
    // 5-second client read timeout fails the test.
    let registry = handle.registry();
    let health = registry
        .with_state_lock_held("held", || raw_request(addr, "GET", "/healthz", ""))
        .expect("session exists");
    assert_eq!(health.status, 200);
    let json = health.json();
    assert_eq!(json.get("ok").and_then(Json::as_bool), Some(true));
    assert!(json.get("uptime_secs").and_then(Json::as_f64).is_some(), "uptime: {}", health.body);
    let degraded = json.get("degraded").and_then(Json::as_arr).expect("degraded names array");
    assert!(degraded.is_empty(), "healthy session must not be listed degraded");
    handle.shutdown();
}

#[test]
fn telemetry_off_has_no_surfaces_and_no_headers() {
    let (handle, addr) = plain_server();
    let create = raw_request(addr, "POST", "/sessions/off", CREATE_BODY);
    assert_eq!(create.status, 200, "create: {}", create.body);
    let explain = raw_request(addr, "POST", "/sessions/off/explain", "");
    assert_eq!(explain.status, 200);
    assert!(explain.header("x-trace-id").is_none(), "no trace header with telemetry off");

    assert_eq!(raw_request(addr, "GET", "/metrics", "").status, 404);
    assert_eq!(raw_request(addr, "GET", "/debug/slow", "").status, 404);
    assert_eq!(raw_request(addr, "GET", "/debug/trace/abcd", "").status, 404);

    // /healthz keeps its historical keys (plus the degraded-name list);
    // uptime only appears when telemetry is armed.
    let health = raw_request(addr, "GET", "/healthz", "");
    assert_eq!(health.status, 200);
    let json = health.json();
    assert_eq!(json.get("ok").and_then(Json::as_bool), Some(true));
    assert!(json.get("uptime_secs").is_none());
    assert!(json.get("degraded").and_then(Json::as_arr).is_some());
    handle.shutdown();
}
