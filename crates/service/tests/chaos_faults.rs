//! Randomized chaos lanes: seeded fault schedules against both the
//! in-process registry and the real `explain3d-serve` binary.
//!
//! Every lane derives its schedule from one seed — fixed by default, or
//! `CHAOS_SEED=<n>` for the randomized CI lane — and prints it first
//! thing, so any failure reproduces with one environment variable. The
//! invariants, per the failure model:
//!
//! * **Strict** mode never loses an acknowledged delta, even through an
//!   injected-fault episode followed by an emulated power cut.
//! * **Best-effort** mode keeps answering `200` through storage failure
//!   and never serves a fingerprint that diverges from the serial oracle.
//! * A retried delta carrying the same `request_id` is applied **exactly
//!   once**, across degraded episodes and across restarts.

use explain3d_durability::{
    DurabilityConfig, FaultInjector, FaultKind, FaultOp, FaultPlan, FaultRule, FsyncPolicy, Trigger,
};
use explain3d_service::client::{RetryClient, RetryPolicy};
use explain3d_service::json::Json;
use explain3d_service::registry::{DurabilityMode, ServiceConfig, SessionRegistry};
use explain3d_service::{wire, ServiceError};
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

const CREATE_BODY: &str = r#"{
  "left":  {"name": "Q1", "columns": [["k", "str"]], "key": ["k"],
            "tuples": [{"values": ["alpha"], "impact": 2.0},
                       {"values": ["beta"]},
                       {"values": ["gamma"]}]},
  "right": {"name": "Q2", "columns": [["k", "str"]], "key": ["k"],
            "tuples": [{"values": ["alpha"]},
                       {"values": ["beta"]}]},
  "match": {"left": "k", "right": "k"}
}"#;

/// The chaos seed: `CHAOS_SEED` env var, or a fixed default so the plain
/// `cargo test` lane is deterministic. Printed by every lane so a
/// randomized-CI failure reproduces locally with one variable.
fn chaos_seed() -> u64 {
    let seed = std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC4A0_5EED);
    eprintln!("chaos seed: {seed} (rerun with CHAOS_SEED={seed} to reproduce)");
    seed
}

/// Deterministic xorshift64 over the lane seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64, lane: u64) -> Rng {
        Rng((seed ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The serial delta script shared by every lane: always-valid inserts and
/// index-0 updates with distinct keys, so any acknowledged prefix is
/// replayable by the oracle.
fn delta_body(i: usize) -> String {
    match i % 3 {
        0 => format!(
            r#"{{"ops": [{{"op": "insert", "side": "right",
                 "tuple": {{"values": ["t{i}"], "impact": {}.0}}}}]}}"#,
            (i % 5) + 1
        ),
        1 => format!(
            r#"{{"ops": [{{"op": "insert", "side": "left",
                 "tuple": {{"values": ["t{i}"], "impact": {}.0}}}}]}}"#,
            (i % 3) + 1
        ),
        _ => format!(
            r#"{{"ops": [{{"op": "update", "side": "left", "index": 0,
                 "tuple": {{"values": ["alpha"], "impact": {}.0}}}}]}}"#,
            (i % 4) + 1
        ),
    }
}

/// Serial oracle: fingerprints after create+explain and after each of the
/// first `n` script deltas, computed on a never-faulted in-memory registry.
fn oracle_fingerprints(n: usize) -> Vec<String> {
    let oracle = SessionRegistry::new(ServiceConfig::default());
    oracle.create("s", wire::parse_create(CREATE_BODY).unwrap()).unwrap();
    let mut fps = vec![wire::fingerprint_hex(&oracle.explain("s", None).unwrap())];
    for i in 0..n {
        let (left, right) = oracle.shapes("s").unwrap();
        let parsed = wire::parse_delta(&delta_body(i), &left, &right).unwrap();
        fps.push(wire::fingerprint_hex(
            &oracle.delta("s", parsed.delta, parsed.deadline).unwrap().report,
        ));
    }
    fps
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("e3d-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn apply_script_delta(
    registry: &SessionRegistry,
    i: usize,
    request_id: Option<String>,
) -> Result<explain3d_service::DeltaOutcome, ServiceError> {
    let (left, right) = registry.shapes("s").unwrap();
    let parsed = wire::parse_delta(&delta_body(i), &left, &right).unwrap();
    registry.delta_tagged("s", parsed.delta, parsed.deadline, None, request_id)
}

// ---------------------------------------------------------------------
// In-process lanes
// ---------------------------------------------------------------------

/// Best-effort mode under randomized storage failure: every delta is
/// acknowledged `200`, every acknowledged fingerprint matches the serial
/// oracle exactly, and the durability label is honest. After the faults
/// clear, the session reconciles and a restart recovers the final state.
#[test]
fn best_effort_keeps_serving_correct_fingerprints_through_chaos() {
    let seed = chaos_seed();
    let mut rng = Rng::new(seed, 1);
    const DELTAS: usize = 30;
    let oracle = oracle_fingerprints(DELTAS);

    let dir = tempdir("best-effort");
    // ~1-in-4 writes and ~1-in-6 fsyncs fail while armed: enough chaos
    // that the session cycles Durable → Degraded → Reconciled repeatedly.
    let plan = FaultPlan {
        seed: rng.next(),
        rules: vec![
            FaultRule {
                op: FaultOp::Write,
                trigger: Trigger::Chance(250_000),
                kind: FaultKind::Eio,
            },
            FaultRule {
                op: FaultOp::Fsync,
                trigger: Trigger::Chance(160_000),
                kind: FaultKind::Enospc,
            },
        ],
    };
    let shim = FaultInjector::new(plan);
    shim.disarm();
    let mut durability = DurabilityConfig::new(&dir);
    durability.fsync = FsyncPolicy::Always;
    durability.shim = Some(Arc::clone(&shim));
    let config = ServiceConfig {
        durability: Some(durability),
        reattach_interval: Duration::ZERO,
        ..ServiceConfig::default()
    };

    let registry = SessionRegistry::new(config.clone());
    registry.create("s", wire::parse_create(CREATE_BODY).unwrap()).unwrap();
    let fp = wire::fingerprint_hex(&registry.explain("s", None).unwrap());
    assert_eq!(fp, oracle[0], "seed {seed}: cold explain diverged");

    shim.arm();
    let mut degraded_acks = 0usize;
    for i in 0..DELTAS {
        // Random arm/disarm flips so the lane exercises both the failure
        // and the re-attach path at unpredictable moments.
        if rng.below(5) == 0 {
            shim.disarm();
        } else if rng.below(5) == 1 {
            shim.arm();
        }
        let outcome = apply_script_delta(&registry, i, None)
            .unwrap_or_else(|e| panic!("seed {seed}: best-effort refused delta {i}: {e}"));
        assert_eq!(
            wire::fingerprint_hex(&outcome.report),
            oracle[i + 1],
            "seed {seed}: wrong fingerprint served for delta {i}"
        );
        match outcome.durability {
            Some("durable" | "reconciled") => {}
            Some("degraded") => degraded_acks += 1,
            other => panic!("seed {seed}: invalid durability label {other:?}"),
        }
    }
    eprintln!(
        "chaos[best-effort]: {} faults fired, {degraded_acks}/{DELTAS} deltas acked degraded",
        shim.faults_fired()
    );

    // Faults over: the next delta must reconcile (lazy re-attach), and a
    // restart must recover exactly the final state.
    shim.disarm();
    let healed = apply_script_delta(&registry, DELTAS, None).unwrap();
    assert!(
        matches!(healed.durability, Some("durable" | "reconciled")),
        "seed {seed}: still degraded after faults cleared: {:?}",
        healed.durability
    );
    let final_fp = wire::fingerprint_hex(&healed.report);
    drop(registry);
    let recovered = SessionRegistry::new(config);
    assert_eq!(
        wire::fingerprint_hex(&recovered.report("s").unwrap()),
        final_fp,
        "seed {seed}: restart lost reconciled state"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Strict mode under randomized storage failure plus an emulated power
/// cut: a delta is either refused with a typed 503 or acknowledged, and
/// every acknowledged delta survives both the fault episode and the power
/// cut. Refused deltas are retried with the same `request_id` and must
/// apply exactly once.
#[test]
fn strict_mode_never_loses_an_acked_delta_under_chaos() {
    let seed = chaos_seed();
    let mut rng = Rng::new(seed, 2);
    const DELTAS: usize = 20;
    let oracle = oracle_fingerprints(DELTAS);

    let dir = tempdir("strict");
    let plan = FaultPlan {
        seed: rng.next(),
        rules: vec![
            FaultRule {
                op: FaultOp::Write,
                trigger: Trigger::Chance(200_000),
                kind: FaultKind::Eio,
            },
            FaultRule {
                op: FaultOp::Fsync,
                trigger: Trigger::Chance(120_000),
                kind: FaultKind::Enospc,
            },
        ],
    };
    let shim = FaultInjector::new(plan);
    shim.disarm();
    let mut durability = DurabilityConfig::new(&dir);
    durability.fsync = FsyncPolicy::Always;
    durability.shim = Some(Arc::clone(&shim));
    let config = ServiceConfig {
        durability: Some(durability),
        durability_mode: DurabilityMode::Strict,
        reattach_interval: Duration::ZERO,
        record_deltas: true,
        ..ServiceConfig::default()
    };

    let registry = SessionRegistry::new(config.clone());
    registry.create("s", wire::parse_create(CREATE_BODY).unwrap()).unwrap();
    registry.explain("s", None).unwrap();

    shim.arm();
    let mut acked = 0usize;
    let mut refusals = 0usize;
    for i in 0..DELTAS {
        let request_id = format!("chaos-{seed}-{i}");
        // Retry the same id until acknowledged; disarm after a few
        // failures so every delta eventually lands (the server guarantees
        // exactly-once, the client guarantees eventual delivery).
        let mut attempts = 0;
        let outcome = loop {
            match apply_script_delta(&registry, i, Some(request_id.clone())) {
                Ok(outcome) => break outcome,
                Err(ServiceError::DurabilityUnavailable(_)) => {
                    refusals += 1;
                    attempts += 1;
                    if attempts >= 3 {
                        shim.disarm();
                    }
                }
                Err(e) => panic!("seed {seed}: strict delta {i} failed with non-503: {e}"),
            }
        };
        acked += 1;
        assert_eq!(
            wire::fingerprint_hex(&outcome.report),
            oracle[i + 1],
            "seed {seed}: acked fingerprint for delta {i} diverged (dedup={})",
            outcome.deduplicated,
        );
        // Chaos back on (maybe) for the next delta.
        if rng.below(2) == 0 {
            shim.arm();
        }
    }
    assert_eq!(
        registry.delta_log("s").unwrap().len(),
        DELTAS,
        "seed {seed}: retries must apply exactly once"
    );
    eprintln!(
        "chaos[strict]: {} faults fired, {refusals} typed refusals, {acked} acks",
        shim.faults_fired()
    );

    // Power cut: drop the process state, truncate every file back to its
    // last durably-synced length, recover. Every ack was logged under
    // fsync=always, so nothing may be lost.
    drop(registry);
    shim.disarm();
    let lost = shim.power_cut();
    let recovered = SessionRegistry::new(config);
    assert_eq!(
        wire::fingerprint_hex(&recovered.report("s").unwrap()),
        oracle[DELTAS],
        "seed {seed}: power cut lost an acked delta (truncated {lost:?})"
    );
    // The dedup window also survived: replaying the last id is a no-op.
    let replay =
        apply_script_delta(&recovered, DELTAS - 1, Some(format!("chaos-{seed}-{}", DELTAS - 1)))
            .unwrap();
    assert!(replay.deduplicated, "seed {seed}: dedup window lost in recovery");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Exactly-once under duplication chaos: every delta is sent 1–3 times
/// with the same `request_id` (in-memory registry — dedup must not
/// require durability), and the session state equals the serial oracle's.
#[test]
fn duplicated_request_ids_apply_exactly_once() {
    let seed = chaos_seed();
    let mut rng = Rng::new(seed, 3);
    const DELTAS: usize = 25;
    let oracle = oracle_fingerprints(DELTAS);

    let registry =
        SessionRegistry::new(ServiceConfig { record_deltas: true, ..ServiceConfig::default() });
    registry.create("s", wire::parse_create(CREATE_BODY).unwrap()).unwrap();
    registry.explain("s", None).unwrap();

    let mut sends = 0usize;
    for i in 0..DELTAS {
        let request_id = format!("dup-{seed}-{i}");
        let copies = 1 + rng.below(3) as usize;
        for copy in 0..copies {
            sends += 1;
            let outcome = apply_script_delta(&registry, i, Some(request_id.clone())).unwrap();
            assert_eq!(
                wire::fingerprint_hex(&outcome.report),
                oracle[i + 1],
                "seed {seed}: delta {i} copy {copy} served a diverged fingerprint"
            );
            assert_eq!(
                outcome.deduplicated,
                copy > 0,
                "seed {seed}: delta {i} copy {copy} dedup flag wrong"
            );
        }
    }
    assert_eq!(registry.delta_log("s").unwrap().len(), DELTAS, "seed {seed}");
    assert_eq!(registry.stats().dedup_hits, sends - DELTAS, "seed {seed}");
}

// ---------------------------------------------------------------------
// Real-binary lane
// ---------------------------------------------------------------------

/// Spawns the serve binary and parses the bound address from its banner.
fn spawn_server(data_dir: &Path, extra: &[&str]) -> (Child, SocketAddr) {
    let mut args = vec![
        "--addr",
        "127.0.0.1:0",
        "--data-dir",
        data_dir.to_str().unwrap(),
        "--fsync",
        "always",
        "--threads",
        "2",
    ];
    args.extend_from_slice(extra);
    let mut child = Command::new(env!("CARGO_BIN_EXE_explain3d-serve"))
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning explain3d-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let banner = lines.next().expect("server prints its banner").expect("banner is readable");
    let addr = banner
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("unparseable banner {banner:?}"));
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn retry_client(addr: SocketAddr, seed: u64) -> RetryClient {
    RetryClient::new(
        addr,
        RetryPolicy {
            attempts: 8,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(500),
            io_timeout: Duration::from_secs(10),
            seed,
        },
    )
}

fn fingerprint_of(body: &Json) -> String {
    body.get("fingerprint").and_then(|f| f.as_str()).unwrap_or_else(|| panic!("{body}")).to_string()
}

/// The full stack under armed faults: a **strict** server whose WAL
/// storage fails on a schedule, driven by the retrying client over real
/// sockets. Every delta must eventually ack with the oracle fingerprint
/// (503s are retried with the same `request_id`), nothing may apply
/// twice, and after `kill -9` + restart the recovered session must hold
/// exactly the acknowledged state.
#[test]
fn real_binary_strict_faults_kill_and_recovery() {
    let seed = chaos_seed();
    let mut rng = Rng::new(seed, 4);
    const DELTAS: usize = 12;
    let oracle = oracle_fingerprints(DELTAS);

    let dir = tempdir("binary");
    // A deterministic schedule of single-shot WAL write failures: each
    // nth= rule fires once, so the server degrades at those points,
    // re-attaches, and keeps going. Seeded offsets randomize where.
    let n1 = 4 + rng.below(4); // an early write fault
    let n2 = 14 + rng.below(6); // and a later one
    let fault_ops = format!("write:nth={n1}:eio,write:nth={n2}:enospc");
    let (mut child, addr) = spawn_server(
        &dir,
        &["--durability", "strict", "--fault-seed", &seed.to_string(), "--fault-ops", &fault_ops],
    );
    let mut client = retry_client(addr, seed);

    let response = client.call("POST", "/sessions/s", CREATE_BODY).expect("create");
    assert_eq!(response.status, 200, "seed {seed}: {}", response.body);
    let response = client.call("POST", "/sessions/s/explain", "").expect("explain");
    assert_eq!(response.status, 200, "seed {seed}: {}", response.body);
    assert_eq!(fingerprint_of(&response.body), oracle[0], "seed {seed}");

    for i in 0..DELTAS {
        // RetryClient stamps one request_id before the first attempt and
        // replays it through every 503, so a fault-refused delta lands
        // exactly once when the session re-attaches.
        let response = client
            .delta("s", &delta_body(i))
            .unwrap_or_else(|e| panic!("seed {seed}: delta {i} never acked: {e}"));
        assert_eq!(response.status, 200, "seed {seed}: delta {i}: {}", response.body);
        assert_eq!(
            fingerprint_of(&response.body),
            oracle[i + 1],
            "seed {seed}: delta {i} fingerprint diverged: {}",
            response.body
        );
        let label = response.body.get("durability").and_then(|d| d.as_str());
        assert!(
            matches!(label, Some("durable" | "reconciled")),
            "seed {seed}: strict acked delta {i} with label {label:?}"
        );
    }

    // The faults fired and healed; the health probe agrees.
    let health = client.call("GET", "/healthz", "").expect("healthz");
    assert_eq!(health.status, 200);
    let wal_errors = health
        .body
        .get("wal_errors")
        .and_then(|v| v.as_i64())
        .unwrap_or_else(|| panic!("{}", health.body));
    assert!(wal_errors >= 1, "seed {seed}: fault schedule never fired: {}", health.body);

    // kill -9 mid-flight, restart clean (no faults), and check nothing
    // acked was lost — fsync=always + strict means every 200 is durable.
    let _ = Command::new("kill").args(["-9", &child.id().to_string()]).status();
    let _ = child.wait();
    let (child2, addr2) = spawn_server(&dir, &["--durability", "strict"]);
    let mut client2 = retry_client(addr2, seed ^ 1);
    let report = client2.call("GET", "/sessions/s/report", "").expect("recovered report");
    assert_eq!(report.status, 200, "seed {seed}: {}", report.body);
    assert_eq!(
        fingerprint_of(&report.body),
        oracle[DELTAS],
        "seed {seed}: kill -9 lost an acked delta"
    );

    // Exactly-once across the restart: replay the final delta under a
    // fresh id (applies), then the same id again (deduplicated).
    let stamped =
        Json::parse(&delta_body(DELTAS)).unwrap().set("request_id", "replay-1").to_string();
    let first = client2.delta("s", &stamped).expect("replay");
    assert_eq!(first.status, 200, "seed {seed}: {}", first.body);
    let again = client2.delta("s", &stamped).expect("replay dup");
    assert_eq!(again.status, 200, "seed {seed}: {}", again.body);
    assert_eq!(
        again.body.get("deduplicated").and_then(|v| v.as_bool()),
        Some(true),
        "seed {seed}: duplicate request_id re-applied: {}",
        again.body
    );
    assert_eq!(fingerprint_of(&first.body), fingerprint_of(&again.body), "seed {seed}");

    let _ = Command::new("kill").args(["-9", &child2.id().to_string()]).status();
    std::fs::remove_dir_all(&dir).unwrap();
}
