//! Recovery edge cases for durable sessions, each fingerprint-compared
//! against a never-persisted in-process oracle running the same operation
//! sequence: empty log, snapshot-only recovery (snapshot every delta),
//! log-only recovery (snapshot cadence never reached), double-recovery
//! idempotence, and recovery of a spilled (evicted) session.

use explain3d_durability::DurabilityConfig;
use explain3d_service::error::ServiceError;
use explain3d_service::registry::{ServiceConfig, SessionRegistry};
use explain3d_service::wire;
use std::path::PathBuf;

const CREATE_BODY: &str = r#"{
  "left":  {"name": "Q1", "columns": [["k", "str"]], "key": ["k"],
            "tuples": [{"values": ["alpha"], "impact": 2.0},
                       {"values": ["beta"]},
                       {"values": ["gamma"]}]},
  "right": {"name": "Q2", "columns": [["k", "str"]], "key": ["k"],
            "tuples": [{"values": ["alpha"]},
                       {"values": ["beta"]}]},
  "match": {"left": "k", "right": "k"}
}"#;

/// A serial script of always-valid deltas (inserts and index-0 updates).
const DELTAS: &[&str] = &[
    r#"{"ops": [{"op": "insert", "side": "right", "tuple": {"values": ["gamma"]}}]}"#,
    r#"{"ops": [{"op": "update", "side": "left", "index": 0,
                 "tuple": {"values": ["alpha"], "impact": 1.0}}]}"#,
    r#"{"ops": [{"op": "insert", "side": "left", "tuple": {"values": ["delta"], "impact": 3.0}}]}"#,
    r#"{"ops": [{"op": "insert", "side": "right", "tuple": {"values": ["epsilon"]}}]}"#,
    r#"{"ops": [{"op": "update", "side": "right", "index": 0,
                 "tuple": {"values": ["alpha"], "impact": 2.0}}]}"#,
];

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("e3d-recov-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable(dir: &PathBuf, snapshot_every: u64) -> ServiceConfig {
    let mut d = DurabilityConfig::new(dir);
    d.snapshot_every = snapshot_every;
    ServiceConfig { durability: Some(d), ..ServiceConfig::default() }
}

fn create(registry: &SessionRegistry, name: &str) {
    registry.create(name, wire::parse_create(CREATE_BODY).unwrap()).unwrap();
}

fn apply(registry: &SessionRegistry, name: &str, body: &str) -> String {
    let (left, right) = registry.shapes(name).unwrap();
    let parsed = wire::parse_delta(body, &left, &right).unwrap();
    let outcome = registry.delta(name, parsed.delta, parsed.deadline).unwrap();
    wire::fingerprint_hex(&outcome.report)
}

/// The oracle: the same script against a purely in-memory registry,
/// returning the final fingerprint.
fn oracle_fingerprint(deltas: &[&str]) -> String {
    let oracle = SessionRegistry::new(ServiceConfig::default());
    create(&oracle, "s");
    let mut fp = wire::fingerprint_hex(&oracle.explain("s", None).unwrap());
    for body in deltas {
        fp = apply(&oracle, "s", body);
    }
    fp
}

#[test]
fn empty_log_recovery_of_an_unexplained_session() {
    let dir = tempdir("empty");
    {
        let registry = SessionRegistry::new(durable(&dir, 64));
        create(&registry, "s");
        // No explain, no deltas: only the genesis snapshot exists.
    }
    let recovered = SessionRegistry::new(durable(&dir, 64));
    // The session is recoverable but has no report yet — exactly like the
    // never-crashed state.
    assert!(matches!(recovered.report("s"), Err(ServiceError::NoReport(_))));
    let fp = wire::fingerprint_hex(&recovered.explain("s", None).unwrap());
    assert_eq!(fp, oracle_fingerprint(&[]));
    assert_eq!(recovered.stats().recoveries, 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshot_only_recovery_when_every_delta_snapshots() {
    // snapshot_every = 1: the WAL is reset after every delta, so recovery
    // is driven by the snapshot alone (zero records replayed).
    let dir = tempdir("snaponly");
    {
        let registry = SessionRegistry::new(durable(&dir, 1));
        create(&registry, "s");
        registry.explain("s", None).unwrap();
        for body in DELTAS {
            apply(&registry, "s", body);
        }
    }
    let recovered = SessionRegistry::new(durable(&dir, 1));
    let fp = wire::fingerprint_hex(&recovered.report("s").unwrap());
    assert_eq!(fp, oracle_fingerprint(DELTAS));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn log_only_recovery_when_the_cadence_is_never_reached() {
    // A huge snapshot interval: after the explain-time snapshot, every
    // delta lives only in the WAL, so recovery replays the full suffix.
    let dir = tempdir("logonly");
    {
        let registry = SessionRegistry::new(durable(&dir, u64::MAX));
        create(&registry, "s");
        registry.explain("s", None).unwrap();
        for body in DELTAS {
            apply(&registry, "s", body);
        }
        // Dropped without any flush: recovery works off the log alone.
    }
    let recovered = SessionRegistry::new(durable(&dir, u64::MAX));
    let fp = wire::fingerprint_hex(&recovered.report("s").unwrap());
    assert_eq!(fp, oracle_fingerprint(DELTAS));
    let info = recovered.list().into_iter().find(|s| s.name == "s").unwrap();
    assert_eq!(info.deltas_logged as usize, DELTAS.len());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn double_recovery_is_idempotent() {
    // Recovering, doing nothing, and recovering again must keep producing
    // the same report — recovery itself never mutates durable state.
    let dir = tempdir("double");
    {
        let registry = SessionRegistry::new(durable(&dir, 3));
        create(&registry, "s");
        registry.explain("s", None).unwrap();
        for body in DELTAS {
            apply(&registry, "s", body);
        }
    }
    let expected = oracle_fingerprint(DELTAS);
    for round in 0..3 {
        let recovered = SessionRegistry::new(durable(&dir, 3));
        let fp = wire::fingerprint_hex(&recovered.report("s").unwrap());
        assert_eq!(fp, expected, "recovery round {round} diverged");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn spilled_session_recovers_and_keeps_serving() {
    // Budget pressure spills the LRU session to disk; the next delta
    // against it transparently recovers it and the combined
    // pre-spill + post-recovery delta sequence matches the oracle.
    let probe = SessionRegistry::new(ServiceConfig::default());
    create(&probe, "p");
    probe.explain("p", None).unwrap();
    let per_session = probe.total_footprint();

    let dir = tempdir("spill");
    let mut config = durable(&dir, 64);
    config.memory_budget = Some(per_session * 5 / 2);
    let registry = SessionRegistry::new(config);
    create(&registry, "victim");
    registry.explain("victim", None).unwrap();
    let (pre, post) = DELTAS.split_at(2);
    for body in pre {
        apply(&registry, "victim", body);
    }
    // Two fresh sessions push "victim" out as the LRU.
    for name in ["f1", "f2"] {
        create(&registry, name);
        registry.explain(name, None).unwrap();
    }
    assert!(registry.list().iter().all(|s| s.name != "victim"), "victim must have been evicted");
    assert!(registry.stats().spills >= 1);
    let mut fp = String::new();
    for body in post {
        fp = apply(&registry, "victim", body);
    }
    assert_eq!(fp, oracle_fingerprint(DELTAS));
    assert!(registry.stats().recoveries >= 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn concurrent_recovery_is_serialized_and_loses_no_acked_delta() {
    // Many threads hit a non-resident (post-restart) session at once, each
    // appending a delta the moment recovery completes. Before recovery was
    // gated per name, every racer ran `SessionStore::recover` — whose
    // WAL-open truncates the log to its valid length — so a late loser's
    // truncation could erase records the winner had already appended and
    // acknowledged. Exactly one recovery may run, and a further restart
    // must replay every acknowledged delta.
    const THREADS: usize = 8;
    let dir = tempdir("concrecov");
    {
        let registry = SessionRegistry::new(durable(&dir, u64::MAX));
        create(&registry, "s");
        registry.explain("s", None).unwrap();
        for body in DELTAS {
            apply(&registry, "s", body);
        }
        // Dropped without a flush: the next request must recover.
    }
    let registry =
        SessionRegistry::new(ServiceConfig { record_deltas: true, ..durable(&dir, u64::MAX) });
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = &registry;
            scope.spawn(move || {
                let body = format!(
                    r#"{{"ops": [{{"op": "insert", "side": "right",
                         "tuple": {{"values": ["r{t}"]}}}}]}}"#
                );
                apply(registry, "s", &body);
            });
        }
    });
    assert_eq!(registry.stats().recoveries, 1, "recovery must run exactly once");
    assert_eq!(registry.delta_log("s").unwrap().len(), THREADS);
    let live = wire::fingerprint_hex(&registry.report("s").unwrap());
    drop(registry);
    // Restart: the WAL must hold DELTAS plus every concurrent insert in
    // admitted order — a truncated acked record would diverge (or fail)
    // this replay.
    let recovered = SessionRegistry::new(durable(&dir, u64::MAX));
    assert_eq!(wire::fingerprint_hex(&recovered.report("s").unwrap()), live);
    let info = recovered.list().into_iter().find(|s| s.name == "s").unwrap();
    assert_eq!(info.deltas_logged as usize, DELTAS.len() + THREADS);
    assert!(info.explained);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn delta_storm_under_eviction_pressure_keeps_the_wal_consistent() {
    // Tiny budget + concurrent deltas: eviction keeps spilling sessions
    // while racing requests look them up. A request that loses the race
    // must re-route to the recovered slot instead of appending through the
    // removed slot's stale WAL writer — duplicate sequence numbers would
    // make the next recovery fail with a WAL gap. Every delta must
    // succeed, and a final restart must recover every session to exactly
    // the report it last served.
    const THREADS: usize = 4;
    const OPS: usize = 12;
    const NAMES: [&str; 3] = ["a", "b", "c"];
    let probe = SessionRegistry::new(ServiceConfig::default());
    create(&probe, "p");
    probe.explain("p", None).unwrap();
    let per_session = probe.total_footprint().max(1);

    let dir = tempdir("evictrace");
    let mut config = durable(&dir, 4);
    config.memory_budget = Some(per_session * 3 / 2);
    let registry = SessionRegistry::new(config);
    for name in NAMES {
        create(&registry, name);
        registry.explain(name, None).unwrap();
    }
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = &registry;
            scope.spawn(move || {
                for i in 0..OPS {
                    let name = NAMES[(t + i) % NAMES.len()];
                    let body = format!(
                        r#"{{"ops": [{{"op": "insert", "side": "right",
                             "tuple": {{"values": ["t{t}i{i}"]}}}}]}}"#
                    );
                    // `apply` unwraps: a WAL-gap Internal error (or a
                    // zombie-slot NotFound) fails the test.
                    apply(registry, name, &body);
                }
            });
        }
    });
    let live: Vec<(&str, String)> =
        NAMES.iter().map(|n| (*n, wire::fingerprint_hex(&registry.report(n).unwrap()))).collect();
    assert!(registry.stats().spills >= 1, "the budget must have forced at least one spill");
    drop(registry);
    let recovered = SessionRegistry::new(durable(&dir, 4));
    for (name, fp) in live {
        assert_eq!(
            wire::fingerprint_hex(&recovered.report(name).unwrap()),
            fp,
            "session {name} diverged after restart"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
