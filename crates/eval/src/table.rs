//! Small plain-text result tables used by the benchmark harness to print
//! paper-style figures (accuracy bars and runtime tables).

use std::fmt;

/// A simple column-aligned result table.
#[derive(Debug, Clone, Default)]
pub struct ResultTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        ResultTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row of cells (extra cells are kept, missing cells are blank).
    pub fn add_row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Adds a row from string slices.
    pub fn add_row_strs(&mut self, cells: &[&str]) -> &mut Self {
        self.add_row(cells.iter().map(|s| s.to_string()).collect())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let cols = self.headers.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate().take(cols) {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:width$}  "));
            }
            line.trim_end().to_string()
        };
        if !self.headers.is_empty() {
            out.push_str(&render_row(&self.headers));
            out.push('\n');
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * cols));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for ResultTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = ResultTable::new("Figure 6a", &["Method", "Precision", "Recall"]);
        t.add_row_strs(&["EXPLAIN3D", "0.95", "0.93"]);
        t.add_row_strs(&["GREEDY", "0.70", "0.65"]);
        let s = t.render();
        assert!(s.contains("Figure 6a"));
        assert!(s.contains("EXPLAIN3D"));
        assert!(s.contains("Precision"));
        // Columns are aligned: every data line starts with the method name padded.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn handles_ragged_rows_and_empty_tables() {
        let mut t = ResultTable::new("", &["a", "b"]);
        t.add_row(vec!["1".to_string()]);
        t.add_row(vec!["1".to_string(), "2".to_string(), "3".to_string()]);
        let s = t.render();
        assert!(!s.contains("== "));
        assert!(s.contains('3'));

        let empty = ResultTable::new("x", &[]);
        assert!(empty.is_empty());
        assert!(empty.render().contains("== x =="));
    }
}
