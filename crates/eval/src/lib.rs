//! # explain3d-eval
//!
//! Evaluation metrics for the Explain3D reproduction (Section 5.1.4):
//! precision, recall and F-measure of derived explanations and evidence
//! mappings against a gold standard, plus small helpers for assembling the
//! result tables printed by the benchmark harness.

#![warn(missing_docs)]

pub mod metrics;
pub mod table;

pub use metrics::{
    evidence_accuracy, explanation_accuracy, normalized_value_key, Accuracy, GoldStandard,
};
pub use table::ResultTable;
