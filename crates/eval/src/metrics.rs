//! Precision / recall / F-measure over explanations and evidence mappings.

use explain3d_core::prelude::{ExplanationSet, Side};
use explain3d_linkage::TupleMapping;
use std::collections::{BTreeMap, BTreeSet};

/// Precision, recall, and F-measure of a derived set against a gold set.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Accuracy {
    /// Fraction of derived items that are correct.
    pub precision: f64,
    /// Fraction of gold items that were derived.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f_measure: f64,
    /// Number of derived items.
    pub derived: usize,
    /// Number of gold items.
    pub gold: usize,
    /// Number of correctly derived items.
    pub correct: usize,
}

impl Accuracy {
    /// Computes accuracy from counts.
    ///
    /// **Empty-denominator convention** (standard IR practice — never NaN):
    ///
    /// * `derived == 0 && gold == 0` → precision = recall = f-measure = 1
    ///   (nothing to find, nothing reported: perfect agreement);
    /// * `derived == 0, gold > 0` → precision = 0 (by convention; 0/0 would
    ///   otherwise poison means), recall = 0;
    /// * `gold == 0, derived > 0` → recall = 1 (all zero gold items were
    ///   found), precision = `correct / derived` = 0;
    /// * the f-measure of two zero rates is 0, not NaN.
    ///
    /// Pinned by `empty_sets_are_handled` and
    /// `empty_denominators_never_produce_nan` below.
    pub fn from_counts(correct: usize, derived: usize, gold: usize) -> Self {
        let precision = if derived == 0 {
            if gold == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            correct as f64 / derived as f64
        };
        let recall = if gold == 0 { 1.0 } else { correct as f64 / gold as f64 };
        let f_measure = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        Accuracy { precision, recall, f_measure, derived, gold, correct }
    }

    /// Averages a collection of accuracies (used for the IMDb experiments,
    /// which report means over query instantiations).
    pub fn mean(items: &[Accuracy]) -> Accuracy {
        if items.is_empty() {
            return Accuracy::default();
        }
        let n = items.len() as f64;
        let precision = items.iter().map(|a| a.precision).sum::<f64>() / n;
        let recall = items.iter().map(|a| a.recall).sum::<f64>() / n;
        let f_measure = items.iter().map(|a| a.f_measure).sum::<f64>() / n;
        Accuracy {
            precision,
            recall,
            f_measure,
            derived: items.iter().map(|a| a.derived).sum(),
            gold: items.iter().map(|a| a.gold).sum(),
            correct: items.iter().map(|a| a.correct).sum(),
        }
    }
}

/// The gold standard of one comparison: the true explanations and the true
/// evidence mapping (both expressed over canonical tuple indexes).
#[derive(Debug, Clone, Default)]
pub struct GoldStandard {
    /// The true explanations (Δ and δ) and evidence.
    pub explanations: ExplanationSet,
}

impl GoldStandard {
    /// Creates a gold standard from an explanation set.
    pub fn new(explanations: ExplanationSet) -> Self {
        GoldStandard { explanations }
    }

    /// The gold evidence pairs.
    pub fn evidence_pairs(&self) -> BTreeSet<(usize, usize)> {
        self.explanations.evidence.matches().iter().map(|m| (m.left, m.right)).collect()
    }
}

/// A normalised identity for explanation items so that a value-based
/// explanation reported on either endpoint of a gold-matched pair counts as
/// the same explanation (the MILP may repair whichever side is cheaper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ExplanationKey {
    /// A provenance-based explanation on a specific tuple.
    Provenance(Side, usize),
    /// A value-based explanation on a tuple that has no gold counterpart.
    ValueSingle(Side, usize),
    /// A value-based explanation on either endpoint of a gold-matched pair.
    ValuePair(usize, usize),
}

/// Normalises a value-explanation endpoint into an [`ExplanationKey`], using
/// the gold evidence to identify pairs.
pub fn normalized_value_key(
    side: Side,
    tuple: usize,
    gold_pairs: &BTreeSet<(usize, usize)>,
) -> ExplanationKey {
    match side {
        Side::Left => gold_pairs
            .iter()
            .find(|&&(l, _)| l == tuple)
            .map(|&(l, r)| ExplanationKey::ValuePair(l, r))
            .unwrap_or(ExplanationKey::ValueSingle(Side::Left, tuple)),
        Side::Right => gold_pairs
            .iter()
            .find(|&&(_, r)| r == tuple)
            .map(|&(l, r)| ExplanationKey::ValuePair(l, r))
            .unwrap_or(ExplanationKey::ValueSingle(Side::Right, tuple)),
    }
}

fn explanation_keys(
    explanations: &ExplanationSet,
    gold_pairs: &BTreeSet<(usize, usize)>,
) -> BTreeSet<ExplanationKey> {
    let mut keys = BTreeSet::new();
    for p in &explanations.provenance {
        keys.insert(ExplanationKey::Provenance(p.side, p.tuple));
    }
    for v in &explanations.value {
        keys.insert(normalized_value_key(v.side, v.tuple, gold_pairs));
    }
    keys
}

/// Explanation accuracy: precision/recall/F-measure of the derived Δ ∪ δ
/// against the gold Δ ∪ δ (value explanations normalised across gold pairs).
pub fn explanation_accuracy(derived: &ExplanationSet, gold: &GoldStandard) -> Accuracy {
    let gold_pairs = gold.evidence_pairs();
    let derived_keys = explanation_keys(derived, &gold_pairs);
    let gold_keys = explanation_keys(&gold.explanations, &gold_pairs);
    let correct = derived_keys.intersection(&gold_keys).count();
    Accuracy::from_counts(correct, derived_keys.len(), gold_keys.len())
}

/// Evidence accuracy: precision/recall/F-measure of the derived evidence
/// mapping against the gold evidence mapping (as sets of index pairs).
pub fn evidence_accuracy(derived: &TupleMapping, gold: &GoldStandard) -> Accuracy {
    let derived_pairs: BTreeSet<(usize, usize)> =
        derived.matches().iter().map(|m| (m.left, m.right)).collect();
    let gold_pairs = gold.evidence_pairs();
    let correct = derived_pairs.intersection(&gold_pairs).count();
    Accuracy::from_counts(correct, derived_pairs.len(), gold_pairs.len())
}

/// Per-method accuracy results, keyed by method name (used by the harness).
pub type MethodResults = BTreeMap<String, Accuracy>;

#[cfg(test)]
mod tests {
    use super::*;
    use explain3d_linkage::TupleMatch;

    fn gold() -> GoldStandard {
        let mut e = ExplanationSet::new();
        e.evidence.push(TupleMatch::new(0, 0, 1.0));
        e.evidence.push(TupleMatch::new(1, 1, 1.0));
        e.add_provenance(Side::Left, 2);
        e.add_value(Side::Right, 1, 1.0, 2.0);
        GoldStandard::new(e)
    }

    #[test]
    fn perfect_agreement_scores_one() {
        let g = gold();
        let acc = explanation_accuracy(&g.explanations, &g);
        assert_eq!(acc.precision, 1.0);
        assert_eq!(acc.recall, 1.0);
        assert_eq!(acc.f_measure, 1.0);
        let ev = evidence_accuracy(&g.explanations.evidence, &g);
        assert_eq!(ev.f_measure, 1.0);
    }

    #[test]
    fn value_explanation_on_the_other_side_of_a_pair_still_counts() {
        let g = gold();
        let mut derived = ExplanationSet::new();
        derived.add_provenance(Side::Left, 2);
        // Gold says the right tuple 1 has the wrong value; the solver instead
        // repaired the matched left tuple 1 — same underlying discrepancy.
        derived.add_value(Side::Left, 1, 2.0, 1.0);
        derived.evidence.push(TupleMatch::new(0, 0, 0.9));
        derived.evidence.push(TupleMatch::new(1, 1, 0.9));
        let acc = explanation_accuracy(&derived, &g);
        assert_eq!(acc.precision, 1.0);
        assert_eq!(acc.recall, 1.0);
    }

    #[test]
    fn missing_and_spurious_items_lower_scores() {
        let g = gold();
        let mut derived = ExplanationSet::new();
        derived.add_provenance(Side::Left, 2); // correct
        derived.add_provenance(Side::Right, 0); // spurious
                                                // The value explanation is missing entirely.
        let acc = explanation_accuracy(&derived, &g);
        assert!((acc.precision - 0.5).abs() < 1e-12);
        assert!((acc.recall - 0.5).abs() < 1e-12);
        assert!(acc.f_measure > 0.0 && acc.f_measure < 1.0);
        assert_eq!(acc.derived, 2);
        assert_eq!(acc.gold, 2);
        assert_eq!(acc.correct, 1);
    }

    #[test]
    fn evidence_accuracy_counts_pairs() {
        let g = gold();
        let derived: TupleMapping = vec![
            TupleMatch::new(0, 0, 0.9), // correct
            TupleMatch::new(1, 0, 0.8), // wrong
        ]
        .into_iter()
        .collect();
        let acc = evidence_accuracy(&derived, &g);
        assert!((acc.precision - 0.5).abs() < 1e-12);
        assert!((acc.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_sets_are_handled() {
        let empty_gold = GoldStandard::default();
        let empty = ExplanationSet::new();
        let acc = explanation_accuracy(&empty, &empty_gold);
        assert_eq!(acc.precision, 1.0);
        assert_eq!(acc.recall, 1.0);

        // Nothing derived but gold non-empty: recall 0, precision 0.
        let g = gold();
        let acc = explanation_accuracy(&empty, &g);
        assert_eq!(acc.recall, 0.0);
        assert_eq!(acc.precision, 0.0);
        assert_eq!(acc.f_measure, 0.0);

        // Something derived but gold empty: precision 0, recall 1.
        let mut derived = ExplanationSet::new();
        derived.add_provenance(Side::Left, 0);
        let acc = explanation_accuracy(&derived, &empty_gold);
        assert_eq!(acc.precision, 0.0);
        assert_eq!(acc.recall, 1.0);
    }

    #[test]
    fn empty_denominators_never_produce_nan() {
        // The 0/0 corners of precision/recall/f-measure follow the documented
        // convention instead of going NaN.
        let both_empty = Accuracy::from_counts(0, 0, 0);
        assert_eq!(both_empty.precision, 1.0);
        assert_eq!(both_empty.recall, 1.0);
        assert_eq!(both_empty.f_measure, 1.0);

        let nothing_derived = Accuracy::from_counts(0, 0, 3);
        assert_eq!(nothing_derived.precision, 0.0);
        assert_eq!(nothing_derived.recall, 0.0);
        assert_eq!(nothing_derived.f_measure, 0.0);

        let nothing_gold = Accuracy::from_counts(0, 3, 0);
        assert_eq!(nothing_gold.precision, 0.0);
        assert_eq!(nothing_gold.recall, 1.0);

        for acc in [both_empty, nothing_derived, nothing_gold] {
            assert!(!acc.precision.is_nan() && !acc.recall.is_nan() && !acc.f_measure.is_nan());
        }
        // Means over such corners stay finite too.
        let m = Accuracy::mean(&[both_empty, nothing_derived, nothing_gold]);
        assert!(!m.precision.is_nan() && !m.recall.is_nan() && !m.f_measure.is_nan());
    }

    #[test]
    fn mean_aggregates_accuracies() {
        let a = Accuracy::from_counts(1, 1, 2); // p=1, r=0.5
        let b = Accuracy::from_counts(1, 2, 1); // p=0.5, r=1
        let m = Accuracy::mean(&[a, b]);
        assert!((m.precision - 0.75).abs() < 1e-12);
        assert!((m.recall - 0.75).abs() < 1e-12);
        assert_eq!(m.derived, 3);
        assert_eq!(m.gold, 3);
        assert_eq!(Accuracy::mean(&[]), Accuracy::default());
    }
}
