//! A fixed, long-lived worker pool over a **bounded** job queue — the
//! serving-side counterpart of the batch entry points in the crate root.
//!
//! The batch schedulers ([`crate::par_map_stealing_weighted`],
//! [`crate::par_map_iter_stealing`]) spawn scoped workers for one work list
//! and join them when it drains. A server cannot do that: work arrives
//! forever, one item at a time, and the pool must exist before any of it
//! does. [`TaskPool`] keeps `threads` workers parked on a condvar and feeds
//! them through a queue of at most `queue_capacity` pending jobs:
//!
//! * [`TaskPool::try_execute`] enqueues a job or — when the queue is full —
//!   returns it to the caller as [`PoolSaturated`] **without blocking**.
//!   That is the admission-control primitive: the caller sheds load (an
//!   HTTP 429) instead of building an unbounded backlog.
//! * Dropping the pool closes the queue, wakes every worker, runs the jobs
//!   already admitted to completion, and joins the threads — admitted work
//!   is never silently discarded.
//!
//! Jobs may panic: each job runs under `catch_unwind` (no pool lock is
//! held across it, so nothing can be poisoned) and a panic costs only that
//! job — the worker recovers in place and keeps serving, and
//! [`PoolStats::respawns`] counts how often that happened. Servers should
//! still catch and convert failures *inside* the job so callers get typed
//! errors; `explain3d-service` does, and treats a nonzero `respawns` as a
//! bug signal rather than a capacity loss.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The queue was at capacity: the job is handed back to the caller so it
/// can shed the request instead of blocking.
pub struct PoolSaturated(pub Job);

impl std::fmt::Debug for PoolSaturated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PoolSaturated(..)")
    }
}

/// Lifetime counters of a [`TaskPool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs accepted into the queue.
    pub admitted: usize,
    /// Jobs rejected because the queue was at capacity.
    pub shed: usize,
    /// Jobs that finished executing.
    pub executed: usize,
    /// Jobs that panicked; each cost one worker recovery (the worker is
    /// reused in place), never pool capacity.
    pub respawns: usize,
}

struct PoolState {
    queue: VecDeque<Job>,
    closed: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    not_empty: Condvar,
    queue_capacity: usize,
    admitted: AtomicUsize,
    shed: AtomicUsize,
    executed: AtomicUsize,
    respawns: AtomicUsize,
}

/// A fixed pool of worker threads over a bounded job queue; see the module
/// docs for the admission-control contract.
pub struct TaskPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl TaskPool {
    /// Spawns `threads` workers (at least 1) sharing a queue of at most
    /// `queue_capacity` pending jobs (at least 1).
    pub fn new(threads: usize, queue_capacity: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState { queue: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            queue_capacity: queue_capacity.max(1),
            admitted: AtomicUsize::new(0),
            shed: AtomicUsize::new(0),
            executed: AtomicUsize::new(0),
            respawns: AtomicUsize::new(0),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("explain3d-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a pool worker thread")
            })
            .collect();
        TaskPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Jobs currently waiting in the queue (not the ones executing).
    pub fn queued(&self) -> usize {
        self.shared.state.lock().expect("pool state poisoned").queue.len()
    }

    /// Lifetime admission/shed/completion counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            admitted: self.shared.admitted.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            executed: self.shared.executed.load(Ordering::Relaxed),
            respawns: self.shared.respawns.load(Ordering::Relaxed),
        }
    }

    /// A cloneable, read-only view of this pool's counters and queue
    /// depth that outlives no pool but can travel away from it (e.g. into
    /// a metrics scrape handler) without borrowing the pool itself.
    pub fn monitor(&self) -> PoolMonitor {
        PoolMonitor { shared: Arc::clone(&self.shared), threads: self.workers.len() }
    }

    /// Enqueues `job` unless the queue is at capacity, in which case the
    /// job is returned inside [`PoolSaturated`] without blocking — the
    /// caller decides how to shed it.
    pub fn try_execute(&self, job: impl FnOnce() + Send + 'static) -> Result<(), PoolSaturated> {
        let mut state = self.shared.state.lock().expect("pool state poisoned");
        if state.queue.len() >= self.shared.queue_capacity {
            drop(state);
            self.shared.shed.fetch_add(1, Ordering::Relaxed);
            return Err(PoolSaturated(Box::new(job)));
        }
        state.queue.push_back(Box::new(job));
        drop(state);
        self.shared.admitted.fetch_add(1, Ordering::Relaxed);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

/// A detached observer of one [`TaskPool`]: the lifetime counters plus
/// the instantaneous queue depth. Holding one does not keep workers alive
/// or affect shutdown — it shares only the counter block.
#[derive(Clone)]
pub struct PoolMonitor {
    shared: Arc<PoolShared>,
    threads: usize,
}

impl PoolMonitor {
    /// Lifetime admission/shed/completion counters (same as
    /// [`TaskPool::stats`]).
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            admitted: self.shared.admitted.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            executed: self.shared.executed.load(Ordering::Relaxed),
            respawns: self.shared.respawns.load(Ordering::Relaxed),
        }
    }

    /// Jobs currently waiting in the queue. Takes the pool's queue lock
    /// briefly; intended for scrape-time sampling, not hot paths.
    pub fn queued(&self) -> usize {
        match self.shared.state.lock() {
            Ok(state) => state.queue.len(),
            Err(poisoned) => poisoned.into_inner().queue.len(),
        }
    }

    /// Number of worker threads the pool was built with.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Drop for TaskPool {
    /// Closes the queue, drains the already-admitted jobs, and joins the
    /// workers.
    fn drop(&mut self) {
        self.shared.state.lock().expect("pool state poisoned").closed = true;
        self.shared.not_empty.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool state poisoned");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.closed {
                    return;
                }
                state = shared.not_empty.wait(state).expect("pool state poisoned");
            }
        };
        // No pool lock is held here, so a panicking job can poison nothing;
        // containing it keeps this worker alive (one bad request must never
        // shrink the pool permanently).
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            shared.respawns.fetch_add(1, Ordering::Relaxed);
        }
        shared.executed.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn executes_admitted_jobs() {
        let pool = TaskPool::new(4, 64);
        let (tx, rx) = mpsc::channel::<usize>();
        for i in 0..32 {
            let tx = tx.clone();
            pool.try_execute(move || tx.send(i).unwrap()).unwrap();
        }
        drop(tx);
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..32).collect::<Vec<_>>());
        assert_eq!(pool.stats().admitted, 32);
        assert_eq!(pool.stats().shed, 0);
    }

    #[test]
    fn sheds_when_the_queue_is_full() {
        // One worker blocked on a gate, queue of 2: the third enqueue and
        // beyond must be rejected without blocking.
        let pool = TaskPool::new(1, 2);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.try_execute(move || {
            started_tx.send(()).unwrap();
            gate_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv_timeout(Duration::from_secs(5)).expect("worker picked up the gate job");
        // Worker busy: these two fill the queue.
        pool.try_execute(|| {}).unwrap();
        pool.try_execute(|| {}).unwrap();
        let rejected = pool.try_execute(|| {});
        assert!(rejected.is_err(), "a full queue must shed");
        assert_eq!(pool.stats().shed, 1);
        // The rejected job is handed back and still runnable by the caller.
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        let PoolSaturated(job) = pool
            .try_execute(move || {
                ran2.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap_err();
        job();
        assert_eq!(ran.load(Ordering::Relaxed), 1);
        gate_tx.send(()).unwrap();
    }

    #[test]
    fn drop_drains_admitted_work() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = TaskPool::new(2, 128);
            for _ in 0..100 {
                let counter = Arc::clone(&counter);
                pool.try_execute(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                })
                .unwrap();
            }
            // Dropping here must run all 100 admitted jobs before joining.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn a_panicking_job_never_shrinks_the_pool() {
        // Single worker: if the panic killed it, the follow-up jobs would
        // never run and the recv below would time out.
        let pool = TaskPool::new(1, 16);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the expected panics
        for _ in 0..3 {
            pool.try_execute(|| panic!("bad request")).unwrap();
        }
        let (tx, rx) = mpsc::channel::<u8>();
        pool.try_execute(move || tx.send(9).unwrap()).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).expect("worker survived the panics"), 9);
        std::panic::set_hook(prev);
        // `executed` is bumped after the job body returns; give the worker
        // a moment to get there.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.stats().executed < 4 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        let stats = pool.stats();
        assert_eq!(stats.respawns, 3);
        assert_eq!(stats.executed, 4, "panicked jobs still count as executed");
    }

    #[test]
    fn minimum_sizes_are_clamped() {
        let pool = TaskPool::new(0, 0);
        assert_eq!(pool.threads(), 1);
        let (tx, rx) = mpsc::channel::<u8>();
        pool.try_execute(move || tx.send(7).unwrap()).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 7);
    }
}
