//! Readiness wakeups for event loops: a self-pipe a poller can watch.
//!
//! A readiness-based server parks in `epoll_wait`/`poll` and must be woken
//! when work completes *off* the event thread — e.g. when a
//! [`TaskPool`](crate::TaskPool) worker finishes a request and queues the
//! response for writing. [`WakeSignal`] is the classic self-pipe: the
//! producer side writes one byte per [`notify`](WakeSignal::notify), the
//! event loop registers [`fd`](WakeSignal::fd) for readability and calls
//! [`drain`](WakeSignal::drain) when it fires.
//!
//! ## Protocol
//!
//! Both pipe ends are switched to `O_NONBLOCK`, which buys two liveness
//! guarantees:
//!
//! * **`notify` never blocks.** A pipe holds ~64 KiB; once it is full,
//!   `write` returns `EAGAIN` and `notify` treats that as success — a full
//!   pipe *is* a pending wakeup, so the notification coalesces with the
//!   ~65k already in flight instead of stalling a pool worker behind a
//!   slow event loop.
//! * **`drain` never blocks.** It loops until the pipe is empty
//!   (`EAGAIN`), so a saturated pipe is fully recovered by one drain call
//!   rather than re-waking the poller 128 times.
//!
//! Producers must enqueue their payload (under whatever lock guards it)
//! *before* calling `notify`: the consumer drains the pipe first and the
//! payload queue second, so every notified payload is observed by the
//! wakeup it triggered or an earlier one. Coalescing keeps that contract —
//! a dropped-for-EAGAIN byte is covered by the wakeup the resident bytes
//! already guarantee.
//!
//! If `fcntl` ever fails (exotic platform), the pipe stays blocking and
//! both calls degrade to the old bounded behaviour: `drain` performs one
//! bounded read (call it only after the poller reported readability) and a
//! saturated `notify` may briefly stall.

use std::io;

#[cfg(unix)]
mod sys {
    extern "C" {
        pub fn pipe(fds: *mut i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
        pub fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    }

    pub const F_GETFL: i32 = 3;
    pub const F_SETFL: i32 = 4;
    #[cfg(target_os = "linux")]
    pub const O_NONBLOCK: i32 = 0o4000;
    #[cfg(not(target_os = "linux"))]
    pub const O_NONBLOCK: i32 = 0x0004; // BSD lineage (macOS included)

    /// Best-effort `O_NONBLOCK`; reports whether the flag is now set.
    pub fn set_nonblocking(fd: i32) -> bool {
        // SAFETY: fcntl with F_GETFL/F_SETFL takes integer arguments only —
        // no pointers, so no memory contract to uphold. Both calls report
        // failure as -1 with errno; F_GETFL's result is checked before it is
        // fed to F_SETFL, and an invalid `fd` degrades to `false`, never UB.
        unsafe {
            let flags = fcntl(fd, F_GETFL, 0);
            if flags < 0 {
                return false;
            }
            fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0
        }
    }
}

/// A self-pipe wakeup: `notify` from any thread, poll + `drain` on the
/// event thread. See the module docs for the ordering protocol.
pub struct WakeSignal {
    read_fd: i32,
    write_fd: i32,
    /// Whether both ends took `O_NONBLOCK` (the normal case). When false,
    /// the blocking-pipe fallback protocol applies.
    nonblocking: bool,
}

impl WakeSignal {
    /// Opens the pipe pair.
    #[cfg(unix)]
    pub fn new() -> io::Result<WakeSignal> {
        let mut fds = [-1i32; 2];
        // SAFETY: pipe(2) writes exactly two i32s into the pointed-to array
        // and `fds` is a live [i32; 2] on this stack frame. On failure (!= 0)
        // the array is untouched and we bail before reading it.
        if unsafe { sys::pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        let nonblocking = sys::set_nonblocking(fds[0]) && sys::set_nonblocking(fds[1]);
        Ok(WakeSignal { read_fd: fds[0], write_fd: fds[1], nonblocking })
    }

    /// Unsupported off unix (no event-loop backend exists there either).
    #[cfg(not(unix))]
    pub fn new() -> io::Result<WakeSignal> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "WakeSignal requires a unix pipe"))
    }

    /// The fd the event loop registers for readability.
    pub fn fd(&self) -> i32 {
        self.read_fd
    }

    /// Wakes the event loop: writes one byte. Callable from any thread;
    /// enqueue the payload this wakeup announces *before* calling this.
    /// Never blocks: a full pipe (`EAGAIN`) already guarantees a pending
    /// wakeup, so the byte coalesces instead of stalling the producer.
    pub fn notify(&self) {
        #[cfg(unix)]
        {
            let byte = [1u8];
            let mut spins = 0;
            // EINTR is the only retryable outcome. EAGAIN means the pipe
            // is full — a wakeup is already guaranteed, mission
            // accomplished. Anything else (e.g. the read end closed during
            // shutdown) just drops the wakeup.
            // SAFETY: `byte` is a live 1-byte buffer and the count is 1, so
            // write(2) reads exactly one valid byte. `write_fd` stays open
            // for the life of `self` (closed only in Drop, which cannot run
            // concurrently with this `&self` call). All error returns are
            // handled via errno below.
            while unsafe { sys::write(self.write_fd, byte.as_ptr(), 1) } < 0 {
                if io::Error::last_os_error().kind() != io::ErrorKind::Interrupted || spins > 64 {
                    break;
                }
                spins += 1;
            }
        }
    }

    /// Consumes every pending wakeup byte and returns how many were read.
    /// Nonblocking: loops until the pipe reports empty, so even a
    /// saturated pipe is cleared by one call. (On the blocking-pipe
    /// fallback, performs one bounded read — call it only after the poller
    /// reported [`fd`](WakeSignal::fd) readable.)
    pub fn drain(&self) -> usize {
        #[cfg(unix)]
        {
            let mut total = 0usize;
            let mut buf = [0u8; 4096];
            loop {
                // SAFETY: `buf` is a live 4096-byte stack buffer and the
                // count passed is exactly its length, so read(2) writes only
                // within bounds; u8 has no invalid bit patterns. `read_fd`
                // stays open for the life of `self`. -1/errno handled below.
                let n = unsafe { sys::read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
                if n > 0 {
                    total += n as usize;
                    // A blocking pipe must stop at the first (guaranteed
                    // nonempty) read; a short read means empty either way.
                    if !self.nonblocking || (n as usize) < buf.len() {
                        return total;
                    }
                    continue;
                }
                if n < 0 && io::Error::last_os_error().kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                // 0 (closed) or EAGAIN (empty): done.
                return total;
            }
        }
        #[cfg(not(unix))]
        0
    }
}

impl Drop for WakeSignal {
    fn drop(&mut self) {
        #[cfg(unix)]
        // SAFETY: both fds came from pipe(2) in `new`, are owned exclusively
        // by this WakeSignal, and are closed exactly once (here). close(2)
        // takes an integer — no pointer contract; failure is ignorable since
        // the fd is gone either way and Drop cannot report it.
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn notify_then_drain_round_trips() {
        let wake = WakeSignal::new().unwrap();
        assert!(wake.fd() >= 0);
        wake.notify();
        wake.notify();
        // Two notifies → two bytes, both consumed by one drain.
        assert_eq!(wake.drain(), 2);
    }

    #[test]
    fn notifies_cross_threads() {
        let wake = Arc::new(WakeSignal::new().unwrap());
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let wake = Arc::clone(&wake);
                std::thread::spawn(move || wake.notify())
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut seen = 0;
        while seen < 4 {
            let n = wake.drain();
            assert!(n > 0, "a notified pipe must yield at least one byte");
            seen += n;
        }
        assert_eq!(seen, 4);
    }

    #[test]
    fn saturating_the_pipe_never_blocks_the_producer() {
        let wake = WakeSignal::new().unwrap();
        assert!(wake.nonblocking, "test requires the O_NONBLOCK path");
        // Far beyond any pipe's capacity: every write past the high-water
        // mark hits EAGAIN and must coalesce instead of blocking. A
        // regression here hangs the test rather than failing an assert.
        const STORM: usize = 200_000;
        for _ in 0..STORM {
            wake.notify();
        }
        // One drain clears the whole backlog (capacity-dependent size)…
        let drained = wake.drain();
        assert!(drained > 0, "a saturated pipe must yield its bytes");
        assert!(drained < STORM, "overflow notifies must have coalesced");
        // …leaving the pipe empty (an empty nonblocking read is 0, not a
        // hang), and immediately usable again.
        assert_eq!(wake.drain(), 0);
        wake.notify();
        assert_eq!(wake.drain(), 1);
    }
}
