//! Readiness wakeups for event loops: a self-pipe a poller can watch.
//!
//! A readiness-based server parks in `epoll_wait`/`poll` and must be woken
//! when work completes *off* the event thread — e.g. when a
//! [`TaskPool`](crate::TaskPool) worker finishes a request and queues the
//! response for writing. [`WakeSignal`] is the classic self-pipe: the
//! producer side writes one byte per [`notify`](WakeSignal::notify), the
//! event loop registers [`fd`](WakeSignal::fd) for readability and calls
//! [`drain`](WakeSignal::drain) when it fires.
//!
//! ## Protocol
//!
//! The pipe is left in blocking mode on purpose — no `fcntl` binding
//! needed — so the one rule is: **only call `drain` after the poller
//! reported the fd readable** (then at least one byte is present and the
//! bounded read cannot block). `drain` consumes at most one buffer's worth;
//! leftover bytes keep the fd readable, so a level-triggered poller simply
//! wakes again. Producers must enqueue their payload (under whatever lock
//! guards it) *before* calling `notify`: the consumer drains the pipe first
//! and the payload queue second, so every notified payload is observed by
//! the wakeup it triggered or an earlier one.
//!
//! A pipe holds 64 KiB, so `notify` only blocks if ~65k notifications pile
//! up undrained; the event loop drains on every wakeup, which makes that a
//! transient stall of the producer, never a deadlock (the consumer never
//! waits on producers).

use std::io;

#[cfg(unix)]
mod sys {
    extern "C" {
        pub fn pipe(fds: *mut i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
    }
}

/// A self-pipe wakeup: `notify` from any thread, poll + `drain` on the
/// event thread. See the module docs for the ordering protocol.
pub struct WakeSignal {
    read_fd: i32,
    write_fd: i32,
}

impl WakeSignal {
    /// Opens the pipe pair.
    #[cfg(unix)]
    pub fn new() -> io::Result<WakeSignal> {
        let mut fds = [-1i32; 2];
        if unsafe { sys::pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(WakeSignal { read_fd: fds[0], write_fd: fds[1] })
    }

    /// Unsupported off unix (no event-loop backend exists there either).
    #[cfg(not(unix))]
    pub fn new() -> io::Result<WakeSignal> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "WakeSignal requires a unix pipe"))
    }

    /// The fd the event loop registers for readability.
    pub fn fd(&self) -> i32 {
        self.read_fd
    }

    /// Wakes the event loop: writes one byte. Callable from any thread;
    /// enqueue the payload this wakeup announces *before* calling this.
    pub fn notify(&self) {
        #[cfg(unix)]
        {
            let byte = [1u8];
            let mut spins = 0;
            // EINTR is the only retryable outcome; anything else (e.g. the
            // read end closed during shutdown) just drops the wakeup.
            while unsafe { sys::write(self.write_fd, byte.as_ptr(), 1) } < 0 {
                if io::Error::last_os_error().kind() != io::ErrorKind::Interrupted || spins > 64 {
                    break;
                }
                spins += 1;
            }
        }
    }

    /// Consumes pending wakeup bytes (up to one buffer's worth) and returns
    /// how many were read. Call only after the poller reported
    /// [`fd`](WakeSignal::fd) readable — the pipe is blocking.
    pub fn drain(&self) -> usize {
        #[cfg(unix)]
        {
            let mut buf = [0u8; 512];
            let n = unsafe { sys::read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n > 0 {
                return n as usize;
            }
        }
        0
    }
}

impl Drop for WakeSignal {
    fn drop(&mut self) {
        #[cfg(unix)]
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn notify_then_drain_round_trips() {
        let wake = WakeSignal::new().unwrap();
        assert!(wake.fd() >= 0);
        wake.notify();
        wake.notify();
        // Two notifies → two bytes, both consumed by one bounded drain.
        assert_eq!(wake.drain(), 2);
    }

    #[test]
    fn notifies_cross_threads() {
        let wake = Arc::new(WakeSignal::new().unwrap());
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let wake = Arc::clone(&wake);
                std::thread::spawn(move || wake.notify())
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut seen = 0;
        while seen < 4 {
            let n = wake.drain();
            assert!(n > 0, "a notified pipe must yield at least one byte");
            seen += n;
        }
        assert_eq!(seen, 4);
    }
}
