//! # explain3d-parallel
//!
//! Minimal, dependency-free data parallelism for the Explain3D workspace.
//!
//! The container this reproduction builds in has no access to crates.io, so
//! `rayon` is not available; this crate provides the small slice of it the
//! hot paths need, implemented with [`std::thread::scope`]:
//!
//! * [`par_map`] / [`par_map_with`] — a parallel map over an owned work
//!   list, scheduled by an atomic cursor;
//! * [`par_map_stealing`] / [`par_map_stealing_weighted`] — a parallel map
//!   on a **work-stealing** pool (per-worker deques, steal from the tail of
//!   a victim) reporting [`StealStats`]; Stage 2 schedules sub-problem
//!   *components* on it, so one huge component no longer serialises the
//!   phase;
//! * [`par_map_iter_stealing`] / [`par_map_iter_bounded`] — a **persistent
//!   worker pool** over a streaming source: workers pull the next item from
//!   a mutex-guarded iterator as they finish the previous one, holding at
//!   most `threads` items in flight, with no per-wave barrier or respawn.
//!   Peak-residency accounting lives here in the scheduler, where the
//!   in-flight set is actually known.
//! * [`TaskPool`] ([`pool`]) — a fixed, long-lived worker pool over a
//!   **bounded** job queue with non-blocking shed
//!   ([`TaskPool::try_execute`]), the admission-control primitive of the
//!   `explain3d-service` HTTP server.
//! * [`WakeSignal`] ([`wake`]) — a self-pipe readiness wakeup, so an event
//!   loop parked in `epoll_wait`/`poll` learns that a pool worker finished
//!   a job without polling a flag.
//!
//! Determinism contract: every batch entry point returns results **in
//! input order** regardless of how the items were scheduled across worker
//! threads, so callers that merge results sequentially observe exactly the
//! ordering of the sequential code path. (The [`TaskPool`] serves
//! independent jobs and makes no ordering promise.)

#![warn(missing_docs)]

pub mod pool;
pub mod wake;

pub use pool::{PoolMonitor, PoolSaturated, PoolStats, TaskPool};
pub use wake::WakeSignal;

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use by default: the machine's available
/// parallelism (1 when it cannot be determined).
pub fn max_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Maps `f` over `items` using up to [`max_threads`] workers, returning the
/// results in input order.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_with(items, max_threads(), f)
}

/// Maps `f` over `items` using up to `threads` workers, returning the
/// results in input order. `threads <= 1` (or fewer than two items) runs
/// inline on the calling thread with no spawning overhead.
pub fn par_map_with<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Each slot is taken exactly once (guarded by the atomic cursor), so the
    // per-slot mutexes are uncontended; they exist only to move the owned
    // item out of shared state without `unsafe`.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let slots = &slots;
    let cursor = &cursor;

    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let item = slots[idx]
                        .lock()
                        .expect("parallel work slot poisoned")
                        .take()
                        .expect("parallel work slot taken twice");
                    local.push((idx, f(item)));
                }
                local
            }));
        }
        for h in handles {
            indexed.extend(h.join().expect("parallel worker panicked"));
        }
    });

    indexed.sort_by_key(|(idx, _)| *idx);
    debug_assert_eq!(indexed.len(), n);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Scheduling statistics of one work-stealing (or streaming) run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Worker threads actually used (1 for an inline run).
    pub workers: usize,
    /// Items executed.
    pub executed: usize,
    /// Items executed by a worker other than the one whose deque initially
    /// held them (always 0 for shared-source streaming runs, where items
    /// have no home worker).
    pub steals: usize,
    /// Sum of item weights (with the unweighted entry points, the item
    /// count).
    pub total_weight: usize,
    /// Peak summed weight of the items in flight at one instant — the
    /// scheduler-side residency metric: each worker holds at most one item,
    /// so this is bounded by `workers × max item weight`.
    pub peak_resident_weight: usize,
}

/// [`par_map_stealing_weighted`] with unit weights.
pub fn par_map_stealing<T, R, F>(items: Vec<T>, threads: usize, f: F) -> (Vec<R>, StealStats)
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_stealing_weighted(items, threads, |_| 1, f)
}

/// Maps `f` over `items` on a work-stealing worker pool, returning results
/// in input order plus scheduling statistics.
///
/// Items are dealt to per-worker deques in contiguous blocks; a worker pops
/// its own deque from the front and, when empty, steals from the *back* of
/// another worker's deque. Unlike a static one-item-per-worker split, a
/// single heavy item (e.g. one huge sub-problem component) no longer
/// serialises the phase: the other workers drain every remaining item
/// around it. `weight` is only used for the residency metric in the
/// returned stats.
///
/// `threads <= 1` (or fewer than two items) runs inline on the calling
/// thread with no spawning overhead — and bit-identical results, since
/// output order is input order either way.
pub fn par_map_stealing_weighted<T, R, W, F>(
    items: Vec<T>,
    threads: usize,
    weight: W,
    f: F,
) -> (Vec<R>, StealStats)
where
    T: Send,
    R: Send,
    W: Fn(&T) -> usize,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let weights: Vec<usize> = items.iter().map(&weight).collect();
    let total_weight: usize = weights.iter().sum();
    let workers = threads.min(n);
    if workers <= 1 {
        let peak = weights.iter().copied().max().unwrap_or(0);
        let out: Vec<R> = items.into_iter().map(f).collect();
        return (
            out,
            StealStats {
                workers: 1,
                executed: n,
                steals: 0,
                total_weight,
                peak_resident_weight: peak,
            },
        );
    }

    // Each slot is taken exactly once (guarded by the deques), so the
    // per-slot mutexes are uncontended; they exist only to move the owned
    // item out of shared state without `unsafe`.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let deques: Vec<Mutex<VecDeque<usize>>> =
        split_ranges(n, workers).into_iter().map(|r| Mutex::new(r.collect())).collect();
    let steals = AtomicUsize::new(0);
    let resident = AtomicUsize::new(0);
    let peak = AtomicUsize::new(0);
    let slots = &slots;
    let deques = &deques;
    let weights = &weights;
    let f = &f;
    let steals_ref = &steals;
    let resident_ref = &resident;
    let peak_ref = &peak;

    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let mut task = deques[w].lock().expect("deque poisoned").pop_front();
                    if task.is_none() {
                        for off in 1..workers {
                            let victim = (w + off) % workers;
                            task = deques[victim].lock().expect("deque poisoned").pop_back();
                            if task.is_some() {
                                steals_ref.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                    // Nothing left anywhere: items are never re-queued, so
                    // a full failed scan means the pool is drained.
                    let Some(idx) = task else { break };
                    let item = slots[idx]
                        .lock()
                        .expect("work slot poisoned")
                        .take()
                        .expect("work slot taken twice");
                    let wgt = weights[idx];
                    let now = resident_ref.fetch_add(wgt, Ordering::Relaxed) + wgt;
                    peak_ref.fetch_max(now, Ordering::Relaxed);
                    local.push((idx, f(item)));
                    resident_ref.fetch_sub(wgt, Ordering::Relaxed);
                }
                local
            }));
        }
        for h in handles {
            indexed.extend(h.join().expect("work-stealing worker panicked"));
        }
    });

    indexed.sort_by_key(|(idx, _)| *idx);
    debug_assert_eq!(indexed.len(), n);
    let stats = StealStats {
        workers,
        executed: n,
        steals: steals.load(Ordering::Relaxed),
        total_weight,
        peak_resident_weight: peak.load(Ordering::Relaxed),
    };
    (indexed.into_iter().map(|(_, r)| r).collect(), stats)
}

/// Maps `f` over the items of a (possibly unbounded) iterator on a
/// persistent worker pool, returning results in input order plus
/// scheduling statistics.
///
/// The pool is spawned once; each worker repeatedly pulls the next item
/// straight from the shared (mutex-guarded) source, processes it, and pulls
/// again. There is no per-wave barrier and no respawning: a slow item never
/// stalls the other workers, and at most `threads` items are in flight at
/// any instant. The residency accounting therefore lives *in the
/// scheduler*: `peak_resident_weight` is the observed peak of the summed
/// weights of in-flight items (≤ `threads × max item weight`).
pub fn par_map_iter_stealing<T, R, W, F>(
    source: impl Iterator<Item = T> + Send,
    threads: usize,
    weight: W,
    f: F,
) -> (Vec<R>, StealStats)
where
    T: Send,
    R: Send,
    W: Fn(&T) -> usize + Sync,
    F: Fn(T) -> R + Sync,
{
    let workers = threads.max(1);
    if workers == 1 {
        let mut out = Vec::new();
        let mut stats = StealStats { workers: 1, ..StealStats::default() };
        for item in source {
            let wgt = weight(&item);
            stats.executed += 1;
            stats.total_weight += wgt;
            stats.peak_resident_weight = stats.peak_resident_weight.max(wgt);
            out.push(f(item));
        }
        return (out, stats);
    }

    let shared: Mutex<(Box<dyn Iterator<Item = T> + Send>, usize)> =
        Mutex::new((Box::new(source), 0));
    let resident = AtomicUsize::new(0);
    let peak = AtomicUsize::new(0);
    let total_weight = AtomicUsize::new(0);
    let shared = &shared;
    let weight = &weight;
    let f = &f;
    let resident_ref = &resident;
    let peak_ref = &peak;
    let total_ref = &total_weight;

    let mut indexed: Vec<(usize, R)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    // Pull the next item while holding the source lock, so
                    // each item is pulled exactly once, in order.
                    let (item, idx) = {
                        let mut guard = shared.lock().expect("source poisoned");
                        match guard.0.next() {
                            Some(item) => {
                                let idx = guard.1;
                                guard.1 += 1;
                                (item, idx)
                            }
                            None => break,
                        }
                    };
                    let wgt = weight(&item);
                    total_ref.fetch_add(wgt, Ordering::Relaxed);
                    let now = resident_ref.fetch_add(wgt, Ordering::Relaxed) + wgt;
                    peak_ref.fetch_max(now, Ordering::Relaxed);
                    local.push((idx, f(item)));
                    resident_ref.fetch_sub(wgt, Ordering::Relaxed);
                }
                local
            }));
        }
        for h in handles {
            indexed.extend(h.join().expect("streaming worker panicked"));
        }
    });

    indexed.sort_by_key(|(idx, _)| *idx);
    let stats = StealStats {
        workers,
        executed: indexed.len(),
        steals: 0,
        total_weight: total_weight.load(Ordering::Relaxed),
        peak_resident_weight: peak.load(Ordering::Relaxed),
    };
    (indexed.into_iter().map(|(_, r)| r).collect(), stats)
}

/// Maps `f` over the items of a (possibly unbounded) iterator using up to
/// `threads` workers while holding at most `threads` *items* in memory at a
/// time, returning results in input order.
///
/// This is the streaming twin of [`par_map_with`], implemented on the
/// persistent pool of [`par_map_iter_stealing`]: workers pull items from
/// the shared source as they finish the previous one — no wave barrier, no
/// per-wave respawn — so at most `threads` items are resident at once with
/// the exact output a fully materialised run would produce.
pub fn par_map_iter_bounded<T, R, F>(
    source: impl Iterator<Item = T> + Send,
    threads: usize,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_iter_stealing(source, threads, |_| 1, f).0
}

/// Splits `0..len` into at most `pieces` contiguous, near-equal ranges
/// (none empty). Useful for chunking index spaces before [`par_map`].
pub fn split_ranges(len: usize, pieces: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let pieces = pieces.clamp(1, len);
    let base = len / pieces;
    let extra = len % pieces;
    let mut out = Vec::with_capacity(pieces);
    let mut start = 0;
    for i in 0..pieces {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 2).collect();
        assert_eq!(par_map_with(items.clone(), 4, |x| x * 2), expected);
        assert_eq!(par_map_with(items.clone(), 1, |x| x * 2), expected);
        assert_eq!(par_map(items, |x| x * 2), expected);
    }

    #[test]
    fn par_map_handles_edge_cases() {
        assert_eq!(par_map_with(Vec::<usize>::new(), 4, |x| x), Vec::<usize>::new());
        assert_eq!(par_map_with(vec![7], 4, |x| x + 1), vec![8]);
        // More threads than items.
        assert_eq!(par_map_with(vec![1, 2], 16, |x| x), vec![1, 2]);
    }

    #[test]
    fn par_map_moves_owned_items() {
        let items = vec![String::from("a"), String::from("bb"), String::from("ccc")];
        assert_eq!(par_map_with(items, 2, |s| s.len()), vec![1, 2, 3]);
    }

    #[test]
    fn par_map_iter_bounded_preserves_order() {
        let expected: Vec<usize> = (0..997).map(|x| x * 3).collect();
        assert_eq!(par_map_iter_bounded(0..997usize, 4, |x| x * 3), expected);
        assert_eq!(par_map_iter_bounded(0..997usize, 1, |x| x * 3), expected);
        assert_eq!(
            par_map_iter_bounded(std::iter::empty::<usize>(), 4, |x| x),
            Vec::<usize>::new()
        );
        // A single item, fewer items than the wave, and an exact multiple.
        assert_eq!(par_map_iter_bounded(std::iter::once(7usize), 8, |x| x + 1), vec![8]);
        assert_eq!(par_map_iter_bounded(0..8usize, 4, |x| x), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_iter_bounded_keeps_the_source_close_to_the_workers() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Workers pull one item each from the shared source, so the source
        // never runs more than the pool's in-flight window ahead of any
        // item being processed.
        let pulled = AtomicUsize::new(0);
        let source = (0..100usize).inspect(|_| {
            pulled.fetch_add(1, Ordering::Relaxed);
        });
        let max_lead = AtomicUsize::new(0);
        let out = par_map_iter_bounded(source, 4, |x| {
            let lead = pulled.load(Ordering::Relaxed).saturating_sub(x);
            max_lead.fetch_max(lead, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 100);
        assert_eq!(pulled.load(Ordering::Relaxed), 100);
        // Persistent pool: at most `threads` items are in flight, so the
        // lead over the oldest unprocessed item is bounded by the pool.
        assert!(max_lead.load(Ordering::Relaxed) <= 2 * 4, "source ran ahead of the pool");
    }

    #[test]
    fn par_map_stealing_preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 2).collect();
        for threads in [1, 2, 4, 16] {
            let (out, stats) = par_map_stealing(items.clone(), threads, |x| x * 2);
            assert_eq!(out, expected, "threads={threads}");
            assert_eq!(stats.executed, 1000);
            assert_eq!(stats.total_weight, 1000);
            assert!(stats.workers <= threads.max(1));
        }
        // Edge cases.
        let (out, stats) = par_map_stealing(Vec::<usize>::new(), 4, |x| x);
        assert!(out.is_empty());
        assert_eq!(stats.executed, 0);
        let (out, _) = par_map_stealing(vec![7], 4, |x| x + 1);
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn par_map_stealing_weighted_tracks_residency() {
        let items: Vec<usize> = (0..64).collect();
        let (out, stats) = par_map_stealing_weighted(items, 4, |&x| x + 1, |x| x);
        assert_eq!(out, (0..64).collect::<Vec<_>>());
        assert_eq!(stats.total_weight, (1..=64).sum::<usize>());
        // Each worker holds at most one item at a time.
        assert!(stats.peak_resident_weight <= 4 * 64);
        assert!(stats.peak_resident_weight >= 1);
    }

    #[test]
    fn work_is_stolen_from_a_blocked_worker() {
        // Two workers, blocks [0..4) and [4..8). Worker 1's items wait
        // until item 0 is *in flight* on worker 0, and item 0 blocks until
        // every other item has completed — so items 1, 2, 3 can only be
        // processed by worker 1, which must steal them from the back of
        // worker 0's deque. Exactly 3 steals on any OS schedule (and
        // deadlock-free: worker 1 drains everything while item 0 waits).
        let item0_started = AtomicUsize::new(0);
        let done_others = AtomicUsize::new(0);
        let (out, stats) = par_map_stealing((0..8usize).collect(), 2, |x| {
            if x == 0 {
                item0_started.store(1, Ordering::Relaxed);
                while done_others.load(Ordering::Relaxed) < 7 {
                    std::thread::yield_now();
                }
            } else {
                while item0_started.load(Ordering::Relaxed) == 0 {
                    std::thread::yield_now();
                }
                done_others.fetch_add(1, Ordering::Relaxed);
            }
            x * 10
        });
        assert_eq!(out, (0..8).map(|x| x * 10).collect::<Vec<_>>());
        assert_eq!(stats.steals, 3, "items 1..4 must be stolen from the blocked worker");
        assert_eq!(stats.workers, 2);
    }

    #[test]
    fn par_map_iter_stealing_reports_stream_stats() {
        let chunks: Vec<Vec<u32>> = (0..10).map(|i| vec![0u32; i + 1]).collect();
        for threads in [1, 3] {
            let (out, stats) =
                par_map_iter_stealing(chunks.clone().into_iter(), threads, Vec::len, |c| c.len());
            assert_eq!(out, (1..=10).collect::<Vec<_>>(), "threads={threads}");
            assert_eq!(stats.executed, 10);
            assert_eq!(stats.total_weight, (1..=10).sum::<usize>());
            assert!(stats.peak_resident_weight <= threads.max(1) * 10);
            assert!(stats.peak_resident_weight >= 10 / threads.max(1));
            assert_eq!(stats.steals, 0);
        }
    }

    #[test]
    fn split_ranges_covers_exactly() {
        for (len, pieces) in [(10, 3), (3, 10), (1, 1), (100, 7)] {
            let ranges = split_ranges(len, pieces);
            assert!(ranges.len() <= pieces && !ranges.iter().any(|r| r.is_empty()));
            let total: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(total, len);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
        assert!(split_ranges(0, 4).is_empty());
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }
}
