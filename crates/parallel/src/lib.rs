//! # explain3d-parallel
//!
//! Minimal, dependency-free data parallelism for the Explain3D workspace.
//!
//! The container this reproduction builds in has no access to crates.io, so
//! `rayon` is not available; this crate provides the small slice of it the
//! hot paths need — a deterministic parallel map over owned work items —
//! implemented with [`std::thread::scope`] and an atomic work queue.
//!
//! Determinism contract: [`par_map`] returns results **in input order**
//! regardless of how the items were scheduled across worker threads, so
//! callers that merge results sequentially observe exactly the ordering of
//! the sequential code path.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use by default: the machine's available
/// parallelism (1 when it cannot be determined).
pub fn max_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Maps `f` over `items` using up to [`max_threads`] workers, returning the
/// results in input order.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_with(items, max_threads(), f)
}

/// Maps `f` over `items` using up to `threads` workers, returning the
/// results in input order. `threads <= 1` (or fewer than two items) runs
/// inline on the calling thread with no spawning overhead.
pub fn par_map_with<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Each slot is taken exactly once (guarded by the atomic cursor), so the
    // per-slot mutexes are uncontended; they exist only to move the owned
    // item out of shared state without `unsafe`.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let slots = &slots;
    let cursor = &cursor;

    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let item = slots[idx]
                        .lock()
                        .expect("parallel work slot poisoned")
                        .take()
                        .expect("parallel work slot taken twice");
                    local.push((idx, f(item)));
                }
                local
            }));
        }
        for h in handles {
            indexed.extend(h.join().expect("parallel worker panicked"));
        }
    });

    indexed.sort_by_key(|(idx, _)| *idx);
    debug_assert_eq!(indexed.len(), n);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Maps `f` over the items of a (possibly unbounded) iterator using up to
/// `threads` workers while holding at most `threads` *items* in memory at a
/// time, returning results in input order.
///
/// This is the streaming twin of [`par_map_with`]: instead of collecting
/// the whole work list up front, items are pulled from `source` in waves of
/// `threads`, each wave is mapped in parallel, and the outputs are appended
/// in input order. Callers that feed it *chunks* of work (e.g. slices of
/// candidate pairs) get bounded peak memory — `threads × chunk size` items
/// resident — with the exact output a fully materialised run would produce.
pub fn par_map_iter_bounded<T, R, F>(
    source: impl Iterator<Item = T>,
    threads: usize,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let wave_size = threads.max(1);
    let mut source = source;
    let mut out: Vec<R> = Vec::new();
    loop {
        let wave: Vec<T> = source.by_ref().take(wave_size).collect();
        if wave.is_empty() {
            return out;
        }
        let done = wave.len() < wave_size;
        out.extend(par_map_with(wave, threads, &f));
        if done {
            return out;
        }
    }
}

/// Splits `0..len` into at most `pieces` contiguous, near-equal ranges
/// (none empty). Useful for chunking index spaces before [`par_map`].
pub fn split_ranges(len: usize, pieces: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let pieces = pieces.clamp(1, len);
    let base = len / pieces;
    let extra = len % pieces;
    let mut out = Vec::with_capacity(pieces);
    let mut start = 0;
    for i in 0..pieces {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 2).collect();
        assert_eq!(par_map_with(items.clone(), 4, |x| x * 2), expected);
        assert_eq!(par_map_with(items.clone(), 1, |x| x * 2), expected);
        assert_eq!(par_map(items, |x| x * 2), expected);
    }

    #[test]
    fn par_map_handles_edge_cases() {
        assert_eq!(par_map_with(Vec::<usize>::new(), 4, |x| x), Vec::<usize>::new());
        assert_eq!(par_map_with(vec![7], 4, |x| x + 1), vec![8]);
        // More threads than items.
        assert_eq!(par_map_with(vec![1, 2], 16, |x| x), vec![1, 2]);
    }

    #[test]
    fn par_map_moves_owned_items() {
        let items = vec![String::from("a"), String::from("bb"), String::from("ccc")];
        assert_eq!(par_map_with(items, 2, |s| s.len()), vec![1, 2, 3]);
    }

    #[test]
    fn par_map_iter_bounded_preserves_order() {
        let expected: Vec<usize> = (0..997).map(|x| x * 3).collect();
        assert_eq!(par_map_iter_bounded(0..997usize, 4, |x| x * 3), expected);
        assert_eq!(par_map_iter_bounded(0..997usize, 1, |x| x * 3), expected);
        assert_eq!(
            par_map_iter_bounded(std::iter::empty::<usize>(), 4, |x| x),
            Vec::<usize>::new()
        );
        // A single item, fewer items than the wave, and an exact multiple.
        assert_eq!(par_map_iter_bounded(std::iter::once(7usize), 8, |x| x + 1), vec![8]);
        assert_eq!(par_map_iter_bounded(0..8usize, 4, |x| x), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_iter_bounded_interleaves_pulls_and_waves() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Items are pulled on the calling thread in waves of `threads`, so
        // when the mapper runs, the source can be at most one wave ahead of
        // the item being processed.
        let pulled = AtomicUsize::new(0);
        let source = (0..100usize).inspect(|_| {
            pulled.fetch_add(1, Ordering::Relaxed);
        });
        let max_lead = AtomicUsize::new(0);
        let out = par_map_iter_bounded(source, 4, |x| {
            let lead = pulled.load(Ordering::Relaxed).saturating_sub(x);
            max_lead.fetch_max(lead, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 100);
        assert_eq!(pulled.load(Ordering::Relaxed), 100);
        // Wave scheduling: the source never runs more than one full wave
        // (plus the in-flight item) ahead of the oldest unprocessed item.
        assert!(max_lead.load(Ordering::Relaxed) <= 2 * 4, "source ran ahead of the waves");
    }

    #[test]
    fn split_ranges_covers_exactly() {
        for (len, pieces) in [(10, 3), (3, 10), (1, 1), (100, 7)] {
            let ranges = split_ranges(len, pieces);
            assert!(ranges.len() <= pieces && !ranges.iter().any(|r| r.is_empty()));
            let total: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(total, len);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
        assert!(split_ranges(0, 4).is_empty());
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }
}
