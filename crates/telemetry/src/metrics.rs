//! Atomic metrics and the Prometheus text renderer.
//!
//! ## Histogram layout
//!
//! Values are non-negative integers in whatever unit the metric declares
//! (the service records microseconds). Buckets are **log-linear**: exact
//! one-per-value buckets for `0..8`, then every power-of-two octave
//! `[2^o, 2^(o+1))` split into [`SUBS`] equal sub-buckets up to
//! [`HIST_MAX`], plus one overflow bucket. Relative quantile error is
//! bounded by `1/SUBS` (25%), the array is a fixed 101 slots
//! (`101 × 8 B` per histogram), and recording is branch-light integer
//! arithmetic plus relaxed `fetch_add`s — safe to call from any thread
//! with any locks held, though the service's lint forbids even that while
//! a ranked registry lock is held.

use std::collections::HashSet;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotone counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn inc_by(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (set from a sampler or
/// adjusted incrementally).
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Sub-buckets per power-of-two octave.
pub const SUBS: usize = 4;
/// Values below this get exact one-per-value buckets.
const LINEAR_MAX: u64 = 8;
/// First octave covered by log-linear buckets (`2^3 = LINEAR_MAX`).
const FIRST_OCTAVE: u32 = 3;
/// Last covered octave; values at or above `2^(LAST_OCTAVE+1)` overflow.
const LAST_OCTAVE: u32 = 25;
/// Smallest value landing in the overflow bucket (`2^26` ≈ 67 s in µs).
pub const HIST_MAX: u64 = 1 << (LAST_OCTAVE + 1);
/// Total bucket count including the overflow bucket.
pub const BUCKETS: usize =
    LINEAR_MAX as usize + (LAST_OCTAVE - FIRST_OCTAVE + 1) as usize * SUBS + 1;

/// Bucket index for a recorded value.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    if v >= HIST_MAX {
        return BUCKETS - 1;
    }
    let octave = 63 - v.leading_zeros();
    let sub = ((v - (1u64 << octave)) >> (octave - 2)) as usize;
    LINEAR_MAX as usize + (octave - FIRST_OCTAVE) as usize * SUBS + sub
}

/// Largest value mapping into bucket `i` (the inclusive `le` bound);
/// `u64::MAX` for the overflow bucket (rendered as `+Inf`).
pub fn bucket_bound(i: usize) -> u64 {
    if i < LINEAR_MAX as usize {
        return i as u64;
    }
    if i >= BUCKETS - 1 {
        return u64::MAX;
    }
    let k = i - LINEAR_MAX as usize;
    let octave = FIRST_OCTAVE + (k / SUBS) as u32;
    let sub = (k % SUBS) as u64;
    (1u64 << octave) + ((sub + 1) << (octave - 2)) - 1
}

/// A fixed-size log-linear histogram; see the module docs for the bucket
/// layout. Recording is lock-free and allocation-free.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts. `count` is derived from
    /// the buckets themselves, so a snapshot's `count` always equals its
    /// `+Inf` cumulative bucket — even while writers race the read.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        HistogramSnapshot {
            counts,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A consistent-enough copy of one histogram, with quantile estimation
/// and merging (used to combine per-shard or per-thread histograms).
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) observation counts, `BUCKETS` long.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value (exact, not bucketed).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Adds another snapshot's observations into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Estimated quantile (`q` in `0.0..=1.0`): the upper bound of the
    /// bucket holding the `ceil(q·count)`-th observation, clamped to the
    /// observed max. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }
}

/// What a registered metric is.
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    name: &'static str,
    labels: &'static str,
    help: &'static str,
    metric: Metric,
}

/// A process-wide metric registry. Registration (cold path) takes a
/// mutex; the returned `Arc` handles record straight onto atomics.
/// Registering the same `(name, labels)` twice returns the existing
/// metric, so handle construction is idempotent.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Registry")
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn entries(&self) -> std::sync::MutexGuard<'_, Vec<Entry>> {
        match self.entries.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Registers (or retrieves) a counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        self.counter_labeled(name, "", help)
    }

    /// Registers (or retrieves) a counter with a fixed label set, e.g.
    /// `labels = r#"route="delta""#`.
    pub fn counter_labeled(
        &self,
        name: &'static str,
        labels: &'static str,
        help: &'static str,
    ) -> Arc<Counter> {
        let mut entries = self.entries();
        for e in entries.iter() {
            if e.name == name && e.labels == labels {
                if let Metric::Counter(c) = &e.metric {
                    return Arc::clone(c);
                }
            }
        }
        let c = Arc::new(Counter::new());
        entries.push(Entry { name, labels, help, metric: Metric::Counter(Arc::clone(&c)) });
        c
    }

    /// Registers (or retrieves) a gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        let mut entries = self.entries();
        for e in entries.iter() {
            if e.name == name && e.labels.is_empty() {
                if let Metric::Gauge(g) = &e.metric {
                    return Arc::clone(g);
                }
            }
        }
        let g = Arc::new(Gauge::new());
        entries.push(Entry { name, labels: "", help, metric: Metric::Gauge(Arc::clone(&g)) });
        g
    }

    /// Registers (or retrieves) a histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Arc<Histogram> {
        self.histogram_labeled(name, "", help)
    }

    /// Registers (or retrieves) a histogram with a fixed label set.
    pub fn histogram_labeled(
        &self,
        name: &'static str,
        labels: &'static str,
        help: &'static str,
    ) -> Arc<Histogram> {
        let mut entries = self.entries();
        for e in entries.iter() {
            if e.name == name && e.labels == labels {
                if let Metric::Histogram(h) = &e.metric {
                    return Arc::clone(h);
                }
            }
        }
        let h = Arc::new(Histogram::new());
        entries.push(Entry { name, labels, help, metric: Metric::Histogram(Arc::clone(&h)) });
        h
    }

    /// Renders every registered metric into a fresh [`Exposition`]; the
    /// caller may append sampled values before calling
    /// [`finish`](Exposition::finish).
    pub fn render(&self) -> Exposition {
        let mut exp = Exposition::new();
        let entries = self.entries();
        for e in entries.iter() {
            match &e.metric {
                Metric::Counter(c) => exp.sample(e.name, e.labels, e.help, c.get()),
                Metric::Gauge(g) => exp.gauge_sample(e.name, e.labels, e.help, g.get()),
                Metric::Histogram(h) => exp.histogram(e.name, e.labels, e.help, &h.snapshot()),
            }
        }
        exp
    }
}

/// An in-progress Prometheus text exposition (format version 0.0.4).
///
/// `# HELP`/`# TYPE` headers are emitted once per metric family (the
/// first time the name appears); every `(name, labels)` series may be
/// written at most once — a duplicate is a programming error surfaced by
/// [`finish`](Exposition::finish) returning `Err`.
pub struct Exposition {
    out: String,
    families: HashSet<&'static str>,
    series: HashSet<String>,
    duplicate: Option<String>,
}

impl Default for Exposition {
    fn default() -> Self {
        Exposition::new()
    }
}

impl Exposition {
    /// Creates an empty exposition.
    pub fn new() -> Exposition {
        Exposition {
            out: String::new(),
            families: HashSet::new(),
            series: HashSet::new(),
            duplicate: None,
        }
    }

    fn header(&mut self, name: &'static str, help: &'static str, kind: &str) {
        if self.families.insert(name) {
            self.out.push_str("# HELP ");
            self.out.push_str(name);
            self.out.push(' ');
            self.out.push_str(help);
            self.out.push_str("\n# TYPE ");
            self.out.push_str(name);
            self.out.push(' ');
            self.out.push_str(kind);
            self.out.push('\n');
        }
    }

    fn claim(&mut self, name: &str, labels: &str) {
        let key = format!("{name}{{{labels}}}");
        if !self.series.insert(key.clone()) && self.duplicate.is_none() {
            self.duplicate = Some(key);
        }
    }

    fn line(&mut self, name: &str, labels: &str, value: &str) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            self.out.push_str(labels);
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(value);
        self.out.push('\n');
    }

    /// Appends one counter sample.
    pub fn sample(&mut self, name: &'static str, labels: &'static str, help: &'static str, v: u64) {
        self.header(name, help, "counter");
        self.claim(name, labels);
        self.line(name, labels, &v.to_string());
    }

    /// Appends one gauge sample.
    pub fn gauge_sample(
        &mut self,
        name: &'static str,
        labels: &'static str,
        help: &'static str,
        v: i64,
    ) {
        self.header(name, help, "gauge");
        self.claim(name, labels);
        self.line(name, labels, &v.to_string());
    }

    /// Appends one histogram: cumulative `le` buckets, `_sum`, `_count`.
    /// Only buckets up to the last non-empty one are emitted individually
    /// (plus `+Inf`), keeping the exposition compact while staying valid —
    /// cumulative counts make trailing empty buckets redundant.
    pub fn histogram(
        &mut self,
        name: &'static str,
        labels: &'static str,
        help: &'static str,
        snap: &HistogramSnapshot,
    ) {
        self.header(name, help, "histogram");
        let count = snap.count();
        let last_used = snap.counts.iter().rposition(|&c| c > 0).unwrap_or(0);
        let mut cumulative = 0u64;
        for (i, &c) in snap.counts.iter().enumerate() {
            cumulative += c;
            if i > last_used {
                break;
            }
            if i == BUCKETS - 1 {
                break; // +Inf is emitted below, once
            }
            let le = bucket_bound(i).to_string();
            let with_le = if labels.is_empty() {
                format!("le=\"{le}\"")
            } else {
                format!("{labels},le=\"{le}\"")
            };
            self.claim(&format!("{name}_bucket"), &with_le);
            self.line(&format!("{name}_bucket"), &with_le, &cumulative.to_string());
        }
        let inf = if labels.is_empty() {
            "le=\"+Inf\"".to_string()
        } else {
            format!("{labels},le=\"+Inf\"")
        };
        self.claim(&format!("{name}_bucket"), &inf);
        self.line(&format!("{name}_bucket"), &inf, &count.to_string());
        self.claim(&format!("{name}_sum"), labels);
        self.line(&format!("{name}_sum"), labels, &snap.sum.to_string());
        self.claim(&format!("{name}_count"), labels);
        self.line(&format!("{name}_count"), labels, &count.to_string());
    }

    /// Finishes the exposition. `Err` carries the first duplicated series
    /// name if any `(name, labels)` pair was written twice.
    pub fn finish(self) -> Result<String, String> {
        match self.duplicate {
            Some(dup) => Err(dup),
            None => Ok(self.out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_partition_the_value_space() {
        // Every value maps into exactly the bucket whose bound brackets it:
        // bound(i-1) < v <= bound(i).
        let probes: Vec<u64> = (0..200)
            .chain((0..40).flat_map(|o: u32| {
                let base = 1u64 << (o % 27);
                [base.saturating_sub(1), base, base + 1, base + base / 2]
            }))
            .chain([HIST_MAX - 1, HIST_MAX, HIST_MAX + 5, u64::MAX])
            .collect();
        for v in probes {
            let i = bucket_index(v);
            assert!(v <= bucket_bound(i), "v={v} above its bucket bound {}", bucket_bound(i));
            if i > 0 {
                assert!(v > bucket_bound(i - 1), "v={v} not above previous bound");
            }
        }
        // Bounds strictly increase.
        for i in 1..BUCKETS {
            assert!(bucket_bound(i) > bucket_bound(i - 1), "bounds must increase at {i}");
        }
    }

    #[test]
    fn observe_snapshot_and_count_agree() {
        let h = Histogram::new();
        for v in [0, 1, 7, 8, 9, 100, 1_000_000, HIST_MAX + 1] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 8);
        assert_eq!(s.sum, 1 + 7 + 8 + 9 + 100 + 1_000_000 + HIST_MAX + 1);
        assert_eq!(s.max, HIST_MAX + 1);
        assert_eq!(s.counts[BUCKETS - 1], 1, "overflow value lands in +Inf bucket");
    }

    #[test]
    fn merge_adds_counts_sums_and_maxes() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1, 10, 100] {
            a.observe(v);
        }
        for v in [2, 20, 2_000] {
            b.observe(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 6);
        assert_eq!(m.sum, 1 + 10 + 100 + 2 + 20 + 2_000);
        assert_eq!(m.max, 2_000);
    }

    #[test]
    fn quantiles_from_buckets_track_exact_quantiles_on_random_samples() {
        use explain3d_datagen::rng::{Rng, SeedableRng, StdRng};
        let mut rng = StdRng::seed_from_u64(0xE3D_7E1E);
        for round in 0..8 {
            let h = Histogram::new();
            let mut exact: Vec<u64> = Vec::new();
            let n = 500 + round * 700;
            for _ in 0..n {
                // Log-uniform-ish values spanning the bucket range.
                let magnitude = rng.gen_range(0..22u32);
                let v = rng.gen_range(0..(2u64 << magnitude));
                h.observe(v);
                exact.push(v);
            }
            exact.sort_unstable();
            let snap = h.snapshot();
            for q in [0.5, 0.9, 0.99] {
                let target = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
                let truth = exact[target];
                let est = snap.quantile(q);
                // Log-linear with 4 sub-buckets: estimate is the bucket
                // upper bound, so truth <= est <= truth * 1.25 (+ the
                // linear-region absolute slack of 1).
                assert!(est >= truth, "round {round} q{q}: est {est} < truth {truth}");
                let ceiling = truth + truth / SUBS as u64 + 1;
                assert!(est <= ceiling, "round {round} q{q}: est {est} > ceiling {ceiling}");
            }
            assert_eq!(snap.quantile(1.0), *exact.last().unwrap(), "p100 is the exact max");
        }
    }

    #[test]
    fn registry_registration_is_idempotent() {
        let r = Registry::new();
        let c1 = r.counter("e3d_test_total", "a counter");
        let c2 = r.counter("e3d_test_total", "a counter");
        c1.inc();
        c2.inc_by(2);
        assert_eq!(c1.get(), 3, "same handle behind both registrations");
        let h1 = r.histogram_labeled("e3d_lat_us", r#"route="x""#, "hist");
        let h2 = r.histogram_labeled("e3d_lat_us", r#"route="y""#, "hist");
        h1.observe(5);
        assert_eq!(h2.snapshot().count(), 0, "different labels are different series");
    }

    #[test]
    fn exposition_renders_families_once_and_flags_duplicates() {
        let r = Registry::new();
        r.counter_labeled("e3d_req_total", r#"route="a""#, "requests").inc();
        r.counter_labeled("e3d_req_total", r#"route="b""#, "requests").inc_by(2);
        r.gauge("e3d_depth", "queue depth").set(7);
        r.histogram("e3d_lat_us", "latency").observe(10);
        let text = r.render().finish().expect("no duplicates");
        assert_eq!(text.matches("# TYPE e3d_req_total counter").count(), 1);
        assert!(text.contains("e3d_req_total{route=\"a\"} 1"));
        assert!(text.contains("e3d_req_total{route=\"b\"} 2"));
        assert!(text.contains("e3d_depth 7"));
        assert!(text.contains("e3d_lat_us_count 1"));
        assert!(text.contains("le=\"+Inf\"} 1"));

        let mut exp = r.render();
        exp.sample("e3d_depth", "", "smuggled duplicate", 1);
        assert!(exp.finish().is_err(), "duplicate series must be rejected");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(Histogram::new());
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.observe(t * 1_000 + (i % 97));
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
        assert_eq!(h.snapshot().count(), 80_000);
    }
}
