//! Std-only telemetry primitives for the Explain3D service.
//!
//! Two halves, both allocation-free on the hot path:
//!
//! * [`metrics`] — a process-wide [`Registry`](metrics::Registry) of
//!   atomic [`Counter`](metrics::Counter)s, [`Gauge`](metrics::Gauge)s,
//!   and **log-linear bucketed** [`Histogram`](metrics::Histogram)s
//!   (fixed-size `AtomicU64` bucket arrays; recording is one index
//!   computation plus three relaxed atomic adds — no locks, no
//!   allocation). The registry renders itself as Prometheus text
//!   exposition format (`# HELP`/`# TYPE`, cumulative `le` buckets,
//!   `_sum`/`_count`) via [`Exposition`](metrics::Exposition), which also
//!   lets a scrape handler append point-in-time sampled values (queue
//!   depths, uptime) without pre-registering them.
//!
//! * [`trace`] — per-request structured traces: a seeded
//!   [`TraceIdGen`](trace::TraceIdGen) (xoshiro256++, the same in-tree
//!   PRNG the workload generators use), a [`Trace`](trace::Trace) that
//!   accumulates named spans with parent links and monotonic start/stop
//!   offsets, and a fixed-capacity **lock-striped**
//!   [`TraceRing`](trace::TraceRing) retaining finished traces for
//!   `/debug/trace/<id>` and `/debug/slow` lookups.
//!
//! The crate deliberately knows nothing about HTTP, sessions, or the
//! registry lock family: consumers thread an `Option<Arc<…>>` handle and
//! pay a single branch when telemetry is disabled.

#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Exposition, Gauge, Histogram, HistogramSnapshot, Registry};
pub use trace::{FinishedTrace, SpanRec, Trace, TraceIdGen, TraceRing, NO_PARENT};
