//! Per-request structured traces and the retention ring.
//!
//! A [`Trace`] is built by exactly one thread at a time (ownership moves
//! along the request path with the request itself), so span recording is
//! plain `Vec` pushes against a pre-sized buffer — no atomics, no locks.
//! Cross-thread cost is paid only twice per request: once to draw an id
//! from [`TraceIdGen`] and once to park the finished trace in the
//! lock-striped [`TraceRing`].

use explain3d_datagen::rng::{SeedableRng, StdRng};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Parent sentinel for root spans.
pub const NO_PARENT: u32 = u32::MAX;

/// Spans a trace pre-allocates room for; requests with deeper trees just
/// grow the vector (rare, cold).
const SPAN_CAPACITY: usize = 24;

/// One recorded span: a named interval with a parent link, as offsets in
/// microseconds from the trace epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Static span name (e.g. `"parse"`, `"wal_append"`).
    pub name: &'static str,
    /// Index of the parent span in the trace, or [`NO_PARENT`].
    pub parent: u32,
    /// Start offset from the trace epoch, microseconds.
    pub start_us: u64,
    /// End offset from the trace epoch, microseconds (`>= start_us`).
    pub end_us: u64,
}

/// An in-flight trace: an id, an epoch, and the spans recorded so far.
#[derive(Debug)]
pub struct Trace {
    /// Wire-visible identifier (nonzero; rendered as 16 hex digits).
    pub id: u64,
    epoch: Instant,
    spans: Vec<SpanRec>,
}

impl Trace {
    /// Starts a trace whose span offsets are measured from `epoch`
    /// (typically the instant the first request byte arrived).
    pub fn new(id: u64, epoch: Instant) -> Trace {
        Trace { id, epoch, spans: Vec::with_capacity(SPAN_CAPACITY) }
    }

    /// Microseconds elapsed since the trace epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Opens a span starting now; close it with [`end`](Trace::end).
    /// Returns the span's index, usable as a `parent` for children.
    pub fn start(&mut self, name: &'static str, parent: u32) -> u32 {
        let idx = self.spans.len() as u32;
        let now = self.now_us();
        self.spans.push(SpanRec { name, parent, start_us: now, end_us: now });
        idx
    }

    /// Closes the span opened by [`start`](Trace::start).
    pub fn end(&mut self, idx: u32) {
        let now = self.now_us();
        if let Some(span) = self.spans.get_mut(idx as usize) {
            span.end_us = now.max(span.start_us);
        }
    }

    /// Records an interval that was timed externally (e.g. a WAL append
    /// measured while a lock was held, reported after release). `start_us`
    /// and `end_us` are offsets from the trace epoch.
    pub fn record(&mut self, name: &'static str, parent: u32, start_us: u64, end_us: u64) -> u32 {
        let idx = self.spans.len() as u32;
        self.spans.push(SpanRec { name, parent, start_us, end_us: end_us.max(start_us) });
        idx
    }

    /// Seals the trace. `total_us` is the request's wall time measured
    /// from the same epoch the spans use.
    pub fn finish(self, total_us: u64) -> FinishedTrace {
        FinishedTrace { id: self.id, total_us, spans: self.spans }
    }
}

/// A completed trace retained for `/debug/trace/<id>` lookups.
#[derive(Debug, Clone)]
pub struct FinishedTrace {
    /// The trace id.
    pub id: u64,
    /// Request wall time in microseconds.
    pub total_us: u64,
    /// All recorded spans, in recording order (parents precede children).
    pub spans: Vec<SpanRec>,
}

/// Seeded trace-id source (xoshiro256++ behind a mutex; one draw per
/// request). Ids are nonzero so `0` can mean "no trace" on the wire.
#[derive(Debug)]
pub struct TraceIdGen {
    rng: Mutex<StdRng>,
}

impl TraceIdGen {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> TraceIdGen {
        TraceIdGen { rng: Mutex::new(StdRng::seed_from_u64(seed)) }
    }

    /// Draws the next id (nonzero).
    pub fn next_id(&self) -> u64 {
        let mut rng = match self.rng.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        loop {
            // xoshiro yields 0 with probability 2^-64; loop for the contract.
            let id = rng.gen_u64();
            if id != 0 {
                return id;
            }
        }
    }
}

/// Extension drawing raw words out of the datagen PRNG (its public
/// surface is range-oriented; ids want the full 64 bits).
trait GenU64 {
    fn gen_u64(&mut self) -> u64;
}

impl GenU64 for StdRng {
    fn gen_u64(&mut self) -> u64 {
        use explain3d_datagen::rng::Rng;
        // Two 32-bit draws spliced together keep us on the public API.
        let hi = self.gen_range(0..=u32::MAX as u64);
        let lo = self.gen_range(0..=u32::MAX as u64);
        (hi << 32) | lo
    }
}

/// Number of independently locked stripes.
const STRIPES: usize = 8;

struct Stripe {
    slots: Vec<Option<Arc<FinishedTrace>>>,
    next: usize,
}

/// A fixed-capacity ring of finished traces, striped by trace id so
/// writers on different stripes never contend and a lookup only scans
/// one stripe. When a stripe is full the oldest trace in it is evicted.
pub struct TraceRing {
    stripes: Vec<Mutex<Stripe>>,
    per_stripe: usize,
}

impl TraceRing {
    /// Creates a ring retaining roughly `capacity` traces (rounded up to
    /// a multiple of the stripe count; minimum one slot per stripe).
    pub fn new(capacity: usize) -> TraceRing {
        let per_stripe = capacity.div_ceil(STRIPES).max(1);
        let stripes = (0..STRIPES)
            .map(|_| Mutex::new(Stripe { slots: vec![None; per_stripe], next: 0 }))
            .collect();
        TraceRing { stripes, per_stripe }
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.per_stripe * STRIPES
    }

    fn stripe(&self, id: u64) -> MutexGuard<'_, Stripe> {
        let m = &self.stripes[(id % STRIPES as u64) as usize];
        match m.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Retains a finished trace, evicting the oldest in its stripe if
    /// the stripe is full.
    pub fn push(&self, trace: FinishedTrace) {
        let arc = Arc::new(trace);
        let mut stripe = self.stripe(arc.id);
        let at = stripe.next;
        stripe.slots[at] = Some(arc);
        stripe.next = (at + 1) % self.per_stripe;
    }

    /// Looks up a retained trace by id.
    pub fn get(&self, id: u64) -> Option<Arc<FinishedTrace>> {
        let stripe = self.stripe(id);
        stripe.slots.iter().flatten().find(|t| t.id == id).cloned()
    }

    /// The `limit` slowest retained traces, slowest first.
    pub fn slowest(&self, limit: usize) -> Vec<Arc<FinishedTrace>> {
        let mut all: Vec<Arc<FinishedTrace>> = Vec::new();
        for m in &self.stripes {
            let stripe = match m.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            all.extend(stripe.slots.iter().flatten().cloned());
        }
        all.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.id.cmp(&b.id)));
        all.truncate(limit);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn finished(id: u64, total_us: u64) -> FinishedTrace {
        FinishedTrace { id, total_us, spans: Vec::new() }
    }

    #[test]
    fn ids_are_seeded_deterministic_and_nonzero() {
        let a = TraceIdGen::new(11);
        let b = TraceIdGen::new(11);
        for _ in 0..100 {
            let id = a.next_id();
            assert_eq!(id, b.next_id(), "same seed, same stream");
            assert_ne!(id, 0);
        }
        let c = TraceIdGen::new(12);
        assert_ne!(a.next_id(), c.next_id(), "different seeds diverge");
    }

    #[test]
    fn spans_nest_and_offsets_are_monotone() {
        let mut t = Trace::new(5, Instant::now());
        let root = t.start("handle", NO_PARENT);
        std::thread::sleep(Duration::from_millis(2));
        let child = t.start("inner", root);
        std::thread::sleep(Duration::from_millis(2));
        t.end(child);
        t.end(root);
        t.record("external", root, 1, 3);
        let total = t.now_us();
        let f = t.finish(total);
        assert_eq!(f.spans.len(), 3);
        let r = &f.spans[root as usize];
        let c = &f.spans[child as usize];
        assert_eq!(c.parent, root);
        assert!(c.start_us >= r.start_us && c.end_us <= r.end_us, "child inside parent");
        assert!(r.end_us <= f.total_us);
        assert_eq!(f.spans[2], SpanRec { name: "external", parent: root, start_us: 1, end_us: 3 });
    }

    #[test]
    fn ring_wraps_around_keeping_the_newest() {
        let ring = TraceRing::new(16);
        let cap = ring.capacity();
        // Saturate one stripe: ids congruent mod STRIPES share a stripe.
        let per_stripe = cap / 8;
        let ids: Vec<u64> = (0..(per_stripe as u64 * 3)).map(|i| i * 8 + 1).collect();
        for &id in &ids {
            ring.push(finished(id, id));
        }
        for &id in &ids[..ids.len() - per_stripe] {
            assert!(ring.get(id).is_none(), "evicted trace {id} must be gone");
        }
        for &id in &ids[ids.len() - per_stripe..] {
            assert!(ring.get(id).is_some(), "recent trace {id} must be retained");
        }
    }

    #[test]
    fn slowest_orders_by_total_and_respects_limit() {
        let ring = TraceRing::new(64);
        for id in 1..=20u64 {
            ring.push(finished(id, id * 100));
        }
        let top = ring.slowest(5);
        let totals: Vec<u64> = top.iter().map(|t| t.total_us).collect();
        assert_eq!(totals, vec![2000, 1900, 1800, 1700, 1600]);
        assert!(ring.slowest(0).is_empty());
    }

    #[test]
    fn concurrent_writers_and_readers_torture() {
        let ring = Arc::new(TraceRing::new(128));
        let writers: Vec<_> = (0..4u64)
            .map(|w| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let id = w * 1_000_000 + i + 1;
                        ring.push(finished(id, i));
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2u64)
            .map(|r| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let _ = ring.get(r * 1_000_000 + i + 1);
                        if i % 64 == 0 {
                            let top = ring.slowest(10);
                            assert!(top.len() <= 10);
                            assert!(top.windows(2).all(|w| w[0].total_us >= w[1].total_us));
                        }
                    }
                })
            })
            .collect();
        for t in writers.into_iter().chain(readers) {
            t.join().unwrap();
        }
        // Ring is full and every retained trace is findable by id.
        let all = ring.slowest(usize::MAX);
        assert_eq!(all.len(), ring.capacity());
        for t in &all {
            assert!(ring.get(t.id).is_some());
        }
    }
}
