//! # explain3d-milp
//!
//! Mixed-integer linear programming substrate for the Explain3D reproduction
//! (VLDB 2019). The paper's Stage 2 encodes the optimal-explanation problem
//! as a MILP and hands it to IBM CPLEX; this crate is the CPLEX substitute:
//!
//! * [`expr`] — linear expressions over variables;
//! * [`model`] — variables (continuous / integer / binary), linear
//!   constraints, objective, and solution types;
//! * [`revised`] — the production LP kernel: a sparse revised simplex with
//!   an LU-factorised basis, eta-file (product-form) updates with periodic
//!   refactorisation, Dantzig + partial pricing, and dual-simplex warm
//!   starts across bound changes;
//! * [`simplex`] — the dense two-phase tableau kernel, kept as the
//!   equivalence baseline and numerical fallback;
//! * [`branch_bound`] — best-effort depth-first branch-and-bound with
//!   most-fractional branching, bound pruning, node/time limits, optional
//!   warm-start hints, and warm-started LP re-solves (each child node
//!   starts from its parent's optimal basis instead of phase 1).
//!
//! The encodings produced by Explain3D (especially after the
//! smart-partitioning optimiser splits the problem) are small enough that an
//! exact textbook solver returns the same optimum as a commercial solver;
//! only absolute runtimes differ.
//!
//! ```
//! use explain3d_milp::prelude::*;
//!
//! let mut m = Model::new();
//! let x = m.add_binary("x");
//! let y = m.add_binary("y");
//! m.add_le("capacity", LinExpr::term(x, 2.0) + LinExpr::term(y, 2.0), 3.0);
//! m.maximize(LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0));
//! let sol = solve_default(&m);
//! assert_eq!(sol.status, SolveStatus::Optimal);
//! assert_eq!(sol.objective.round() as i64, 1);
//! ```

#![warn(missing_docs)]

pub mod branch_bound;
pub mod expr;
pub mod model;
pub mod revised;
pub mod simplex;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::branch_bound::{
        solve, solve_default, solve_with_stats, LpKernel, MilpConfig, SolveStats,
    };
    pub use crate::expr::{LinExpr, VarId};
    pub use crate::model::{
        Constraint, Direction, Model, Sense, Solution, SolveStatus, VarKind, Variable,
    };
    pub use crate::revised::{solve_lp_sparse, SparseBasis, SparseLp};
    pub use crate::simplex::{solve_lp, solve_lp_dense, LpResult, LpStatus};
}

pub use prelude::*;
