//! Dense two-phase primal simplex for LP relaxations — the reference
//! baseline kernel.
//!
//! The solver works on a bounded-variable LP derived from a
//! [`Model`](crate::model::Model): every variable has a finite lower bound
//! (shifted to zero internally) and an optional finite upper bound (added as
//! a row). Phase 1 drives artificial variables out of the basis; phase 2
//! optimises the user objective. Pivoting uses Dantzig's rule with a Bland's
//! rule fallback to guarantee termination on degenerate problems.
//!
//! Production solves go through [`solve_lp`], which dispatches to the
//! sparse revised simplex of [`revised`](crate::revised); the dense kernel
//! ([`solve_lp_dense`]) is kept as the equivalence baseline, the numerical
//! fallback, and the `LpKernel::Dense` configuration of the
//! branch-and-bound solver.

// Dense-tableau kernel: index arithmetic over a flat row-major buffer is the
// clearest way to express simplex pivots, so the indexing-style lint is
// opted out for this module.
#![allow(clippy::needless_range_loop)]
use crate::model::{Direction, Model, Sense};

/// Status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

/// Result of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct LpResult {
    /// Solve status.
    pub status: LpStatus,
    /// Variable values in the *original* model space (empty unless optimal).
    pub values: Vec<f64>,
    /// Objective value in the model's own direction (0 unless optimal).
    pub objective: f64,
}

const EPS: f64 = 1e-9;
const FEAS_EPS: f64 = 1e-7;

/// Solves the LP relaxation of `model` with the production kernel (the
/// sparse revised simplex, falling back to the dense kernel on numerical
/// trouble).
///
/// `bound_overrides`, when non-empty, supplies per-variable `(lower, upper)`
/// bounds replacing the model's (used by branch-and-bound).
pub fn solve_lp(model: &Model, bound_overrides: &[(f64, f64)]) -> LpResult {
    crate::revised::solve_lp_sparse(model, bound_overrides)
}

/// Solves the LP relaxation of `model` with the dense reference kernel.
///
/// `bound_overrides`, when non-empty, supplies per-variable `(lower, upper)`
/// bounds replacing the model's (used by branch-and-bound).
pub fn solve_lp_dense(model: &Model, bound_overrides: &[(f64, f64)]) -> LpResult {
    let n = model.num_vars();
    let mut lower = Vec::with_capacity(n);
    let mut upper = Vec::with_capacity(n);
    for (i, v) in model.variables().iter().enumerate() {
        let (lb, ub) =
            if bound_overrides.is_empty() { (v.lower, v.upper) } else { bound_overrides[i] };
        if lb > ub + EPS {
            return LpResult { status: LpStatus::Infeasible, values: vec![], objective: 0.0 };
        }
        lower.push(lb);
        upper.push(ub);
    }

    // Objective in "maximise" form, over shifted variables x' = x - lb.
    let max_sign = match model.direction() {
        Direction::Maximize => 1.0,
        Direction::Minimize => -1.0,
    };
    let mut obj_coeffs = vec![0.0; n];
    let mut obj_const = model.objective().constant_part() * max_sign;
    for (var, c) in model.objective().terms() {
        obj_coeffs[var.index()] = c * max_sign;
        obj_const += c * max_sign * lower[var.index()];
    }

    // Assemble rows: model constraints plus upper-bound rows.
    // Each row: (coeffs over structural vars, sense, rhs) in shifted space.
    let mut rows: Vec<SparseRow> = Vec::new();
    for c in model.constraints() {
        let mut coeffs = Vec::with_capacity(c.expr.num_terms());
        let mut shift = 0.0;
        for (var, coef) in c.expr.terms() {
            coeffs.push((var.index(), coef));
            shift += coef * lower[var.index()];
        }
        rows.push((coeffs, c.sense, c.rhs - shift));
    }
    for i in 0..n {
        if upper[i].is_finite() {
            let span = upper[i] - lower[i];
            rows.push((vec![(i, 1.0)], Sense::Le, span));
        }
    }

    let m = rows.len();
    if m == 0 {
        // No constraints at all: each variable sits at whichever bound its
        // objective coefficient prefers.
        let mut values = vec![0.0; n];
        let mut obj = model.objective().constant_part();
        for i in 0..n {
            let c = obj_coeffs[i];
            values[i] = if c > EPS {
                if upper[i].is_infinite() {
                    return LpResult {
                        status: LpStatus::Unbounded,
                        values: vec![],
                        objective: 0.0,
                    };
                }
                upper[i]
            } else {
                lower[i]
            };
        }
        for (var, c) in model.objective().terms() {
            obj += c * values[var.index()];
        }
        return LpResult { status: LpStatus::Optimal, values, objective: obj };
    }

    // Column layout: [0, n) structural, [n, n + n_slack) slack/surplus,
    // [n + n_slack, total) artificial.
    let mut n_slack = 0usize;
    let mut n_art = 0usize;
    for (_, sense, _) in &rows {
        match sense {
            Sense::Le | Sense::Ge => n_slack += 1,
            Sense::Eq => {}
        }
        match sense {
            Sense::Ge | Sense::Eq => n_art += 1,
            Sense::Le => {}
        }
    }
    // A Le row with negative rhs flips into a Ge row, which needs an
    // artificial; conservatively allocate artificials for every row.
    let n_art_cap = n_art + rows.len();
    let ncols = n + n_slack + n_art_cap;
    let stride = ncols + 1; // last column = rhs

    let mut tab = vec![0.0f64; m * stride];
    let mut basis = vec![usize::MAX; m];
    let mut art_cols: Vec<usize> = Vec::new();

    let mut next_slack = n;
    let mut next_art = n + n_slack;

    for (i, (coeffs, sense, rhs)) in rows.iter().enumerate() {
        let mut sense = *sense;
        let mut rhs = *rhs;
        let mut sign = 1.0;
        if rhs < 0.0 {
            // Normalise to non-negative rhs by flipping the row.
            rhs = -rhs;
            sign = -1.0;
            sense = match sense {
                Sense::Le => Sense::Ge,
                Sense::Ge => Sense::Le,
                Sense::Eq => Sense::Eq,
            };
        }
        let row = &mut tab[i * stride..(i + 1) * stride];
        for &(j, c) in coeffs {
            row[j] += c * sign;
        }
        row[ncols] = rhs;
        match sense {
            Sense::Le => {
                row[next_slack] = 1.0;
                basis[i] = next_slack;
                next_slack += 1;
            }
            Sense::Ge => {
                row[next_slack] = -1.0;
                next_slack += 1;
                row[next_art] = 1.0;
                basis[i] = next_art;
                art_cols.push(next_art);
                next_art += 1;
            }
            Sense::Eq => {
                row[next_art] = 1.0;
                basis[i] = next_art;
                art_cols.push(next_art);
                next_art += 1;
            }
        }
    }

    let is_artificial = |j: usize| j >= n + n_slack;

    // ---- Phase 1: minimise the sum of artificial variables. ----
    if !art_cols.is_empty() {
        // Objective row for "maximise -(sum of artificials)".
        let mut obj_row = vec![0.0f64; stride];
        for &j in &art_cols {
            obj_row[j] = 1.0; // -c_j with c_j = -1
        }
        price_out(&mut obj_row, &tab, &basis, stride, m);
        let status = run_simplex(&mut tab, &mut basis, &mut obj_row, m, ncols, stride, &|_| true);
        if status == LpStatus::Unbounded {
            // Phase 1 objective is bounded by 0; unbounded here means a
            // numerical pathology — treat as infeasible.
            return LpResult { status: LpStatus::Infeasible, values: vec![], objective: 0.0 };
        }
        // Sum of artificials = -(phase-1 objective value).
        let infeas = -obj_row[ncols];
        if infeas > FEAS_EPS {
            return LpResult { status: LpStatus::Infeasible, values: vec![], objective: 0.0 };
        }
        // Drive any remaining basic artificials out of the basis.
        for i in 0..m {
            if is_artificial(basis[i]) {
                let row_start = i * stride;
                let mut pivot_col = None;
                for j in 0..(n + n_slack) {
                    if tab[row_start + j].abs() > 1e-7 {
                        pivot_col = Some(j);
                        break;
                    }
                }
                if let Some(j) = pivot_col {
                    pivot(&mut tab, &mut basis, &mut vec![0.0; stride], m, stride, i, j);
                }
                // If the whole row is zero the constraint is redundant; the
                // artificial stays basic at value zero, which is harmless as
                // long as artificial columns are barred from re-entering.
            }
        }
    }

    // ---- Phase 2: optimise the user objective. ----
    let mut obj_row = vec![0.0f64; stride];
    for (j, &c) in obj_coeffs.iter().enumerate() {
        obj_row[j] = -c;
    }
    price_out(&mut obj_row, &tab, &basis, stride, m);
    let allow = |j: usize| !is_artificial(j);
    let status = run_simplex(&mut tab, &mut basis, &mut obj_row, m, ncols, stride, &allow);
    if status == LpStatus::Unbounded {
        return LpResult { status: LpStatus::Unbounded, values: vec![], objective: 0.0 };
    }

    // Extract the solution.
    let mut shifted = vec![0.0f64; ncols];
    for i in 0..m {
        if basis[i] < ncols {
            shifted[basis[i]] = tab[i * stride + ncols];
        }
    }
    let mut values = vec![0.0; n];
    for i in 0..n {
        values[i] = shifted[i] + lower[i];
    }
    let raw_obj = obj_row[ncols] + obj_const;
    let objective = match model.direction() {
        Direction::Maximize => raw_obj,
        Direction::Minimize => -raw_obj,
    };
    LpResult { status: LpStatus::Optimal, values, objective }
}

/// Makes the objective row consistent with the current basis (zero reduced
/// cost for basic columns).
fn price_out(obj_row: &mut [f64], tab: &[f64], basis: &[usize], stride: usize, m: usize) {
    for i in 0..m {
        let b = basis[i];
        let coeff = obj_row[b];
        if coeff.abs() > EPS {
            let row = &tab[i * stride..(i + 1) * stride];
            for j in 0..stride {
                obj_row[j] -= coeff * row[j];
            }
        }
    }
}

/// A constraint row in sparse form: `(coefficients, sense, rhs)`.
type SparseRow = (Vec<(usize, f64)>, Sense, f64);

/// Runs primal simplex iterations until optimality or unboundedness.
/// `allow` filters which columns may enter the basis.
fn run_simplex(
    tab: &mut [f64],
    basis: &mut [usize],
    obj_row: &mut [f64],
    m: usize,
    ncols: usize,
    stride: usize,
    allow: &dyn Fn(usize) -> bool,
) -> LpStatus {
    let dantzig_limit = 50 * (m + ncols) + 1000;
    let hard_limit = 400 * (m + ncols) + 20000;
    let mut iter = 0usize;

    loop {
        iter += 1;
        if iter > hard_limit {
            // Termination safety valve: accept the current (feasible) basis.
            return LpStatus::Optimal;
        }
        let use_bland = iter > dantzig_limit;

        // Choose the entering column.
        let mut entering: Option<usize> = None;
        if use_bland {
            for j in 0..ncols {
                if allow(j) && obj_row[j] < -EPS {
                    entering = Some(j);
                    break;
                }
            }
        } else {
            let mut best = -EPS;
            for j in 0..ncols {
                if allow(j) && obj_row[j] < best {
                    best = obj_row[j];
                    entering = Some(j);
                }
            }
        }
        let Some(col) = entering else {
            return LpStatus::Optimal;
        };

        // Ratio test.
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            let a = tab[i * stride + col];
            if a > EPS {
                let ratio = tab[i * stride + ncols] / a;
                let better = ratio < best_ratio - EPS
                    || (use_bland
                        && (ratio - best_ratio).abs() <= EPS
                        && leave.map(|l| basis[i] < basis[l]).unwrap_or(false));
                if better || leave.is_none() && ratio.is_finite() && ratio < best_ratio {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(row) = leave else {
            return LpStatus::Unbounded;
        };

        pivot(tab, basis, obj_row, m, stride, row, col);
    }
}

/// Performs a pivot on `(row, col)`, updating the tableau, basis, and
/// objective row.
fn pivot(
    tab: &mut [f64],
    basis: &mut [usize],
    obj_row: &mut [f64],
    m: usize,
    stride: usize,
    row: usize,
    col: usize,
) {
    let pivot_val = tab[row * stride + col];
    debug_assert!(pivot_val.abs() > EPS, "pivot on a (near) zero element");
    // Normalise the pivot row.
    for j in 0..stride {
        tab[row * stride + j] /= pivot_val;
    }
    // Eliminate from every other row.
    for i in 0..m {
        if i == row {
            continue;
        }
        let factor = tab[i * stride + col];
        if factor.abs() > EPS {
            for j in 0..stride {
                tab[i * stride + j] -= factor * tab[row * stride + j];
            }
        }
    }
    // Eliminate from the objective row.
    if !obj_row.is_empty() {
        let factor = obj_row[col];
        if factor.abs() > EPS {
            for j in 0..stride {
                obj_row[j] -= factor * tab[row * stride + j];
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::{Model, VarKind};

    fn term(v: crate::expr::VarId, c: f64) -> LinExpr {
        LinExpr::term(v, c)
    }

    #[test]
    fn simple_two_variable_lp() {
        // max 3x + 2y  s.t. x + y <= 4, x + 3y <= 6, x,y >= 0  -> x=4, y=0, obj=12
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_le("c1", term(x, 1.0) + term(y, 1.0), 4.0);
        m.add_le("c2", term(x, 1.0) + term(y, 3.0), 6.0);
        m.maximize(term(x, 3.0) + term(y, 2.0));
        let r = solve_lp_dense(&m, &[]);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 12.0).abs() < 1e-6);
        assert!((r.values[0] - 4.0).abs() < 1e-6);
        assert!(r.values[1].abs() < 1e-6);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // max x + y  s.t. x + y = 10, x >= 3, y >= 2  -> obj 10
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_eq("sum", term(x, 1.0) + term(y, 1.0), 10.0);
        m.add_ge("xmin", term(x, 1.0), 3.0);
        m.add_ge("ymin", term(y, 1.0), 2.0);
        m.maximize(term(x, 1.0) + term(y, 1.0));
        let r = solve_lp_dense(&m, &[]);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 10.0).abs() < 1e-6);
        assert!(r.values[0] >= 3.0 - 1e-6);
        assert!(r.values[1] >= 2.0 - 1e-6);
    }

    #[test]
    fn infeasible_problem_detected() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 5.0);
        m.add_ge("hi", term(x, 1.0), 10.0);
        m.maximize(term(x, 1.0));
        let r = solve_lp_dense(&m, &[]);
        assert_eq!(r.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_problem_detected() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_ge("c", term(x, 1.0) - term(y, 1.0), 1.0);
        m.maximize(term(x, 1.0));
        let r = solve_lp_dense(&m, &[]);
        assert_eq!(r.status, LpStatus::Unbounded);
    }

    #[test]
    fn minimisation_direction() {
        // min 2x + 3y  s.t. x + y >= 4  -> x=4, y=0, obj=8
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_ge("c", term(x, 1.0) + term(y, 1.0), 4.0);
        m.minimize(term(x, 2.0) + term(y, 3.0));
        let r = solve_lp_dense(&m, &[]);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 8.0).abs() < 1e-6);
    }

    #[test]
    fn negative_lower_bounds_are_shifted() {
        // max x  s.t. x <= -1, with x in [-5, 0]  -> x = -1
        let mut m = Model::new();
        let x = m.add_continuous("x", -5.0, 0.0);
        m.add_le("cap", term(x, 1.0), -1.0);
        m.maximize(term(x, 1.0));
        let r = solve_lp_dense(&m, &[]);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.values[0] + 1.0).abs() < 1e-6);
        assert!((r.objective + 1.0).abs() < 1e-6);
    }

    #[test]
    fn bound_overrides_take_precedence() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 10.0);
        m.maximize(term(x, 1.0));
        let r = solve_lp_dense(&m, &[(0.0, 3.0)]);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.values[0] - 3.0).abs() < 1e-6);
        // Inconsistent override -> infeasible.
        let r = solve_lp_dense(&m, &[(5.0, 3.0)]);
        assert_eq!(r.status, LpStatus::Infeasible);
    }

    #[test]
    fn unconstrained_model_uses_bounds() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 7.0);
        let y = m.add_continuous("y", -2.0, 3.0);
        m.maximize(term(x, 2.0) - term(y, 1.0));
        let r = solve_lp_dense(&m, &[]);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.values[0] - 7.0).abs() < 1e-9);
        assert!((r.values[1] + 2.0).abs() < 1e-9);
        assert!((r.objective - 16.0).abs() < 1e-9);

        let mut unb = Model::new();
        let z = unb.add_continuous("z", 0.0, f64::INFINITY);
        unb.maximize(term(z, 1.0));
        assert_eq!(solve_lp_dense(&unb, &[]).status, LpStatus::Unbounded);
    }

    #[test]
    fn binary_relaxation_is_a_unit_box() {
        let mut m = Model::new();
        let x = m.add_var("x", VarKind::Binary, 0.0, 1.0);
        let y = m.add_var("y", VarKind::Binary, 0.0, 1.0);
        m.add_le("c", term(x, 2.0) + term(y, 2.0), 3.0);
        m.maximize(term(x, 1.0) + term(y, 1.0));
        let r = solve_lp_dense(&m, &[]);
        assert_eq!(r.status, LpStatus::Optimal);
        // LP relaxation achieves 1.5 (e.g. x=1, y=0.5).
        assert!((r.objective - 1.5).abs() < 1e-6);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Many redundant constraints through the same vertex.
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        for i in 0..20 {
            m.add_le(format!("c{i}"), term(x, 1.0) + term(y, 1.0 + i as f64 * 1e-9), 1.0);
        }
        m.maximize(term(x, 1.0) + term(y, 1.0));
        let r = solve_lp_dense(&m, &[]);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 1.0).abs() < 1e-6);
    }
}
