//! MILP model: variables, linear constraints, and an objective.

use crate::expr::{LinExpr, VarId};
use std::fmt;

/// The integrality class of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Continuous variable.
    Continuous,
    /// General integer variable.
    Integer,
    /// Binary (0/1) variable.
    Binary,
}

/// A decision variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Variable {
    /// Human-readable name (used in debugging output).
    pub name: String,
    /// Integrality class.
    pub kind: VarKind,
    /// Lower bound (must be finite).
    pub lower: f64,
    /// Upper bound (may be `f64::INFINITY`).
    pub upper: f64,
}

impl Variable {
    /// True when the variable must take an integral value.
    pub fn is_integral(&self) -> bool {
        matches!(self.kind, VarKind::Integer | VarKind::Binary)
    }
}

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `expr ≤ rhs`
    Le,
    /// `expr = rhs`
    Eq,
    /// `expr ≥ rhs`
    Ge,
}

impl fmt::Display for Sense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Sense::Le => "<=",
            Sense::Eq => "=",
            Sense::Ge => ">=",
        })
    }
}

/// A linear constraint `expr sense rhs` (the expression's constant is folded
/// into the right-hand side at construction time).
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Optional label for diagnostics.
    pub name: String,
    /// Left-hand side (constant part always zero after normalisation).
    pub expr: LinExpr,
    /// Sense of the constraint.
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: f64,
}

/// Optimisation direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Direction {
    /// Maximise the objective (Explain3D maximises log-probability).
    #[default]
    Maximize,
    /// Minimise the objective.
    Minimize,
}

/// Outcome of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// An optimal solution was found (within tolerances).
    Optimal,
    /// A feasible solution was found, but optimality was not proven before a
    /// node or time limit was hit.
    Feasible,
    /// The problem has no feasible solution.
    Infeasible,
    /// The LP relaxation (and hence the problem) is unbounded.
    Unbounded,
    /// No feasible solution was found before hitting a limit.
    LimitReached,
}

impl SolveStatus {
    /// True when a usable assignment is available.
    pub fn has_solution(&self) -> bool {
        matches!(self, SolveStatus::Optimal | SolveStatus::Feasible)
    }
}

/// A solution: one value per variable plus the objective value.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Status of the solve.
    pub status: SolveStatus,
    /// Variable values, indexed by [`VarId::index`].
    pub values: Vec<f64>,
    /// Objective value (in the model's direction).
    pub objective: f64,
}

impl Solution {
    /// The value of a variable.
    pub fn value(&self, var: VarId) -> f64 {
        self.values.get(var.index()).copied().unwrap_or(0.0)
    }

    /// The value of a binary/integer variable rounded to the nearest integer.
    pub fn int_value(&self, var: VarId) -> i64 {
        self.value(var).round() as i64
    }

    /// True when a binary variable is set (≥ 0.5).
    pub fn is_set(&self, var: VarId) -> bool {
        self.value(var) >= 0.5
    }
}

/// A mixed-integer linear program.
#[derive(Debug, Clone, Default)]
pub struct Model {
    variables: Vec<Variable>,
    constraints: Vec<Constraint>,
    objective: LinExpr,
    direction: Direction,
}

impl Model {
    /// Creates an empty maximisation model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Adds a variable with explicit kind and bounds.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        kind: VarKind,
        lower: f64,
        upper: f64,
    ) -> VarId {
        assert!(
            lower.is_finite(),
            "variable lower bounds must be finite (got {lower} for {})",
            name.into()
        );
        let id = VarId(self.variables.len());
        self.variables.push(Variable { name: name.into(), kind, lower, upper });
        id
    }

    /// Adds a binary (0/1) variable.
    pub fn add_binary(&mut self, name: impl Into<String>) -> VarId {
        self.add_var(name, VarKind::Binary, 0.0, 1.0)
    }

    /// Adds a bounded integer variable.
    pub fn add_integer(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> VarId {
        self.add_var(name, VarKind::Integer, lower, upper)
    }

    /// Adds a bounded continuous variable.
    pub fn add_continuous(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> VarId {
        self.add_var(name, VarKind::Continuous, lower, upper)
    }

    /// Adds the constraint `expr sense rhs`. Any constant in `expr` is moved
    /// to the right-hand side.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        expr: LinExpr,
        sense: Sense,
        rhs: f64,
    ) {
        let constant = expr.constant_part();
        let mut normalised = expr;
        normalised.add_constant(-constant);
        self.constraints.push(Constraint {
            name: name.into(),
            expr: normalised,
            sense,
            rhs: rhs - constant,
        });
    }

    /// Convenience: `expr ≤ rhs`.
    pub fn add_le(&mut self, name: impl Into<String>, expr: LinExpr, rhs: f64) {
        self.add_constraint(name, expr, Sense::Le, rhs);
    }

    /// Convenience: `expr ≥ rhs`.
    pub fn add_ge(&mut self, name: impl Into<String>, expr: LinExpr, rhs: f64) {
        self.add_constraint(name, expr, Sense::Ge, rhs);
    }

    /// Convenience: `expr = rhs`.
    pub fn add_eq(&mut self, name: impl Into<String>, expr: LinExpr, rhs: f64) {
        self.add_constraint(name, expr, Sense::Eq, rhs);
    }

    /// Sets the objective expression and direction.
    pub fn set_objective(&mut self, expr: LinExpr, direction: Direction) {
        self.objective = expr;
        self.direction = direction;
    }

    /// Sets a maximisation objective.
    pub fn maximize(&mut self, expr: LinExpr) {
        self.set_objective(expr, Direction::Maximize);
    }

    /// Sets a minimisation objective.
    pub fn minimize(&mut self, expr: LinExpr) {
        self.set_objective(expr, Direction::Minimize);
    }

    /// The variables.
    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    /// The variable with the given id.
    pub fn variable(&self, id: VarId) -> &Variable {
        &self.variables[id.index()]
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The objective expression.
    pub fn objective(&self) -> &LinExpr {
        &self.objective
    }

    /// The optimisation direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Ids of all integral (binary or integer) variables.
    pub fn integral_vars(&self) -> Vec<VarId> {
        self.variables
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_integral())
            .map(|(i, _)| VarId(i))
            .collect()
    }

    /// Verifies that an assignment satisfies all constraints and variable
    /// bounds within `tol`, returning the list of violated constraint names.
    pub fn violations(&self, values: &[f64], tol: f64) -> Vec<String> {
        let mut out = Vec::new();
        for (i, var) in self.variables.iter().enumerate() {
            let v = values.get(i).copied().unwrap_or(0.0);
            if v < var.lower - tol || v > var.upper + tol {
                out.push(format!("bounds:{}", var.name));
            }
            if var.is_integral() && (v - v.round()).abs() > tol {
                out.push(format!("integrality:{}", var.name));
            }
        }
        for c in &self.constraints {
            let lhs = c.expr.evaluate(values);
            let ok = match c.sense {
                Sense::Le => lhs <= c.rhs + tol,
                Sense::Ge => lhs >= c.rhs - tol,
                Sense::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                out.push(c.name.clone());
            }
        }
        out
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} {}",
            match self.direction {
                Direction::Maximize => "maximize",
                Direction::Minimize => "minimize",
            },
            self.objective
        )?;
        writeln!(f, "subject to")?;
        for c in &self.constraints {
            writeln!(f, "  [{}] {} {} {}", c.name, c.expr, c.sense, c.rhs)?;
        }
        writeln!(f, "variables")?;
        for (i, v) in self.variables.iter().enumerate() {
            writeln!(f, "  x{i} = {} ({:?}) in [{}, {}]", v.name, v.kind, v.lower, v.upper)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_construction() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_integer("y", 0.0, 10.0);
        let z = m.add_continuous("z", -5.0, 5.0);
        assert_eq!(m.num_vars(), 3);
        assert_eq!(m.integral_vars(), vec![x, y]);
        assert!(m.variable(z).kind == VarKind::Continuous);
        assert!(m.variable(x).is_integral());

        m.add_le("c1", LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0), 5.0);
        m.add_eq("c2", LinExpr::term(z, 2.0), 3.0);
        m.maximize(LinExpr::term(x, 1.0) + LinExpr::term(y, 2.0));
        assert_eq!(m.num_constraints(), 2);
        assert_eq!(m.direction(), Direction::Maximize);
    }

    #[test]
    fn constraint_constants_fold_into_rhs() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let expr = LinExpr::term(x, 1.0) + LinExpr::constant(2.0);
        m.add_le("c", expr, 5.0);
        let c = &m.constraints()[0];
        assert_eq!(c.rhs, 3.0);
        assert_eq!(c.expr.constant_part(), 0.0);
    }

    #[test]
    fn violation_checking() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_integer("y", 0.0, 10.0);
        m.add_le("cap", LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0), 5.0);
        m.add_ge("floor", LinExpr::term(y, 1.0), 2.0);

        assert!(m.violations(&[1.0, 3.0], 1e-6).is_empty());
        let v = m.violations(&[1.0, 7.0], 1e-6);
        assert!(v.contains(&"cap".to_string()));
        let v = m.violations(&[0.5, 2.0], 1e-6);
        assert!(v.contains(&"integrality:x".to_string()));
        let v = m.violations(&[2.0, 2.0], 1e-6);
        assert!(v.contains(&"bounds:x".to_string()));
        let v = m.violations(&[0.0, 0.0], 1e-6);
        assert!(v.contains(&"floor".to_string()));
    }

    #[test]
    fn solution_accessors() {
        let s = Solution {
            status: SolveStatus::Optimal,
            values: vec![0.99999, 2.0000001, 0.2],
            objective: 3.0,
        };
        assert!(s.status.has_solution());
        assert!(s.is_set(VarId(0)));
        assert!(!s.is_set(VarId(2)));
        assert_eq!(s.int_value(VarId(1)), 2);
        assert_eq!(s.value(VarId(9)), 0.0);
        assert!(!SolveStatus::Infeasible.has_solution());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_lower_bound_is_rejected() {
        let mut m = Model::new();
        m.add_continuous("bad", f64::NEG_INFINITY, 0.0);
    }

    #[test]
    fn display_lists_structure() {
        let mut m = Model::new();
        let x = m.add_binary("pick");
        m.add_le("only_one", LinExpr::term(x, 1.0), 1.0);
        m.maximize(LinExpr::term(x, 3.0));
        let s = m.to_string();
        assert!(s.contains("maximize"));
        assert!(s.contains("only_one"));
        assert!(s.contains("pick"));
    }
}
