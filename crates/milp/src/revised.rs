//! Sparse revised simplex for LP relaxations.
//!
//! This is the production LP kernel behind [`solve_lp`](crate::simplex::solve_lp)
//! (the dense tableau of [`simplex`](crate::simplex) is retained as the
//! reference baseline and numerical fallback). Instead of carrying an
//! `m × (n + slacks + artificials)` tableau through every pivot, the solver
//! keeps
//!
//! * the constraint matrix as immutable **sparse columns**,
//! * the basis inverse as an **LU factorisation** (computed by sparse
//!   Gaussian elimination with partial pivoting) composed with an
//!   **eta file** of product-form updates — one eta per pivot — that is
//!   folded back into a fresh LU every [`REFACTOR_EVERY`] pivots,
//! * reduced costs priced on demand via BTRAN (`B⁻ᵀ c_B`) with **Dantzig
//!   selection over partial-pricing segments** and a Bland's-rule fallback
//!   for degenerate stalls.
//!
//! A [`SparseLp`] context is reusable across **bound changes**: the
//! branch-and-bound search re-solves each child node by reusing the parent's
//! optimal basis ([`SparseLp::solve_warm`]) — reduced costs do not depend on
//! the right-hand side, so the parent basis stays dual feasible and a short
//! **dual simplex** run restores primal feasibility without re-running
//! phase 1 from scratch.
//!
//! Every sparse solve ends with an independent feasibility check of the
//! extracted solution; any numerical trouble (singular refactorisation,
//! stalled iteration, residual infeasibility) silently falls back to the
//! dense reference kernel, so callers always get a trustworthy
//! [`LpResult`].

use crate::model::{Direction, Model, Sense};
use crate::simplex::{solve_lp_dense, LpResult, LpStatus};

const EPS: f64 = 1e-9;
const FEAS_EPS: f64 = 1e-7;
/// Entries smaller than this are treated as structural zeros when building
/// etas and factors (keeps the eta file sparse under fill-in).
const DROP_TOL: f64 = 1e-12;
/// Refactorisation declares the basis singular below this pivot magnitude.
const PIVOT_TOL: f64 = 1e-10;
/// Number of eta updates accumulated before the basis is refactorised (and
/// the basic solution recomputed from scratch to purge drift).
const REFACTOR_EVERY: usize = 48;

/// An opaque snapshot of a simplex basis, as returned by an optimal sparse
/// solve. Feeding it to [`SparseLp::solve_warm`] re-solves a neighbouring
/// LP (same constraint structure, different variable bounds) starting from
/// this basis instead of from scratch — the branch-and-bound warm start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseBasis {
    basis: Vec<usize>,
}

impl SparseBasis {
    /// Number of basic columns (equals the row count of the LP the basis
    /// was extracted from).
    pub fn len(&self) -> usize {
        self.basis.len()
    }

    /// True when the basis is empty (a zero-row LP).
    pub fn is_empty(&self) -> bool {
        self.basis.is_empty()
    }

    /// Resident bytes of this basis (column indices plus the struct
    /// itself) — consumed by session-level memory accounting.
    pub fn memory_footprint(&self) -> usize {
        std::mem::size_of::<Self>() + self.basis.capacity() * std::mem::size_of::<usize>()
    }
}

/// A sparse LP context: the constraint matrix of a [`Model`] in equality
/// standard form (shifted variables, upper bounds as rows, slack and
/// artificial columns), reusable across solves that only change variable
/// bounds.
#[derive(Debug, Clone)]
pub struct SparseLp {
    /// Structural variables.
    n: usize,
    /// Rows: model constraints plus one upper-bound row per finite-upper
    /// variable (at build time).
    m: usize,
    /// Total columns: structural + slack/surplus + artificial.
    ncols: usize,
    /// First artificial column id; `j >= art_start` ⇒ artificial.
    art_start: usize,
    /// All columns as sparse `(row, value)` lists.
    cols: Vec<Vec<(usize, f64)>>,
    /// Model rows in the build-time sign convention: `(terms, rhs)` with any
    /// row flip folded into both, so `b_i = rhs_i - Σ coef · lower` for any
    /// bounds.
    rows: Vec<(Vec<(usize, f64)>, f64)>,
    /// For each row past the model rows, the variable whose upper bound it
    /// caps (`b = upper - lower`).
    ub_row_var: Vec<usize>,
    /// Whether variable `i` has an upper-bound row in this context.
    has_ub_row: Vec<bool>,
    /// Cold-start basis: one slack or artificial column per row.
    init_basis: Vec<usize>,
    /// Whether the cold start places any artificial in the basis (phase 1
    /// required).
    needs_phase1: bool,
    /// Objective coefficients in maximise form, length `ncols` (zero beyond
    /// the structural block). Independent of bounds.
    obj: Vec<f64>,
    /// Bounds the context was built with (cold starts use these).
    build_bounds: Vec<(f64, f64)>,
}

impl SparseLp {
    /// Builds a context for `model` under the given bound overrides (the
    /// model's own bounds when empty).
    pub fn new(model: &Model, bound_overrides: &[(f64, f64)]) -> SparseLp {
        let n = model.num_vars();
        let build_bounds: Vec<(f64, f64)> =
            model
                .variables()
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    if bound_overrides.is_empty() {
                        (v.lower, v.upper)
                    } else {
                        bound_overrides[i]
                    }
                })
                .collect();
        let max_sign = match model.direction() {
            Direction::Maximize => 1.0,
            Direction::Minimize => -1.0,
        };

        // Model rows, flipped to non-negative rhs in the *build* bounds (the
        // flip is a pure row scaling by -1 — equivalent for any rhs — so
        // warm solves under different bounds simply reuse the convention).
        let mut rows: Vec<(Vec<(usize, f64)>, f64)> = Vec::new();
        let mut senses: Vec<Sense> = Vec::new();
        for c in model.constraints() {
            let mut terms: Vec<(usize, f64)> = Vec::with_capacity(c.expr.num_terms());
            let mut shift = 0.0;
            for (var, coef) in c.expr.terms() {
                terms.push((var.index(), coef));
                shift += coef * build_bounds[var.index()].0;
            }
            let (mut sense, mut rhs) = (c.sense, c.rhs);
            if rhs - shift < 0.0 {
                for t in &mut terms {
                    t.1 = -t.1;
                }
                rhs = -rhs;
                sense = match sense {
                    Sense::Le => Sense::Ge,
                    Sense::Ge => Sense::Le,
                    Sense::Eq => Sense::Eq,
                };
            }
            rows.push((terms, rhs));
            senses.push(sense);
        }
        // Upper-bound rows (always `x' ≤ upper - lower ≥ 0`, never flipped).
        let mut ub_row_var = Vec::new();
        let mut has_ub_row = vec![false; n];
        for (i, &(_, ub)) in build_bounds.iter().enumerate() {
            if ub.is_finite() {
                ub_row_var.push(i);
                has_ub_row[i] = true;
            }
        }
        let n_model_rows = rows.len();
        let m = n_model_rows + ub_row_var.len();

        // Columns: structural, then slack/surplus (all rows except Eq),
        // then one artificial per Ge/Eq row.
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for (i, (terms, _)) in rows.iter().enumerate() {
            for &(j, v) in terms {
                cols[j].push((i, v));
            }
        }
        for (k, &v) in ub_row_var.iter().enumerate() {
            cols[v].push((n_model_rows + k, 1.0));
        }
        // Merge duplicate row entries within each structural column (a
        // `LinExpr` holds one term per variable, so this only defends
        // against repeated variables across future row kinds).
        for col in &mut cols {
            col.sort_unstable_by_key(|&(r, _)| r);
        }

        let mut init_basis = vec![usize::MAX; m];
        let row_sense = |i: usize| if i < n_model_rows { senses[i] } else { Sense::Le };
        for (i, slot) in init_basis.iter_mut().enumerate() {
            if row_sense(i) != Sense::Eq {
                let slack = cols.len();
                let sign = if row_sense(i) == Sense::Le { 1.0 } else { -1.0 };
                cols.push(vec![(i, sign)]);
                if row_sense(i) == Sense::Le {
                    *slot = slack;
                }
            }
        }
        let art_start = cols.len();
        let mut needs_phase1 = false;
        for (i, slot) in init_basis.iter_mut().enumerate() {
            if *slot == usize::MAX {
                let art = cols.len();
                cols.push(vec![(i, 1.0)]);
                *slot = art;
                needs_phase1 = true;
            }
        }
        let ncols = cols.len();

        let mut obj = vec![0.0; ncols];
        for (var, c) in model.objective().terms() {
            obj[var.index()] = c * max_sign;
        }

        SparseLp {
            n,
            m,
            ncols,
            art_start,
            cols,
            rows,
            ub_row_var,
            has_ub_row,
            init_basis,
            needs_phase1,
            obj,
            build_bounds,
        }
    }

    /// True when `bounds` fit this context's structure: same variable count
    /// and the same finite-upper-bound pattern (upper bounds are rows, so a
    /// bound turning finite/infinite changes the matrix).
    pub fn compatible(&self, bounds: &[(f64, f64)]) -> bool {
        bounds.len() == self.n
            && bounds
                .iter()
                .zip(self.has_ub_row.iter())
                .all(|(&(_, ub), &has)| ub.is_finite() == has)
    }

    /// The right-hand side in shifted space for the given bounds.
    fn rhs_for(&self, bounds: &[(f64, f64)]) -> Vec<f64> {
        let mut b = Vec::with_capacity(self.m);
        for (terms, rhs) in &self.rows {
            let shift: f64 = terms.iter().map(|&(j, v)| v * bounds[j].0).sum();
            b.push(rhs - shift);
        }
        for &v in &self.ub_row_var {
            b.push(bounds[v].1 - bounds[v].0);
        }
        b
    }

    /// Solves the LP cold (two-phase, from the all-logical basis) under the
    /// context's build bounds. Falls back to the dense reference kernel on
    /// numerical trouble, in which case no reusable basis is returned.
    pub fn solve_cold(&self, model: &Model) -> (LpResult, Option<SparseBasis>) {
        match self.try_cold(model) {
            Some(out) => out,
            None => (solve_lp_dense(model, &self.build_bounds), None),
        }
    }

    fn try_cold(&self, model: &Model) -> Option<(LpResult, Option<SparseBasis>)> {
        for &(lb, ub) in &self.build_bounds {
            if lb > ub + EPS {
                return Some((infeasible(), None));
            }
        }
        let mut sim = Sim::new(self, &self.build_bounds, self.init_basis.clone())?;
        if self.needs_phase1 {
            let mut c1 = vec![0.0; self.ncols];
            for c in c1.iter_mut().skip(self.art_start) {
                *c = -1.0;
            }
            match sim.primal(&c1, |_| true, false) {
                Phase::Optimal => {}
                // Phase 1 is bounded by 0; "unbounded" is a numerical
                // pathology — mirror the dense kernel and report infeasible.
                Phase::Unbounded => return Some((infeasible(), None)),
                Phase::Numerical => return None,
            }
            let infeas: f64 = (0..self.m)
                .filter(|&i| sim.basis[i] >= self.art_start)
                .map(|i| sim.x[i].max(0.0))
                .sum();
            if infeas > FEAS_EPS {
                return Some((infeasible(), None));
            }
            if !sim.drive_out_artificials() {
                return None;
            }
        }
        self.finish(model, &self.build_bounds, sim)
    }

    /// Re-solves the LP under `bounds`, starting from a previous optimal
    /// basis of this context. Returns `None` when the warm path cannot
    /// deliver a trustworthy answer (structure mismatch, singular basis,
    /// stalled dual simplex, possible infeasibility) — the caller should
    /// fall back to a cold solve on a fresh context.
    pub fn solve_warm(
        &self,
        model: &Model,
        bounds: &[(f64, f64)],
        warm: &SparseBasis,
    ) -> Option<(LpResult, Option<SparseBasis>)> {
        if !self.compatible(bounds) || warm.basis.len() != self.m {
            return None;
        }
        for &(lb, ub) in bounds {
            if lb > ub + EPS {
                return Some((infeasible(), None));
            }
        }
        let mut sim = Sim::new(self, bounds, warm.basis.clone())?;
        // The parent basis is dual feasible (reduced costs are independent
        // of the rhs), so a dual-simplex run restores primal feasibility.
        let mut verdict = sim.dual(&self.obj);
        if matches!(verdict, DualOutcome::Infeasible) && !sim.factor.etas.is_empty() {
            // A completed dual ray is an infeasibility certificate — but
            // this one was priced through the eta file accumulated during
            // the run. Refactorise (purging that drift) and re-run before
            // letting branch-and-bound prune the child on it.
            if !sim.refresh() {
                return None;
            }
            verdict = sim.dual(&self.obj);
        }
        match verdict {
            DualOutcome::Feasible => {}
            // Confirmed from a freshly factorised basis: as exact as the
            // dense kernel's phase-1 verdict, so the child is pruned
            // without a cold re-solve.
            DualOutcome::Infeasible => return Some((infeasible(), None)),
            DualOutcome::Numerical => return None,
        }
        self.finish(model, bounds, sim)
    }

    /// Re-solves the LP starting from an **imported** basis — one exported
    /// by a previous solve of a *different* (but structurally compatible)
    /// model, e.g. the persisted final basis the incremental re-explanation
    /// subsystem hands back for a dirty component. Unlike
    /// [`solve_warm`](SparseLp::solve_warm), the basis cannot be assumed
    /// dual feasible here (objective and constraint coefficients may have
    /// changed, not just bounds), so the import is accepted only when the
    /// factorised basis is *primal* feasible for the new problem; phase 2
    /// then runs ordinary primal iterations from it, skipping phase 1.
    /// Returns `None` whenever the basis cannot be trusted (dimension
    /// mismatch, singular factorisation, primal infeasibility, non-zero
    /// basic artificial) — the caller falls back to a cold solve, so a
    /// stale import can cost time but never correctness.
    pub fn solve_from_basis(
        &self,
        model: &Model,
        bounds: &[(f64, f64)],
        start: &SparseBasis,
    ) -> Option<(LpResult, Option<SparseBasis>)> {
        if !self.compatible(bounds)
            || start.basis.len() != self.m
            || start.basis.iter().any(|&j| j >= self.ncols)
        {
            return None;
        }
        for &(lb, ub) in bounds {
            if lb > ub + EPS {
                return Some((infeasible(), None));
            }
        }
        let sim = Sim::new(self, bounds, start.basis.clone())?;
        // Phase-2 primal iterations assume a feasible starting basis; an
        // imported basis that is not primal feasible here is rejected
        // rather than repaired (the cold path's phase 1 does that better).
        if sim.x.iter().any(|&x| x < -FEAS_EPS) {
            return None;
        }
        if (0..self.m).any(|i| sim.basis[i] >= self.art_start && sim.x[i].abs() > FEAS_EPS) {
            return None;
        }
        self.finish(model, bounds, sim)
    }

    /// Shared tail of the cold and warm paths: phase-2 primal iterations,
    /// artificial-residue check, extraction, and the final feasibility
    /// verification.
    fn finish(
        &self,
        model: &Model,
        bounds: &[(f64, f64)],
        mut sim: Sim<'_>,
    ) -> Option<(LpResult, Option<SparseBasis>)> {
        match sim.primal(&self.obj, |j| j < self.art_start, true) {
            Phase::Optimal => {}
            Phase::Unbounded => {
                return Some((
                    LpResult { status: LpStatus::Unbounded, values: vec![], objective: 0.0 },
                    None,
                ));
            }
            Phase::Numerical => return None,
        }
        // A basic artificial that drifted away from zero means the basis
        // no longer represents the real problem.
        if (0..self.m).any(|i| sim.basis[i] >= self.art_start && sim.x[i].abs() > FEAS_EPS) {
            return None;
        }

        let mut values = vec![0.0; self.n];
        for i in 0..self.m {
            let j = sim.basis[i];
            if j < self.n {
                values[j] = sim.x[i];
            }
        }
        for (i, v) in values.iter_mut().enumerate() {
            *v += bounds[i].0;
        }
        if !self.solution_feasible(model, bounds, &values) {
            return None;
        }
        let objective = model.objective().evaluate(&values);
        Some((
            LpResult { status: LpStatus::Optimal, values, objective },
            Some(SparseBasis { basis: sim.basis }),
        ))
    }

    /// Independent feasibility check of an extracted solution (bounds and
    /// model constraints, relative tolerance). Integrality is not checked —
    /// this is an LP relaxation.
    fn solution_feasible(&self, model: &Model, bounds: &[(f64, f64)], values: &[f64]) -> bool {
        let tol = |scale: f64| 1e-6 * (1.0 + scale.abs());
        for (i, &v) in values.iter().enumerate() {
            let (lb, ub) = bounds[i];
            if v < lb - tol(lb) || v > ub + tol(ub) {
                return false;
            }
        }
        for c in model.constraints() {
            let lhs = c.expr.evaluate(values);
            let ok = match c.sense {
                Sense::Le => lhs <= c.rhs + tol(c.rhs),
                Sense::Ge => lhs >= c.rhs - tol(c.rhs),
                Sense::Eq => (lhs - c.rhs).abs() <= tol(c.rhs),
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

fn infeasible() -> LpResult {
    LpResult { status: LpStatus::Infeasible, values: vec![], objective: 0.0 }
}

/// Solves the LP relaxation of `model` with the sparse revised simplex
/// (cold start), falling back to the dense kernel on numerical trouble.
///
/// `bound_overrides`, when non-empty, supplies per-variable `(lower, upper)`
/// bounds replacing the model's.
pub fn solve_lp_sparse(model: &Model, bound_overrides: &[(f64, f64)]) -> LpResult {
    SparseLp::new(model, bound_overrides).solve_cold(model).0
}

/// One product-form update: replacing the basis column at position `pos`
/// with a column whose FTRAN image had `diag` at `pos` and `col` elsewhere.
#[derive(Debug, Clone)]
struct Eta {
    pos: usize,
    diag: f64,
    col: Vec<(usize, f64)>,
}

/// The basis inverse: an LU factorisation from sparse left-looking Gaussian
/// elimination with partial pivoting, plus the eta file of product-form
/// updates appended since the last refactorisation.
///
/// Columns are eliminated in a fill-reducing order (fewest nonzeros first,
/// so the many unit slack/artificial columns of a typical LP basis pivot
/// for free); `cpos` records the basis position each elimination step
/// corresponds to. Steps whose `L` transform is empty — the common case —
/// are skipped entirely in FTRAN/BTRAN via the `nontrivial` index.
#[derive(Debug, Clone)]
struct Factor {
    /// Pivot row (original index) of each elimination step.
    perm: Vec<usize>,
    /// Basis position eliminated at each step (column permutation).
    cpos: Vec<usize>,
    /// Per step, the below-pivot multipliers `(row, factor)`.
    l_etas: Vec<Vec<(usize, f64)>>,
    /// Steps with a non-empty `L` transform, ascending.
    nontrivial: Vec<usize>,
    /// Per step `k`, the already-pivotal entries `(step, value)` of the
    /// eliminated column — column `k` of `U` above the diagonal.
    ucols: Vec<Vec<(usize, f64)>>,
    /// Diagonal of `U`.
    udiag: Vec<f64>,
    /// Product-form updates since the factorisation (in basis-position
    /// space).
    etas: Vec<Eta>,
}

impl Factor {
    /// Factorises the basis given by `basis` over the context's columns.
    /// Returns `None` when the basis matrix is (numerically) singular.
    fn refactor(lp: &SparseLp, basis: &[usize]) -> Option<Factor> {
        let m = lp.m;
        let mut f = Factor {
            perm: Vec::with_capacity(m),
            cpos: Vec::with_capacity(m),
            l_etas: Vec::with_capacity(m),
            nontrivial: Vec::new(),
            ucols: Vec::with_capacity(m),
            udiag: Vec::with_capacity(m),
            etas: Vec::new(),
        };
        // Eliminate sparsest columns first: the unit slack/artificial
        // columns of a typical LP basis then pivot with no fill at all, and
        // only the structural "kernel" does real elimination work.
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by_key(|&k| (lp.cols[basis[k]].len(), k));

        // Sparse workspace: dense value vector plus the list of touched
        // rows, reset per column (never a full O(m) sweep).
        let mut w = vec![0.0f64; m];
        let mut mark = vec![false; m];
        let mut touched: Vec<usize> = Vec::new();
        // Row → elimination step that pivoted it (usize::MAX when open).
        let mut step_of_row = vec![usize::MAX; m];

        for (k, &bpos) in order.iter().enumerate() {
            for &(r, v) in &lp.cols[basis[bpos]] {
                w[r] = v;
                if !mark[r] {
                    mark[r] = true;
                    touched.push(r);
                }
            }
            for &t in &f.nontrivial {
                let wp = w[f.perm[t]];
                if wp.abs() > DROP_TOL {
                    for &(r, fac) in &f.l_etas[t] {
                        if !mark[r] {
                            mark[r] = true;
                            touched.push(r);
                        }
                        w[r] -= fac * wp;
                    }
                }
            }
            let mut ucol: Vec<(usize, f64)> = Vec::new();
            let mut pivot: Option<(usize, f64)> = None;
            for &r in &touched {
                let v = w[r];
                if v.abs() <= DROP_TOL {
                    continue;
                }
                let t = step_of_row[r];
                if t != usize::MAX {
                    ucol.push((t, v));
                } else if pivot.map(|(_, best)| v.abs() > best).unwrap_or(true) {
                    pivot = Some((r, v.abs()));
                }
            }
            let singular = match pivot {
                None => true,
                Some((_, mag)) => mag < PIVOT_TOL,
            };
            if singular {
                for &r in &touched {
                    w[r] = 0.0;
                    mark[r] = false;
                }
                return None;
            }
            let (p, _) = pivot.unwrap();
            let piv = w[p];
            let mut letas: Vec<(usize, f64)> = Vec::new();
            for &r in &touched {
                if r != p && step_of_row[r] == usize::MAX && w[r].abs() > DROP_TOL {
                    letas.push((r, w[r] / piv));
                }
            }
            for &r in &touched {
                w[r] = 0.0;
                mark[r] = false;
            }
            touched.clear();
            if !letas.is_empty() {
                f.nontrivial.push(k);
            }
            step_of_row[p] = k;
            f.perm.push(p);
            f.cpos.push(bpos);
            f.udiag.push(piv);
            f.ucols.push(ucol);
            f.l_etas.push(letas);
        }
        Some(f)
    }

    /// FTRAN: solves `B d = a` for a dense right-hand side, returning `d`
    /// indexed by basis position.
    fn ftran(&self, a: &mut [f64]) -> Vec<f64> {
        let m = self.perm.len();
        for &t in &self.nontrivial {
            let wp = a[self.perm[t]];
            if wp.abs() > DROP_TOL {
                for &(r, fac) in &self.l_etas[t] {
                    a[r] -= fac * wp;
                }
            }
        }
        let mut step = vec![0.0f64; m];
        for k in (0..m).rev() {
            let v = a[self.perm[k]];
            if v.abs() <= DROP_TOL {
                continue;
            }
            let x = v / self.udiag[k];
            step[k] = x;
            for &(t, uval) in &self.ucols[k] {
                a[self.perm[t]] -= uval * x;
            }
        }
        // Undo the elimination's column permutation, then apply the
        // position-space update etas.
        let mut d = vec![0.0f64; m];
        for (k, &bpos) in self.cpos.iter().enumerate() {
            d[bpos] = step[k];
        }
        for eta in &self.etas {
            let piv = d[eta.pos] / eta.diag;
            d[eta.pos] = piv;
            if piv.abs() > DROP_TOL {
                for &(i, v) in &eta.col {
                    d[i] -= v * piv;
                }
            }
        }
        d
    }

    /// BTRAN: solves `Bᵀ y = c` for `c` indexed by basis position,
    /// returning `y` indexed by row.
    fn btran(&self, c: &[f64]) -> Vec<f64> {
        let m = self.perm.len();
        let mut v = c.to_vec();
        for eta in self.etas.iter().rev() {
            let mut s = v[eta.pos];
            for &(i, val) in &eta.col {
                s -= val * v[i];
            }
            v[eta.pos] = s / eta.diag;
        }
        // Gather into elimination-step space, then solve Uᵀ z = v
        // (forward, U stored by columns).
        let mut z = vec![0.0f64; m];
        for k in 0..m {
            let mut s = v[self.cpos[k]];
            for &(t, uval) in &self.ucols[k] {
                s -= uval * z[t];
            }
            z[k] = s / self.udiag[k];
        }
        // Apply the transposed L transforms in reverse.
        let mut y = vec![0.0f64; m];
        for (k, &p) in self.perm.iter().enumerate() {
            y[p] = z[k];
        }
        for &t in self.nontrivial.iter().rev() {
            let mut s = y[self.perm[t]];
            for &(r, fac) in &self.l_etas[t] {
                s -= fac * y[r];
            }
            y[self.perm[t]] = s;
        }
        y
    }
}

/// Outcome of a primal simplex phase.
enum Phase {
    Optimal,
    Unbounded,
    Numerical,
}

/// Outcome of a dual simplex run.
enum DualOutcome {
    Feasible,
    Infeasible,
    Numerical,
}

/// Mutable solver state for one solve over a [`SparseLp`] context.
struct Sim<'a> {
    lp: &'a SparseLp,
    /// Right-hand side under the solve's bounds.
    b: Vec<f64>,
    /// Basic column per row.
    basis: Vec<usize>,
    /// Basis position per column (`usize::MAX` when nonbasic).
    pos_of: Vec<usize>,
    /// Basic variable values by position.
    x: Vec<f64>,
    factor: Factor,
    /// Partial-pricing cursor (column to start the next scan at).
    cursor: usize,
}

impl<'a> Sim<'a> {
    fn new(lp: &'a SparseLp, bounds: &[(f64, f64)], basis: Vec<usize>) -> Option<Sim<'a>> {
        let b = lp.rhs_for(bounds);
        let factor = Factor::refactor(lp, &basis)?;
        let mut pos_of = vec![usize::MAX; lp.ncols];
        for (i, &j) in basis.iter().enumerate() {
            if pos_of[j] != usize::MAX {
                return None; // repeated basic column: corrupt warm basis
            }
            pos_of[j] = i;
        }
        let x = factor.ftran(&mut b.clone());
        Some(Sim { lp, b, basis, pos_of, x, factor, cursor: 0 })
    }

    fn sparse_dot(y: &[f64], col: &[(usize, f64)]) -> f64 {
        col.iter().map(|&(r, v)| y[r] * v).sum()
    }

    /// Scatters column `j` into a dense work vector and FTRANs it.
    fn ftran_col(&self, j: usize) -> Vec<f64> {
        let mut a = vec![0.0f64; self.lp.m];
        for &(r, v) in &self.lp.cols[j] {
            a[r] += v;
        }
        self.factor.ftran(&mut a)
    }

    fn btran(&self, c_basic: &[f64]) -> Vec<f64> {
        self.factor.btran(c_basic)
    }

    /// Simplex multipliers `y = B⁻ᵀ c_B` for the given objective.
    fn multipliers(&self, c: &[f64]) -> Vec<f64> {
        let c_basic: Vec<f64> = self.basis.iter().map(|&j| c[j]).collect();
        self.btran(&c_basic)
    }

    /// Entering-column selection.
    ///
    /// * `bland` — Bland's lowest-index rule (degeneracy fallback);
    /// * `full` — Dantzig's rule over **all** columns with first-lowest
    ///   tie-breaking, the same walk as the dense reference kernel (used in
    ///   phase 2 so both kernels land on the same optimal vertex);
    /// * otherwise — Dantzig over **partial-pricing segments**: scan from
    ///   the persistent cursor and stop at the first segment containing an
    ///   improving column (used in phase 1, where only feasibility matters
    ///   and full pricing would dominate the iteration cost).
    fn price(
        &mut self,
        c: &[f64],
        y: &[f64],
        allow: &dyn Fn(usize) -> bool,
        bland: bool,
        full: bool,
    ) -> Option<usize> {
        let ncols = self.lp.ncols;
        if bland {
            return (0..ncols).find(|&j| {
                allow(j)
                    && self.pos_of[j] == usize::MAX
                    && c[j] - Self::sparse_dot(y, &self.lp.cols[j]) > EPS
            });
        }
        let seg = if full { ncols } else { (ncols / 8).clamp(64, 512).min(ncols.max(1)) };
        let start = if full { 0 } else { self.cursor.min(ncols.saturating_sub(1)) };
        let mut best: Option<(usize, f64)> = None;
        for k in 0..ncols {
            let j = (start + k) % ncols;
            if allow(j) && self.pos_of[j] == usize::MAX {
                let rc = c[j] - Self::sparse_dot(y, &self.lp.cols[j]);
                if rc > EPS && best.map(|(_, b)| rc > b).unwrap_or(true) {
                    best = Some((j, rc));
                }
            }
            if (k + 1) % seg == 0 && best.is_some() {
                break;
            }
        }
        best.map(|(j, _)| {
            self.cursor = (j + 1) % ncols;
            j
        })
    }

    /// Primal ratio test: the leaving row minimising `x_i / d_i` over
    /// `d_i > 0` (Bland tie-break on the basic column index when `bland`).
    fn ratio_test(&self, d: &[f64], bland: bool) -> Option<usize> {
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for (i, &di) in d.iter().enumerate() {
            if di > EPS {
                let ratio = self.x[i].max(0.0) / di;
                let better = match leave {
                    None => ratio.is_finite(),
                    Some(l) => {
                        ratio < best - EPS
                            || (bland
                                && (ratio - best).abs() <= EPS
                                && self.basis[i] < self.basis[l])
                    }
                };
                if better {
                    best = ratio;
                    leave = Some(i);
                }
            }
        }
        leave
    }

    /// Pivots column `q` into basis position `r` given its FTRAN image `d`,
    /// updating the basic solution and appending an eta (refactorising when
    /// the eta file is full). `false` signals numerical failure.
    fn pivot(&mut self, r: usize, q: usize, d: Vec<f64>) -> bool {
        let dr = d[r];
        if dr.abs() <= EPS {
            return false;
        }
        let t = self.x[r] / dr;
        for (i, &di) in d.iter().enumerate() {
            if i != r && di.abs() > DROP_TOL {
                self.x[i] -= di * t;
            }
        }
        self.x[r] = t;
        self.pos_of[self.basis[r]] = usize::MAX;
        self.basis[r] = q;
        self.pos_of[q] = r;
        let col: Vec<(usize, f64)> = d
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != r && v.abs() > DROP_TOL)
            .map(|(i, &v)| (i, v))
            .collect();
        self.factor.etas.push(Eta { pos: r, diag: dr, col });
        if self.factor.etas.len() >= REFACTOR_EVERY && !self.refresh() {
            return false;
        }
        true
    }

    /// Refactorises the current basis from scratch and recomputes the
    /// basic solution, purging eta-file drift. `false` signals a
    /// (numerically) singular basis.
    fn refresh(&mut self) -> bool {
        let Some(factor) = Factor::refactor(self.lp, &self.basis) else {
            return false;
        };
        self.factor = factor;
        self.x = self.factor.ftran(&mut self.b.clone());
        true
    }

    /// Primal simplex iterations until optimality or unboundedness, with
    /// the same Dantzig→Bland degeneracy ladder and hard safety valve as
    /// the dense kernel.
    fn primal(&mut self, c: &[f64], allow: impl Fn(usize) -> bool, full_pricing: bool) -> Phase {
        let scale = self.lp.m + self.lp.ncols;
        let dantzig_limit = 50 * scale + 1000;
        let hard_limit = 400 * scale + 20000;
        let mut iter = 0usize;
        loop {
            iter += 1;
            if iter > hard_limit {
                // Termination safety valve: accept the current basis.
                return Phase::Optimal;
            }
            let bland = iter > dantzig_limit;
            let y = self.multipliers(c);
            let Some(q) = self.price(c, &y, &allow, bland, full_pricing) else {
                return Phase::Optimal;
            };
            let d = self.ftran_col(q);
            let Some(r) = self.ratio_test(&d, bland) else {
                return Phase::Unbounded;
            };
            if !self.pivot(r, q, d) {
                return Phase::Numerical;
            }
        }
    }

    /// Dual simplex iterations from a dual-feasible basis, restoring primal
    /// feasibility after a right-hand-side change (the warm-start path).
    /// Artificial columns are barred from entering.
    fn dual(&mut self, c: &[f64]) -> DualOutcome {
        let limit = 200 * (self.lp.m + self.lp.ncols) + 10000;
        for _ in 0..limit {
            let Some(r) = (0..self.lp.m)
                .filter(|&i| self.x[i] < -FEAS_EPS)
                .min_by(|&a, &b| self.x[a].total_cmp(&self.x[b]))
            else {
                return DualOutcome::Feasible;
            };
            let y = self.multipliers(c);
            let mut unit = vec![0.0f64; self.lp.m];
            unit[r] = 1.0;
            let rho = self.btran(&unit);
            let mut enter: Option<(usize, f64)> = None;
            for (j, col) in self.lp.cols.iter().enumerate().take(self.lp.art_start) {
                if self.pos_of[j] != usize::MAX {
                    continue;
                }
                let alpha = Self::sparse_dot(&rho, col);
                if alpha < -EPS {
                    let rc = (c[j] - Self::sparse_dot(&y, col)).min(0.0);
                    let ratio = rc / alpha;
                    if enter.map(|(_, best)| ratio < best - EPS).unwrap_or(true) {
                        enter = Some((j, ratio));
                    }
                }
            }
            let Some((q, _)) = enter else {
                // No column can absorb the violation: the LP is infeasible
                // (the caller confirms the verdict from a freshly
                // refactorised basis before pruning on it).
                return DualOutcome::Infeasible;
            };
            let d = self.ftran_col(q);
            if !self.pivot(r, q, d) {
                return DualOutcome::Numerical;
            }
        }
        DualOutcome::Numerical
    }

    /// Pivots basic artificials out of the basis after phase 1 where a
    /// non-artificial replacement column exists; redundant rows keep their
    /// zero-valued artificial (barred from re-entering). `false` signals
    /// numerical failure.
    fn drive_out_artificials(&mut self) -> bool {
        for i in 0..self.lp.m {
            if self.basis[i] < self.lp.art_start {
                continue;
            }
            let mut unit = vec![0.0f64; self.lp.m];
            unit[i] = 1.0;
            let rho = self.btran(&unit);
            let replacement = (0..self.lp.art_start).find(|&j| {
                self.pos_of[j] == usize::MAX
                    && Self::sparse_dot(&rho, &self.lp.cols[j]).abs() > 1e-7
            });
            if let Some(j) = replacement {
                let d = self.ftran_col(j);
                if !self.pivot(i, j, d) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::{Model, VarKind};

    fn term(v: crate::expr::VarId, c: f64) -> LinExpr {
        LinExpr::term(v, c)
    }

    /// The sparse kernel itself (no dense fallback): `None` means the
    /// sparse path gave up, which these tests treat as a failure.
    fn sparse_strict(model: &Model, overrides: &[(f64, f64)]) -> LpResult {
        let ctx = SparseLp::new(model, overrides);
        ctx.try_cold(model).expect("sparse kernel fell back to dense").0
    }

    #[test]
    fn simple_two_variable_lp() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_le("c1", term(x, 1.0) + term(y, 1.0), 4.0);
        m.add_le("c2", term(x, 1.0) + term(y, 3.0), 6.0);
        m.maximize(term(x, 3.0) + term(y, 2.0));
        let r = sparse_strict(&m, &[]);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 12.0).abs() < 1e-6);
        assert!((r.values[0] - 4.0).abs() < 1e-6);
        assert!(r.values[1].abs() < 1e-6);
    }

    #[test]
    fn equality_and_ge_constraints() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_eq("sum", term(x, 1.0) + term(y, 1.0), 10.0);
        m.add_ge("xmin", term(x, 1.0), 3.0);
        m.add_ge("ymin", term(y, 1.0), 2.0);
        m.maximize(term(x, 1.0) + term(y, 1.0));
        let r = sparse_strict(&m, &[]);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 10.0).abs() < 1e-6);
        assert!(r.values[0] >= 3.0 - 1e-6);
        assert!(r.values[1] >= 2.0 - 1e-6);
    }

    #[test]
    fn infeasible_and_unbounded_detected() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 5.0);
        m.add_ge("hi", term(x, 1.0), 10.0);
        m.maximize(term(x, 1.0));
        assert_eq!(sparse_strict(&m, &[]).status, LpStatus::Infeasible);

        let mut u = Model::new();
        let x = u.add_continuous("x", 0.0, f64::INFINITY);
        let y = u.add_continuous("y", 0.0, f64::INFINITY);
        u.add_ge("c", term(x, 1.0) - term(y, 1.0), 1.0);
        u.maximize(term(x, 1.0));
        assert_eq!(sparse_strict(&u, &[]).status, LpStatus::Unbounded);
    }

    #[test]
    fn minimisation_and_shifted_bounds() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_ge("c", term(x, 1.0) + term(y, 1.0), 4.0);
        m.minimize(term(x, 2.0) + term(y, 3.0));
        let r = sparse_strict(&m, &[]);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 8.0).abs() < 1e-6);

        let mut s = Model::new();
        let x = s.add_continuous("x", -5.0, 0.0);
        s.add_le("cap", term(x, 1.0), -1.0);
        s.maximize(term(x, 1.0));
        let r = sparse_strict(&s, &[]);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.values[0] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn unconstrained_model_uses_bounds() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 7.0);
        let y = m.add_continuous("y", -2.0, 3.0);
        m.maximize(term(x, 2.0) - term(y, 1.0));
        let r = sparse_strict(&m, &[]);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.values[0] - 7.0).abs() < 1e-6);
        assert!((r.values[1] + 2.0).abs() < 1e-6);
        assert!((r.objective - 16.0).abs() < 1e-6);
    }

    #[test]
    fn binary_relaxation_and_degenerate_problem() {
        let mut m = Model::new();
        let x = m.add_var("x", VarKind::Binary, 0.0, 1.0);
        let y = m.add_var("y", VarKind::Binary, 0.0, 1.0);
        m.add_le("c", term(x, 2.0) + term(y, 2.0), 3.0);
        m.maximize(term(x, 1.0) + term(y, 1.0));
        let r = sparse_strict(&m, &[]);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 1.5).abs() < 1e-6);

        let mut d = Model::new();
        let x = d.add_continuous("x", 0.0, f64::INFINITY);
        let y = d.add_continuous("y", 0.0, f64::INFINITY);
        for i in 0..20 {
            d.add_le(format!("c{i}"), term(x, 1.0) + term(y, 1.0 + i as f64 * 1e-9), 1.0);
        }
        d.maximize(term(x, 1.0) + term(y, 1.0));
        let r = sparse_strict(&d, &[]);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bound_overrides_take_precedence() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 10.0);
        m.maximize(term(x, 1.0));
        let r = sparse_strict(&m, &[(0.0, 3.0)]);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.values[0] - 3.0).abs() < 1e-6);
        assert_eq!(sparse_strict(&m, &[(5.0, 3.0)]).status, LpStatus::Infeasible);
    }

    #[test]
    fn warm_start_resolves_branch_children() {
        // A 0/1 knapsack relaxation: branch on x0 and re-solve both
        // children from the parent basis.
        let mut m = Model::new();
        let vars: Vec<_> =
            (0..4).map(|i| m.add_var(format!("x{i}"), VarKind::Binary, 0.0, 1.0)).collect();
        let mut cap = LinExpr::zero();
        let mut obj = LinExpr::zero();
        for (i, &v) in vars.iter().enumerate() {
            cap.add_term(v, [5.0, 4.0, 3.0, 2.0][i]);
            obj.add_term(v, [10.0, 7.0, 4.0, 3.0][i]);
        }
        m.add_le("cap", cap, 9.0);
        m.maximize(obj);

        let root_bounds: Vec<(f64, f64)> = vec![(0.0, 1.0); 4];
        let ctx = SparseLp::new(&m, &root_bounds);
        let (root, basis) = ctx.try_cold(&m).expect("cold solve stayed sparse");
        assert_eq!(root.status, LpStatus::Optimal);
        let basis = basis.expect("optimal solve returns a basis");

        for (lo, hi) in [(0.0, 0.0), (1.0, 1.0)] {
            let mut child = root_bounds.clone();
            child[0] = (lo, hi);
            let (warm, _) = ctx
                .solve_warm(&m, &child, &basis)
                .expect("warm path should handle a pure bound change");
            let cold = solve_lp_dense(&m, &child);
            assert_eq!(warm.status, cold.status, "child ({lo}, {hi})");
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "child ({lo}, {hi}): warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
        }
    }

    #[test]
    fn warm_start_rejects_structure_changes() {
        let mut m = Model::new();
        let x = m.add_integer("x", 0.0, f64::INFINITY);
        m.add_le("cap", term(x, 1.0), 7.5);
        m.maximize(term(x, 1.0));
        let bounds = vec![(0.0, f64::INFINITY)];
        let ctx = SparseLp::new(&m, &bounds);
        let (_, basis) = ctx.try_cold(&m).expect("cold solve stayed sparse");
        let basis = basis.expect("basis");
        // Branching down makes the upper bound finite — a new row — so the
        // warm path must refuse rather than mis-solve.
        assert!(ctx.solve_warm(&m, &[(0.0, 7.0)], &basis).is_none());
    }

    #[test]
    fn eta_file_refactorises_on_long_runs() {
        // Enough constraints/pivots to exceed REFACTOR_EVERY.
        let mut m = Model::new();
        let vars: Vec<_> = (0..30).map(|i| m.add_continuous(format!("x{i}"), 0.0, 10.0)).collect();
        let mut obj = LinExpr::zero();
        for (i, &v) in vars.iter().enumerate() {
            obj.add_term(v, 1.0 + (i % 7) as f64);
            let mut row = LinExpr::term(v, 1.0);
            if i + 1 < vars.len() {
                row.add_term(vars[i + 1], 0.5);
            }
            m.add_le(format!("r{i}"), row, 3.0 + (i % 5) as f64);
        }
        m.maximize(obj);
        let sparse = sparse_strict(&m, &[]);
        let dense = solve_lp_dense(&m, &[]);
        assert_eq!(sparse.status, LpStatus::Optimal);
        assert!(
            (sparse.objective - dense.objective).abs() < 1e-6 * (1.0 + dense.objective.abs()),
            "sparse {} vs dense {}",
            sparse.objective,
            dense.objective
        );
    }
}
