//! Linear expressions over model variables.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Identifier of a variable within a [`Model`](crate::model::Model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub usize);

impl VarId {
    /// The underlying index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A linear expression `Σ c_i · x_i + constant`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    /// Coefficients keyed by variable (zero coefficients are pruned).
    terms: BTreeMap<VarId, f64>,
    /// Constant offset.
    constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: f64) -> Self {
        LinExpr { terms: BTreeMap::new(), constant: c }
    }

    /// The expression `coeff · var`.
    pub fn term(var: VarId, coeff: f64) -> Self {
        let mut e = LinExpr::zero();
        e.add_term(var, coeff);
        e
    }

    /// Adds `coeff · var` to the expression.
    pub fn add_term(&mut self, var: VarId, coeff: f64) -> &mut Self {
        let entry = self.terms.entry(var).or_insert(0.0);
        *entry += coeff;
        if entry.abs() < 1e-12 {
            self.terms.remove(&var);
        }
        self
    }

    /// Adds a constant to the expression.
    pub fn add_constant(&mut self, c: f64) -> &mut Self {
        self.constant += c;
        self
    }

    /// The constant offset.
    pub fn constant_part(&self) -> f64 {
        self.constant
    }

    /// The coefficient of `var` (0 if absent).
    pub fn coefficient(&self, var: VarId) -> f64 {
        self.terms.get(&var).copied().unwrap_or(0.0)
    }

    /// Iterates over `(variable, coefficient)` pairs (non-zero only).
    pub fn terms(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.terms.iter().map(|(&v, &c)| (v, c))
    }

    /// Number of variables with non-zero coefficient.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// True when the expression has no variable terms.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates the expression for a full assignment of variable values
    /// (indexed by `VarId::index`).
    pub fn evaluate(&self, values: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|(v, c)| c * values.get(v.index()).copied().unwrap_or(0.0))
                .sum::<f64>()
    }

    /// Returns `self * scalar`.
    pub fn scaled(&self, scalar: f64) -> LinExpr {
        let mut out = LinExpr::constant(self.constant * scalar);
        for (v, c) in self.terms() {
            out.add_term(v, c * scalar);
        }
        out
    }

    /// Adds another expression in place.
    pub fn add_expr(&mut self, other: &LinExpr) -> &mut Self {
        self.constant += other.constant;
        for (v, c) in other.terms() {
            self.add_term(v, c);
        }
        self
    }
}

impl From<VarId> for LinExpr {
    fn from(v: VarId) -> Self {
        LinExpr::term(v, 1.0)
    }
}

impl From<f64> for LinExpr {
    fn from(c: f64) -> Self {
        LinExpr::constant(c)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self.add_expr(&rhs);
        self
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: LinExpr) -> LinExpr {
        self.add_expr(&rhs.scaled(-1.0));
        self
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self.scaled(-1.0)
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(self, rhs: f64) -> LinExpr {
        self.scaled(rhs)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in self.terms() {
            if first {
                write!(f, "{c}·{v}")?;
                first = false;
            } else if c < 0.0 {
                write!(f, " - {}·{v}", -c)?;
            } else {
                write!(f, " + {c}·{v}")?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant != 0.0 {
            if self.constant < 0.0 {
                write!(f, " - {}", -self.constant)?;
            } else {
                write!(f, " + {}", self.constant)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn building_and_coefficients() {
        let x = VarId(0);
        let y = VarId(1);
        let mut e = LinExpr::zero();
        e.add_term(x, 2.0).add_term(y, -1.0).add_constant(3.0);
        assert_eq!(e.coefficient(x), 2.0);
        assert_eq!(e.coefficient(y), -1.0);
        assert_eq!(e.coefficient(VarId(9)), 0.0);
        assert_eq!(e.constant_part(), 3.0);
        assert_eq!(e.num_terms(), 2);
        assert!(!e.is_constant());
    }

    #[test]
    fn zero_coefficients_are_pruned() {
        let x = VarId(0);
        let mut e = LinExpr::term(x, 2.0);
        e.add_term(x, -2.0);
        assert_eq!(e.num_terms(), 0);
        assert!(e.is_constant());
    }

    #[test]
    fn evaluation() {
        let e =
            LinExpr::term(VarId(0), 2.0) + LinExpr::term(VarId(2), 0.5) + LinExpr::constant(1.0);
        let vals = [3.0, 100.0, 4.0];
        assert_eq!(e.evaluate(&vals), 2.0 * 3.0 + 0.5 * 4.0 + 1.0);
        // Missing values are treated as zero.
        assert_eq!(LinExpr::term(VarId(7), 5.0).evaluate(&vals), 0.0);
    }

    #[test]
    fn arithmetic_operators() {
        let x = LinExpr::term(VarId(0), 1.0);
        let y = LinExpr::term(VarId(1), 1.0);
        let e = (x.clone() + y.clone()) * 2.0 - x.clone();
        assert_eq!(e.coefficient(VarId(0)), 1.0);
        assert_eq!(e.coefficient(VarId(1)), 2.0);
        let n = -x;
        assert_eq!(n.coefficient(VarId(0)), -1.0);
    }

    #[test]
    fn display_is_readable() {
        let e =
            LinExpr::term(VarId(0), 1.0) - LinExpr::term(VarId(1), 2.0) + LinExpr::constant(-3.0);
        let s = e.to_string();
        assert!(s.contains("x0"));
        assert!(s.contains("x1"));
        assert!(s.contains('-'));
        assert_eq!(LinExpr::constant(5.0).to_string(), "5");
    }
}
