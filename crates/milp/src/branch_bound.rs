//! Branch-and-bound MILP solver on top of the simplex LP relaxation.
//!
//! Each node's LP relaxation is solved with the sparse revised simplex by
//! default ([`LpKernel::Sparse`]), and child nodes are **warm-started**: a
//! child re-solves from its parent's optimal basis with a short dual-simplex
//! run instead of running phase 1 from scratch (only the branched variable's
//! bound — i.e. the right-hand side — changed, so the parent basis is still
//! dual feasible). [`LpKernel::Dense`] selects the dense reference kernel
//! for baselining.

use crate::expr::VarId;
use crate::model::{Direction, Model, Solution, SolveStatus};
use crate::revised::{SparseBasis, SparseLp};
use crate::simplex::{solve_lp_dense, LpResult, LpStatus};
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Which LP kernel the branch-and-bound search uses for node relaxations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LpKernel {
    /// The sparse revised simplex with warm-started re-solves (production).
    #[default]
    Sparse,
    /// The dense two-phase tableau (reference baseline; every node is
    /// solved cold).
    Dense,
}

/// Calibrated per-node cost model of the sparse warm-started search on the
/// reference single-core container: a branch-and-bound node on a model with
/// `s = num_vars + num_constraints` costs roughly
/// `NODE_COST_BASE_SECS + NODE_COST_SCALE_SECS · s^1.5` seconds. Fitted on
/// the `perf_report` Stage-2 components (small `s`) and the large academic
/// component (`s ≈ 2600`, ≈ 0.7 ms/node warm). Used to convert a wall-clock
/// target into a *deterministic* per-model node budget — see
/// [`MilpConfig::node_budget_for`].
pub const NODE_COST_BASE_SECS: f64 = 2e-6;
/// See [`NODE_COST_BASE_SECS`].
pub const NODE_COST_SCALE_SECS: f64 = 5.2e-9;

/// The wall-clock target the default deterministic deadline approximates.
/// The sparse warm-started kernel explores roughly 40× more nodes per
/// second than the dense baseline did, so two seconds of budget buy more
/// search than the old ten-second wall-clock default — deterministically.
pub const DEFAULT_DEADLINE: Duration = Duration::from_secs(2);

/// The smallest node budget a deadline resolves to (tiny models always get
/// a meaningful search).
pub const MIN_NODE_BUDGET: usize = 1_000;

/// Models smaller than this (`num_vars + num_constraints`) skip the root
/// diving heuristic: a tiny search proves optimality in a handful of nodes
/// anyway, and the dive's extra LP solves would dominate the solve time.
pub const DIVE_MIN_SIZE: usize = 256;

/// Configuration of the branch-and-bound search.
#[derive(Debug, Clone)]
pub struct MilpConfig {
    /// Hard cap on the number of branch-and-bound nodes to explore
    /// (combined with [`deadline`](MilpConfig::deadline) via
    /// [`MilpConfig::node_budget_for`]).
    pub max_nodes: usize,
    /// Deterministic deadline: converted per model into a node budget via
    /// the calibrated cost model ([`MilpConfig::node_budget_for`]), so a
    /// "deadline-hit" search stops at exactly the same node on every run —
    /// default-configured solves are byte-reproducible even under thread
    /// contention, unlike wall-clock limited ones. `Some(DEFAULT_DEADLINE)`
    /// by default.
    pub deadline: Option<Duration>,
    /// Optional wall-clock time limit. `None` by default: the calibrated
    /// node budget plays the deadline role deterministically. Setting a
    /// time limit re-introduces scheduling-dependent results for searches
    /// that hit it.
    pub time_limit: Option<Duration>,
    /// Integrality tolerance: a value within this distance of an integer is
    /// considered integral.
    pub int_tolerance: f64,
    /// Absolute optimality gap: nodes whose LP bound improves the incumbent
    /// by less than this are pruned.
    pub gap_tolerance: f64,
    /// Optional warm-start objective value of a known feasible solution
    /// (in the model's direction); used only for pruning.
    pub incumbent_hint: Option<f64>,
    /// Optional imported basis to warm-start the **root** relaxation from —
    /// typically the [`SolveStats::final_basis`] persisted by a previous
    /// solve of a structurally similar model (the incremental
    /// re-explanation path). Accepted only when it is primal feasible for
    /// this model ([`SparseLp::solve_from_basis`]); otherwise the root
    /// solves cold, so a stale basis can never corrupt the search. Note
    /// that a successful import changes the root vertex the search branches
    /// from, so among *equally optimal* solutions a warm-started search may
    /// legitimately pick a different one than a cold search.
    pub initial_basis: Option<SparseBasis>,
    /// Export the root relaxation's optimal basis into
    /// [`SolveStats::final_basis`]. Off by default: the export clones an
    /// `O(rows)` vector per solve, which callers that never re-import
    /// (the stateless pipeline) should not pay for.
    pub export_basis: bool,
    /// LP kernel for node relaxations.
    pub lp_kernel: LpKernel,
    /// Reuse the parent node's optimal basis when solving children (sparse
    /// kernel only). Disable to force every node to solve cold, e.g. to
    /// check warm/cold equivalence.
    pub warm_start: bool,
}

impl Default for MilpConfig {
    fn default() -> Self {
        MilpConfig {
            max_nodes: 200_000,
            deadline: Some(DEFAULT_DEADLINE),
            time_limit: None,
            int_tolerance: 1e-6,
            gap_tolerance: 1e-7,
            incumbent_hint: None,
            initial_basis: None,
            export_basis: false,
            lp_kernel: LpKernel::default(),
            warm_start: true,
        }
    }
}

impl MilpConfig {
    /// A configuration with a specific node limit.
    pub fn with_max_nodes(mut self, max_nodes: usize) -> Self {
        self.max_nodes = max_nodes;
        self
    }

    /// A configuration with a specific time limit.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Supplies a warm-start bound from a known feasible solution.
    pub fn with_incumbent_hint(mut self, objective: f64) -> Self {
        self.incumbent_hint = Some(objective);
        self
    }

    /// Supplies an imported basis ([`SolveStats::final_basis`] of a prior
    /// solve) to warm-start the root relaxation from.
    pub fn with_initial_basis(mut self, basis: Option<SparseBasis>) -> Self {
        self.initial_basis = basis;
        self
    }

    /// Enables exporting the root basis into [`SolveStats::final_basis`].
    pub fn with_export_basis(mut self, export: bool) -> Self {
        self.export_basis = export;
        self
    }

    /// A configuration using the given LP kernel.
    pub fn with_lp_kernel(mut self, kernel: LpKernel) -> Self {
        self.lp_kernel = kernel;
        self
    }

    /// Enables or disables warm-started LP re-solves.
    pub fn with_warm_start(mut self, warm_start: bool) -> Self {
        self.warm_start = warm_start;
        self
    }

    /// A configuration with a specific deterministic deadline (`None`
    /// disables it, leaving only [`max_nodes`](MilpConfig::max_nodes)).
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// The effective node budget for `model`: [`max_nodes`] capped by the
    /// [`deadline`] converted through the calibrated per-node cost model
    /// ([`NODE_COST_BASE_SECS`], [`NODE_COST_SCALE_SECS`]). Deterministic
    /// given the model, so — unlike a wall-clock limit — a budget-hit
    /// search stops at exactly the same point of the tree on every run.
    ///
    /// [`max_nodes`]: MilpConfig::max_nodes
    /// [`deadline`]: MilpConfig::deadline
    pub fn node_budget_for(&self, model: &Model) -> usize {
        let Some(target) = self.deadline else {
            return self.max_nodes;
        };
        let size = (model.num_vars() + model.num_constraints()) as f64;
        let per_node = NODE_COST_BASE_SECS + NODE_COST_SCALE_SECS * size.powf(1.5);
        let nodes = (target.as_secs_f64() / per_node) as usize;
        // An explicit `max_nodes` below MIN_NODE_BUDGET always wins.
        nodes.max(MIN_NODE_BUDGET).min(self.max_nodes.max(1))
    }
}

/// Statistics about a branch-and-bound run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveStats {
    /// Number of nodes explored.
    pub nodes: usize,
    /// Number of LP relaxations solved.
    pub lp_solves: usize,
    /// LP relaxations solved warm (from the parent node's basis).
    pub warm_lp_solves: usize,
    /// LP solves where the sparse kernel gave up and the dense reference
    /// kernel answered (numerical fallback).
    pub dense_fallbacks: usize,
    /// Whether a limit (node or time) interrupted the search.
    pub limit_hit: bool,
    /// The optimal basis of the **root** relaxation (sparse kernel only,
    /// populated only under [`MilpConfig::export_basis`]) — the exported
    /// counterpart of [`MilpConfig::initial_basis`]. Persist it and feed it
    /// back to a later solve of a structurally similar model to skip that
    /// solve's phase 1.
    pub final_basis: Option<SparseBasis>,
    /// Whether [`MilpConfig::initial_basis`] was accepted and actually
    /// warm-started the root relaxation.
    pub basis_imported: bool,
}

/// Solves a MILP, returning the best solution found and search statistics.
pub fn solve_with_stats(model: &Model, config: &MilpConfig) -> (Solution, SolveStats) {
    let start = Instant::now();
    let n = model.num_vars();
    let sign = match model.direction() {
        Direction::Maximize => 1.0,
        Direction::Minimize => -1.0,
    };

    let int_vars: Vec<VarId> = model.integral_vars();
    let root_bounds: Vec<(f64, f64)> =
        model.variables().iter().map(|v| (v.lower, v.upper)).collect();

    let mut stats = SolveStats::default();
    // `best` holds (objective in max-sense, values).
    let mut best: Option<(f64, Vec<f64>)> = None;
    // The warm-start hint is relaxed by a small epsilon so a solution equal
    // to the hint is still discovered (and reported) by the search.
    let mut incumbent_bound = config.incumbent_hint.map(|o| o * sign - 1e-6);

    // Imported-basis warm start: factorise the caller-supplied basis
    // against this model and, when it is primal feasible, solve the root
    // relaxation from it — phase 1 is skipped entirely. A rejected import
    // (`solve_from_basis` returns `None`) costs one factorisation attempt
    // and falls through to the ordinary cold/dive path.
    let mut root_warm: Option<NodeLp> = None;
    if config.lp_kernel == LpKernel::Sparse && config.warm_start {
        if let Some(imported) = &config.initial_basis {
            let ctx = Rc::new(SparseLp::new(model, &root_bounds));
            stats.lp_solves += 1;
            if let Some((lp, Some(basis))) = ctx.solve_from_basis(model, &root_bounds, imported) {
                if lp.status == LpStatus::Optimal {
                    stats.warm_lp_solves += 1;
                    stats.basis_imported = true;
                    root_warm = Some(NodeLp { ctx, basis: Rc::new(basis) });
                }
            }
        }
    }

    // Root diving heuristic (sparse kernel): greedily round the relaxation
    // to a feasible integral solution through warm-started re-solves. The
    // resulting incumbent both unlocks bound pruning from the first node
    // and guarantees a usable solution when the node budget is hit. The
    // dive's root solve doubles as the root node's warm state, so the main
    // loop does not re-solve the same LP cold. (Skipped when an imported
    // basis already provides the root warm state: the dive's purpose is to
    // amortise the cold root solve, which the import just avoided.)
    if root_warm.is_none()
        && config.lp_kernel == LpKernel::Sparse
        && config.warm_start
        && !int_vars.is_empty()
        && model.num_vars() + model.num_constraints() >= DIVE_MIN_SIZE
    {
        let (warm, incumbent) = dive_heuristic(model, &int_vars, &root_bounds, config, &mut stats);
        root_warm = warm;
        if let Some(values) = incumbent {
            let obj_max = evaluate_objective(model, &values) * sign;
            if incumbent_bound.map(|b| obj_max > b).unwrap_or(true) {
                incumbent_bound = Some(obj_max);
                best = Some((obj_max, values));
            }
        }
    }

    // Depth-first stack of nodes, each carrying its own bound vector plus
    // (sparse kernel) the LP context and optimal basis of its parent, from
    // which the node's relaxation is warm-started.
    type Node = (Vec<(f64, f64)>, Option<NodeLp>);
    let mut stack: Vec<Node> = vec![(root_bounds, root_warm)];
    let mut fully_explored = true;
    let node_budget = config.node_budget_for(model);

    while let Some((bounds, warm)) = stack.pop() {
        if stats.nodes >= node_budget {
            fully_explored = false;
            stats.limit_hit = true;
            break;
        }
        if let Some(limit) = config.time_limit {
            if start.elapsed() > limit {
                fully_explored = false;
                stats.limit_hit = true;
                break;
            }
        }
        stats.nodes += 1;
        stats.lp_solves += 1;

        let (lp, node_lp) = solve_node(model, config, &bounds, warm.as_ref(), &mut stats);
        if config.export_basis && stats.nodes == 1 {
            // Export the root relaxation's optimal basis: the reusable
            // warm-start object for a future solve of a similar model.
            stats.final_basis = node_lp.as_ref().map(|w| (*w.basis).clone());
        }
        match lp.status {
            LpStatus::Infeasible => continue,
            LpStatus::Unbounded => {
                // An unbounded relaxation at the root means the MILP itself is
                // unbounded (or has no useful bound); report it directly.
                return (
                    Solution {
                        status: SolveStatus::Unbounded,
                        values: vec![0.0; n],
                        objective: 0.0,
                    },
                    stats,
                );
            }
            LpStatus::Optimal => {}
        }
        let node_bound = lp.objective * sign;
        if let Some(inc) = incumbent_bound {
            if node_bound <= inc + config.gap_tolerance {
                continue; // cannot improve the incumbent
            }
        }

        // Find the most fractional integral variable.
        let mut branch_var: Option<(VarId, f64)> = None;
        let mut best_frac = config.int_tolerance;
        for &v in &int_vars {
            let x = lp.values[v.index()];
            let frac = (x - x.round()).abs();
            if frac > best_frac {
                best_frac = frac;
                branch_var = Some((v, x));
            }
        }

        match branch_var {
            None => {
                // Integral solution: candidate incumbent.
                let mut values = lp.values.clone();
                for &v in &int_vars {
                    values[v.index()] = values[v.index()].round();
                }
                let obj = evaluate_objective(model, &values);
                let obj_max = obj * sign;
                if best.as_ref().map(|(b, _)| obj_max > *b).unwrap_or(true) {
                    incumbent_bound = Some(obj_max);
                    best = Some((obj_max, values));
                }
            }
            Some((v, x)) => {
                let idx = v.index();
                let floor = x.floor();
                let ceil = x.ceil();
                // Child with x >= ceil.
                let mut up = bounds.clone();
                up[idx].0 = up[idx].0.max(ceil);
                // Child with x <= floor.
                let mut down = bounds.clone();
                down[idx].1 = down[idx].1.min(floor);
                // Explore the side closer to the fractional value first
                // (pushed last so it is popped first). Both children
                // warm-start from this node's optimal basis.
                if x - floor > 0.5 {
                    if down[idx].0 <= down[idx].1 {
                        stack.push((down, node_lp.clone()));
                    }
                    if up[idx].0 <= up[idx].1 {
                        stack.push((up, node_lp));
                    }
                } else {
                    if up[idx].0 <= up[idx].1 {
                        stack.push((up, node_lp.clone()));
                    }
                    if down[idx].0 <= down[idx].1 {
                        stack.push((down, node_lp));
                    }
                }
            }
        }
    }

    match best {
        Some((_, values)) => {
            let objective = evaluate_objective(model, &values);
            let status = if fully_explored { SolveStatus::Optimal } else { SolveStatus::Feasible };
            (Solution { status, values, objective }, stats)
        }
        None => {
            let status =
                if fully_explored { SolveStatus::Infeasible } else { SolveStatus::LimitReached };
            (Solution { status, values: vec![0.0; n], objective: 0.0 }, stats)
        }
    }
}

/// The reusable LP state a node hands to its children: the sparse LP
/// context (shared across the whole subtree with an unchanged constraint
/// structure) and the node's optimal basis.
#[derive(Clone)]
struct NodeLp {
    ctx: Rc<SparseLp>,
    basis: Rc<SparseBasis>,
}

/// LP-guided diving heuristic: starting from the root relaxation, round the
/// most fractional integral variable to its nearest integer, fix it, and
/// warm-start the re-solve from the previous basis; repeat until the
/// solution is integral or a fix is infeasible (the opposite rounding is
/// tried once before giving up). Deterministic, and bounded by
/// `2 · |int_vars|` warm LP solves.
///
/// Returns the root node's warm state (context + optimal basis of the root
/// relaxation, so the main search does not re-solve the root cold) plus a
/// feasible integral assignment when the dive reached one.
fn dive_heuristic(
    model: &Model,
    int_vars: &[VarId],
    root_bounds: &[(f64, f64)],
    config: &MilpConfig,
    stats: &mut SolveStats,
) -> (Option<NodeLp>, Option<Vec<f64>>) {
    let ctx = Rc::new(SparseLp::new(model, root_bounds));
    stats.lp_solves += 1;
    let (mut lp, mut basis) = ctx.solve_cold(model);
    let root_warm = basis.clone().map(|b| NodeLp { ctx: ctx.clone(), basis: Rc::new(b) });
    let mut bounds = root_bounds.to_vec();
    // Each iteration fixes exactly one (new) fractional variable, so after
    // at most `int_vars.len()` fixes the solution is integral — the extra
    // iteration runs the integrality check after the final fix.
    for _ in 0..=int_vars.len() {
        if lp.status != LpStatus::Optimal {
            return (root_warm, None);
        }
        // Most fractional integral variable.
        let mut pick: Option<(usize, f64)> = None;
        let mut best_frac = config.int_tolerance;
        for &v in int_vars {
            let x = lp.values[v.index()];
            let frac = (x - x.round()).abs();
            if frac > best_frac {
                best_frac = frac;
                pick = Some((v.index(), x));
            }
        }
        let Some((idx, x)) = pick else {
            // Integral: round and double-check feasibility.
            let mut values = lp.values.clone();
            for &v in int_vars {
                values[v.index()] = values[v.index()].round();
            }
            if model.violations(&values, 1e-6).is_empty() {
                return (root_warm, Some(values));
            }
            return (root_warm, None);
        };
        let (lb, ub) = bounds[idx];
        let mut fixed = x.round().clamp(lb, ub);
        let mut next = solve_fixed(&ctx, model, &mut bounds, idx, fixed, basis.as_ref(), stats);
        if next.as_ref().map(|(lp, _)| lp.status != LpStatus::Optimal).unwrap_or(true) {
            // The nearest rounding closed the problem: try the other side.
            fixed = if fixed > x { x.floor().clamp(lb, ub) } else { x.ceil().clamp(lb, ub) };
            next = solve_fixed(&ctx, model, &mut bounds, idx, fixed, basis.as_ref(), stats);
        }
        let Some((next_lp, next_basis)) = next else {
            return (root_warm, None);
        };
        lp = next_lp;
        basis = next_basis;
    }
    (root_warm, None)
}

/// One diving step: fixes variable `idx` to `value` in `bounds` and
/// re-solves, warm when a basis is available.
fn solve_fixed(
    ctx: &SparseLp,
    model: &Model,
    bounds: &mut [(f64, f64)],
    idx: usize,
    value: f64,
    basis: Option<&SparseBasis>,
    stats: &mut SolveStats,
) -> Option<(LpResult, Option<SparseBasis>)> {
    bounds[idx] = (value, value);
    stats.lp_solves += 1;
    if let Some(b) = basis {
        if let Some(out) = ctx.solve_warm(model, bounds, b) {
            stats.warm_lp_solves += 1;
            return Some(out);
        }
    }
    let fresh = SparseLp::new(model, bounds);
    Some(fresh.solve_cold(model))
}

/// Solves one node's LP relaxation, warm-starting from the parent basis
/// when available (sparse kernel) and falling back to a cold solve on a
/// fresh context otherwise. Returns the LP result plus the state the
/// node's children warm-start from.
fn solve_node(
    model: &Model,
    config: &MilpConfig,
    bounds: &[(f64, f64)],
    warm: Option<&NodeLp>,
    stats: &mut SolveStats,
) -> (LpResult, Option<NodeLp>) {
    if config.lp_kernel == LpKernel::Dense {
        return (solve_lp_dense(model, bounds), None);
    }
    if config.warm_start {
        if let Some(w) = warm {
            if let Some((lp, basis)) = w.ctx.solve_warm(model, bounds, &w.basis) {
                stats.warm_lp_solves += 1;
                let next = basis.map(|b| NodeLp { ctx: w.ctx.clone(), basis: Rc::new(b) });
                return (lp, next);
            }
        }
    }
    let ctx = Rc::new(SparseLp::new(model, bounds));
    let (lp, basis) = ctx.solve_cold(model);
    if basis.is_none() && lp.status == LpStatus::Optimal {
        stats.dense_fallbacks += 1;
    }
    let next = basis.map(|b| NodeLp { ctx, basis: Rc::new(b) });
    (lp, next)
}

/// Solves a MILP with the given configuration.
pub fn solve(model: &Model, config: &MilpConfig) -> Solution {
    solve_with_stats(model, config).0
}

/// Solves a MILP with default configuration.
pub fn solve_default(model: &Model) -> Solution {
    solve(model, &MilpConfig::default())
}

fn evaluate_objective(model: &Model, values: &[f64]) -> f64 {
    model.objective().evaluate(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::{Model, Sense};

    fn term(v: VarId, c: f64) -> LinExpr {
        LinExpr::term(v, c)
    }

    #[test]
    fn knapsack_is_solved_to_optimality() {
        // Items (value, weight): (10,5) (7,4) (4,3) (3,2); capacity 9.
        // Optimum: items 0 and 1 -> value 17, weight 9.
        let values = [10.0, 7.0, 4.0, 3.0];
        let weights = [5.0, 4.0, 3.0, 2.0];
        let mut m = Model::new();
        let vars: Vec<VarId> = (0..4).map(|i| m.add_binary(format!("x{i}"))).collect();
        let mut cap = LinExpr::zero();
        let mut obj = LinExpr::zero();
        for i in 0..4 {
            cap.add_term(vars[i], weights[i]);
            obj.add_term(vars[i], values[i]);
        }
        m.add_le("capacity", cap, 9.0);
        m.maximize(obj);

        let sol = solve_default(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 17.0).abs() < 1e-6);
        assert!(sol.is_set(vars[0]));
        assert!(sol.is_set(vars[1]));
        assert!(!sol.is_set(vars[2]));
        assert!(!sol.is_set(vars[3]));
        assert!(m.violations(&sol.values, 1e-6).is_empty());
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y s.t. 2x + 2y <= 3, binary -> LP gives 1.5 but MILP 1.
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_le("c", term(x, 2.0) + term(y, 2.0), 3.0);
        m.maximize(term(x, 1.0) + term(y, 1.0));
        let sol = solve_default(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn general_integer_variables() {
        // max 3x + 4y s.t. x + 2y <= 7, 3x + y <= 9, x,y integer >= 0.
        // Optimum: x=2, y=2 (obj 14) or better? x=2,y=2: c1=6<=7, c2=8<=9 obj=14.
        // x=1,y=3: c1=7, c2=6, obj=15. x=0,y=3: obj 12. x=1,y=3 is feasible -> 15.
        let mut m = Model::new();
        let x = m.add_integer("x", 0.0, 100.0);
        let y = m.add_integer("y", 0.0, 100.0);
        m.add_le("c1", term(x, 1.0) + term(y, 2.0), 7.0);
        m.add_le("c2", term(x, 3.0) + term(y, 1.0), 9.0);
        m.maximize(term(x, 3.0) + term(y, 4.0));
        let sol = solve_default(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 15.0).abs() < 1e-6);
        assert_eq!(sol.int_value(x), 1);
        assert_eq!(sol.int_value(y), 3);
    }

    #[test]
    fn infeasible_milp_detected() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.add_ge("impossible", term(x, 1.0), 2.0);
        m.maximize(term(x, 1.0));
        let sol = solve_default(&m);
        assert_eq!(sol.status, SolveStatus::Infeasible);
    }

    #[test]
    fn unbounded_milp_detected() {
        let mut m = Model::new();
        let x = m.add_integer("x", 0.0, f64::INFINITY);
        m.maximize(term(x, 1.0));
        let sol = solve_default(&m);
        assert_eq!(sol.status, SolveStatus::Unbounded);
    }

    #[test]
    fn minimisation_milp() {
        // min 5x + 4y s.t. x + y >= 3, x integer, y integer.
        let mut m = Model::new();
        let x = m.add_integer("x", 0.0, 10.0);
        let y = m.add_integer("y", 0.0, 10.0);
        m.add_ge("cover", term(x, 1.0) + term(y, 1.0), 3.0);
        m.minimize(term(x, 5.0) + term(y, 4.0));
        let sol = solve_default(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 12.0).abs() < 1e-6);
        assert_eq!(sol.int_value(y), 3);
    }

    #[test]
    fn mixed_integer_and_continuous() {
        // max 2x + 3c s.t. x + c <= 4.5, c <= 2.2, x binary*3 slots.
        let mut m = Model::new();
        let x = m.add_integer("x", 0.0, 3.0);
        let c = m.add_continuous("c", 0.0, 2.2);
        m.add_le("cap", term(x, 1.0) + term(c, 1.0), 4.5);
        m.maximize(term(x, 2.0) + term(c, 3.0));
        let sol = solve_default(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        // c at its bound 2.2, x at floor(4.5-2.2)=2 -> obj = 4 + 6.6 = 10.6
        assert!((sol.objective - 10.6).abs() < 1e-6);
        assert_eq!(sol.int_value(x), 2);
        assert!((sol.value(c) - 2.2).abs() < 1e-6);
    }

    #[test]
    fn equality_constrained_assignment() {
        // Pick exactly one of three options, maximise utility.
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_constraint("one", term(a, 1.0) + term(b, 1.0) + term(c, 1.0), Sense::Eq, 1.0);
        m.maximize(term(a, 1.0) + term(b, 5.0) + term(c, 3.0));
        let sol = solve_default(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!(sol.is_set(b));
        assert!(!sol.is_set(a));
        assert!(!sol.is_set(c));
        assert!((sol.objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn node_limit_reports_feasible_or_limit() {
        let mut m = Model::new();
        let vars: Vec<VarId> = (0..12).map(|i| m.add_binary(format!("x{i}"))).collect();
        let mut cap = LinExpr::zero();
        let mut obj = LinExpr::zero();
        for (i, &v) in vars.iter().enumerate() {
            cap.add_term(v, 1.0 + (i % 3) as f64);
            obj.add_term(v, 1.0 + (i % 5) as f64 * 0.37);
        }
        m.add_le("cap", cap, 7.0);
        m.maximize(obj);
        let cfg = MilpConfig::default().with_max_nodes(2);
        let (sol, stats) = solve_with_stats(&m, &cfg);
        assert!(stats.nodes <= 2);
        assert!(matches!(sol.status, SolveStatus::Feasible | SolveStatus::LimitReached));
        // With enough nodes the same model solves to optimality.
        let full = solve_default(&m);
        assert_eq!(full.status, SolveStatus::Optimal);
        assert!(m.violations(&full.values, 1e-6).is_empty());
    }

    #[test]
    fn incumbent_hint_prunes_without_losing_optimum() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_le("c", term(x, 1.0) + term(y, 1.0), 1.0);
        m.maximize(term(x, 2.0) + term(y, 3.0));
        // Hint below the optimum: search still proves optimality of 3.
        let cfg = MilpConfig::default().with_incumbent_hint(1.0);
        let sol = solve(&m, &cfg);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 3.0).abs() < 1e-6);
    }

    /// A knapsack over `n` binaries with the given value multiplier.
    fn knapsack(n: usize, value_scale: f64) -> Model {
        let mut m = Model::new();
        let mut cap = LinExpr::zero();
        let mut obj = LinExpr::zero();
        for i in 0..n {
            let v = m.add_binary(format!("x{i}"));
            cap.add_term(v, 1.0 + (i % 4) as f64);
            obj.add_term(v, value_scale * (1.0 + (i % 5) as f64 * 0.31));
        }
        m.add_le("cap", cap, (n as f64) * 0.9);
        m.maximize(obj);
        m
    }

    #[test]
    fn solve_exports_the_root_basis() {
        let m = knapsack(10, 1.0);
        let (sol, stats) = solve_with_stats(&m, &MilpConfig::default().with_export_basis(true));
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!(stats.final_basis.is_some(), "sparse solve must export a root basis");
        assert!(!stats.basis_imported);
        // Without the opt-in, nothing is exported (the cold pipeline must
        // not pay the per-solve clone).
        let (_, default_stats) = solve_with_stats(&m, &MilpConfig::default());
        assert!(default_stats.final_basis.is_none());
        // The dense kernel has no basis to export either way.
        let (_, dense) = solve_with_stats(
            &m,
            &MilpConfig::default().with_export_basis(true).with_lp_kernel(LpKernel::Dense),
        );
        assert!(dense.final_basis.is_none());
    }

    #[test]
    fn imported_basis_warm_starts_a_similar_model() {
        // Export from one solve, re-import into a model with the same
        // structure but perturbed objective coefficients — the incremental
        // re-explanation pattern. The warm solve must reach the same
        // optimum the cold solve proves.
        let first = knapsack(12, 1.0);
        let (_, stats) = solve_with_stats(&first, &MilpConfig::default().with_export_basis(true));
        let basis = stats.final_basis.clone().expect("exported basis");

        let perturbed = knapsack(12, 1.07);
        let warm_cfg = MilpConfig::default().with_initial_basis(Some(basis));
        let (warm_sol, warm_stats) = solve_with_stats(&perturbed, &warm_cfg);
        let (cold_sol, _) = solve_with_stats(&perturbed, &MilpConfig::default());
        assert_eq!(warm_sol.status, SolveStatus::Optimal);
        assert!(
            (warm_sol.objective - cold_sol.objective).abs() < 1e-6,
            "warm {} vs cold {}",
            warm_sol.objective,
            cold_sol.objective
        );
        assert!(
            warm_stats.basis_imported,
            "structurally identical primal-feasible basis must be accepted"
        );
        assert!(perturbed.violations(&warm_sol.values, 1e-6).is_empty());
    }

    #[test]
    fn incompatible_imported_basis_falls_back_to_cold() {
        // A basis exported from a smaller model cannot fit: the import is
        // rejected and the search must still prove the cold optimum.
        let small = knapsack(4, 1.0);
        let (_, small_stats) =
            solve_with_stats(&small, &MilpConfig::default().with_export_basis(true));
        let alien = small_stats.final_basis.clone().expect("exported basis");

        let big = knapsack(12, 1.0);
        let cfg = MilpConfig::default().with_initial_basis(Some(alien));
        let (sol, stats) = solve_with_stats(&big, &cfg);
        let (cold, _) = solve_with_stats(&big, &MilpConfig::default());
        assert!(!stats.basis_imported);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - cold.objective).abs() < 1e-6);
    }

    #[test]
    fn warm_start_equal_to_optimum_still_finds_it() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.add_le("cap", term(x, 1.0), 1.0);
        m.maximize(term(x, 1.0));
        let cfg = MilpConfig::default().with_incumbent_hint(1.0);
        let sol = solve(&m, &cfg);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 1.0).abs() < 1e-6);
        assert!(sol.is_set(x));
    }
}
