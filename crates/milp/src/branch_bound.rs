//! Branch-and-bound MILP solver on top of the simplex LP relaxation.

use crate::expr::VarId;
use crate::model::{Direction, Model, Solution, SolveStatus};
use crate::simplex::{solve_lp, LpStatus};
use std::time::{Duration, Instant};

/// Configuration of the branch-and-bound search.
#[derive(Debug, Clone)]
pub struct MilpConfig {
    /// Maximum number of branch-and-bound nodes to explore.
    pub max_nodes: usize,
    /// Optional wall-clock time limit.
    pub time_limit: Option<Duration>,
    /// Integrality tolerance: a value within this distance of an integer is
    /// considered integral.
    pub int_tolerance: f64,
    /// Absolute optimality gap: nodes whose LP bound improves the incumbent
    /// by less than this are pruned.
    pub gap_tolerance: f64,
    /// Optional warm-start objective value of a known feasible solution
    /// (in the model's direction); used only for pruning.
    pub incumbent_hint: Option<f64>,
}

impl Default for MilpConfig {
    fn default() -> Self {
        MilpConfig {
            max_nodes: 200_000,
            time_limit: Some(Duration::from_secs(10)),
            int_tolerance: 1e-6,
            gap_tolerance: 1e-7,
            incumbent_hint: None,
        }
    }
}

impl MilpConfig {
    /// A configuration with a specific node limit.
    pub fn with_max_nodes(mut self, max_nodes: usize) -> Self {
        self.max_nodes = max_nodes;
        self
    }

    /// A configuration with a specific time limit.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Supplies a warm-start bound from a known feasible solution.
    pub fn with_incumbent_hint(mut self, objective: f64) -> Self {
        self.incumbent_hint = Some(objective);
        self
    }
}

/// Statistics about a branch-and-bound run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveStats {
    /// Number of nodes explored.
    pub nodes: usize,
    /// Number of LP relaxations solved.
    pub lp_solves: usize,
    /// Whether a limit (node or time) interrupted the search.
    pub limit_hit: bool,
}

/// Solves a MILP, returning the best solution found and search statistics.
pub fn solve_with_stats(model: &Model, config: &MilpConfig) -> (Solution, SolveStats) {
    let start = Instant::now();
    let n = model.num_vars();
    let sign = match model.direction() {
        Direction::Maximize => 1.0,
        Direction::Minimize => -1.0,
    };

    let int_vars: Vec<VarId> = model.integral_vars();
    let root_bounds: Vec<(f64, f64)> =
        model.variables().iter().map(|v| (v.lower, v.upper)).collect();

    let mut stats = SolveStats::default();
    // `best` holds (objective in max-sense, values).
    let mut best: Option<(f64, Vec<f64>)> = None;
    // The warm-start hint is relaxed by a small epsilon so a solution equal
    // to the hint is still discovered (and reported) by the search.
    let mut incumbent_bound = config.incumbent_hint.map(|o| o * sign - 1e-6);

    // Depth-first stack of nodes, each carrying its own bound vector.
    let mut stack: Vec<Vec<(f64, f64)>> = vec![root_bounds];
    let mut fully_explored = true;

    while let Some(bounds) = stack.pop() {
        if stats.nodes >= config.max_nodes {
            fully_explored = false;
            stats.limit_hit = true;
            break;
        }
        if let Some(limit) = config.time_limit {
            if start.elapsed() > limit {
                fully_explored = false;
                stats.limit_hit = true;
                break;
            }
        }
        stats.nodes += 1;
        stats.lp_solves += 1;

        let lp = solve_lp(model, &bounds);
        match lp.status {
            LpStatus::Infeasible => continue,
            LpStatus::Unbounded => {
                // An unbounded relaxation at the root means the MILP itself is
                // unbounded (or has no useful bound); report it directly.
                return (
                    Solution {
                        status: SolveStatus::Unbounded,
                        values: vec![0.0; n],
                        objective: 0.0,
                    },
                    stats,
                );
            }
            LpStatus::Optimal => {}
        }
        let node_bound = lp.objective * sign;
        if let Some(inc) = incumbent_bound {
            if node_bound <= inc + config.gap_tolerance {
                continue; // cannot improve the incumbent
            }
        }

        // Find the most fractional integral variable.
        let mut branch_var: Option<(VarId, f64)> = None;
        let mut best_frac = config.int_tolerance;
        for &v in &int_vars {
            let x = lp.values[v.index()];
            let frac = (x - x.round()).abs();
            if frac > best_frac {
                best_frac = frac;
                branch_var = Some((v, x));
            }
        }

        match branch_var {
            None => {
                // Integral solution: candidate incumbent.
                let mut values = lp.values.clone();
                for &v in &int_vars {
                    values[v.index()] = values[v.index()].round();
                }
                let obj = evaluate_objective(model, &values);
                let obj_max = obj * sign;
                if best.as_ref().map(|(b, _)| obj_max > *b).unwrap_or(true) {
                    incumbent_bound = Some(obj_max);
                    best = Some((obj_max, values));
                }
            }
            Some((v, x)) => {
                let idx = v.index();
                let floor = x.floor();
                let ceil = x.ceil();
                // Child with x >= ceil.
                let mut up = bounds.clone();
                up[idx].0 = up[idx].0.max(ceil);
                // Child with x <= floor.
                let mut down = bounds.clone();
                down[idx].1 = down[idx].1.min(floor);
                // Explore the side closer to the fractional value first
                // (pushed last so it is popped first).
                if x - floor > 0.5 {
                    if down[idx].0 <= down[idx].1 {
                        stack.push(down);
                    }
                    if up[idx].0 <= up[idx].1 {
                        stack.push(up);
                    }
                } else {
                    if up[idx].0 <= up[idx].1 {
                        stack.push(up);
                    }
                    if down[idx].0 <= down[idx].1 {
                        stack.push(down);
                    }
                }
            }
        }
    }

    match best {
        Some((_, values)) => {
            let objective = evaluate_objective(model, &values);
            let status = if fully_explored { SolveStatus::Optimal } else { SolveStatus::Feasible };
            (Solution { status, values, objective }, stats)
        }
        None => {
            let status =
                if fully_explored { SolveStatus::Infeasible } else { SolveStatus::LimitReached };
            (Solution { status, values: vec![0.0; n], objective: 0.0 }, stats)
        }
    }
}

/// Solves a MILP with the given configuration.
pub fn solve(model: &Model, config: &MilpConfig) -> Solution {
    solve_with_stats(model, config).0
}

/// Solves a MILP with default configuration.
pub fn solve_default(model: &Model) -> Solution {
    solve(model, &MilpConfig::default())
}

fn evaluate_objective(model: &Model, values: &[f64]) -> f64 {
    model.objective().evaluate(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::{Model, Sense};

    fn term(v: VarId, c: f64) -> LinExpr {
        LinExpr::term(v, c)
    }

    #[test]
    fn knapsack_is_solved_to_optimality() {
        // Items (value, weight): (10,5) (7,4) (4,3) (3,2); capacity 9.
        // Optimum: items 0 and 1 -> value 17, weight 9.
        let values = [10.0, 7.0, 4.0, 3.0];
        let weights = [5.0, 4.0, 3.0, 2.0];
        let mut m = Model::new();
        let vars: Vec<VarId> = (0..4).map(|i| m.add_binary(format!("x{i}"))).collect();
        let mut cap = LinExpr::zero();
        let mut obj = LinExpr::zero();
        for i in 0..4 {
            cap.add_term(vars[i], weights[i]);
            obj.add_term(vars[i], values[i]);
        }
        m.add_le("capacity", cap, 9.0);
        m.maximize(obj);

        let sol = solve_default(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 17.0).abs() < 1e-6);
        assert!(sol.is_set(vars[0]));
        assert!(sol.is_set(vars[1]));
        assert!(!sol.is_set(vars[2]));
        assert!(!sol.is_set(vars[3]));
        assert!(m.violations(&sol.values, 1e-6).is_empty());
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y s.t. 2x + 2y <= 3, binary -> LP gives 1.5 but MILP 1.
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_le("c", term(x, 2.0) + term(y, 2.0), 3.0);
        m.maximize(term(x, 1.0) + term(y, 1.0));
        let sol = solve_default(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn general_integer_variables() {
        // max 3x + 4y s.t. x + 2y <= 7, 3x + y <= 9, x,y integer >= 0.
        // Optimum: x=2, y=2 (obj 14) or better? x=2,y=2: c1=6<=7, c2=8<=9 obj=14.
        // x=1,y=3: c1=7, c2=6, obj=15. x=0,y=3: obj 12. x=1,y=3 is feasible -> 15.
        let mut m = Model::new();
        let x = m.add_integer("x", 0.0, 100.0);
        let y = m.add_integer("y", 0.0, 100.0);
        m.add_le("c1", term(x, 1.0) + term(y, 2.0), 7.0);
        m.add_le("c2", term(x, 3.0) + term(y, 1.0), 9.0);
        m.maximize(term(x, 3.0) + term(y, 4.0));
        let sol = solve_default(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 15.0).abs() < 1e-6);
        assert_eq!(sol.int_value(x), 1);
        assert_eq!(sol.int_value(y), 3);
    }

    #[test]
    fn infeasible_milp_detected() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.add_ge("impossible", term(x, 1.0), 2.0);
        m.maximize(term(x, 1.0));
        let sol = solve_default(&m);
        assert_eq!(sol.status, SolveStatus::Infeasible);
    }

    #[test]
    fn unbounded_milp_detected() {
        let mut m = Model::new();
        let x = m.add_integer("x", 0.0, f64::INFINITY);
        m.maximize(term(x, 1.0));
        let sol = solve_default(&m);
        assert_eq!(sol.status, SolveStatus::Unbounded);
    }

    #[test]
    fn minimisation_milp() {
        // min 5x + 4y s.t. x + y >= 3, x integer, y integer.
        let mut m = Model::new();
        let x = m.add_integer("x", 0.0, 10.0);
        let y = m.add_integer("y", 0.0, 10.0);
        m.add_ge("cover", term(x, 1.0) + term(y, 1.0), 3.0);
        m.minimize(term(x, 5.0) + term(y, 4.0));
        let sol = solve_default(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 12.0).abs() < 1e-6);
        assert_eq!(sol.int_value(y), 3);
    }

    #[test]
    fn mixed_integer_and_continuous() {
        // max 2x + 3c s.t. x + c <= 4.5, c <= 2.2, x binary*3 slots.
        let mut m = Model::new();
        let x = m.add_integer("x", 0.0, 3.0);
        let c = m.add_continuous("c", 0.0, 2.2);
        m.add_le("cap", term(x, 1.0) + term(c, 1.0), 4.5);
        m.maximize(term(x, 2.0) + term(c, 3.0));
        let sol = solve_default(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        // c at its bound 2.2, x at floor(4.5-2.2)=2 -> obj = 4 + 6.6 = 10.6
        assert!((sol.objective - 10.6).abs() < 1e-6);
        assert_eq!(sol.int_value(x), 2);
        assert!((sol.value(c) - 2.2).abs() < 1e-6);
    }

    #[test]
    fn equality_constrained_assignment() {
        // Pick exactly one of three options, maximise utility.
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_constraint("one", term(a, 1.0) + term(b, 1.0) + term(c, 1.0), Sense::Eq, 1.0);
        m.maximize(term(a, 1.0) + term(b, 5.0) + term(c, 3.0));
        let sol = solve_default(&m);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!(sol.is_set(b));
        assert!(!sol.is_set(a));
        assert!(!sol.is_set(c));
        assert!((sol.objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn node_limit_reports_feasible_or_limit() {
        let mut m = Model::new();
        let vars: Vec<VarId> = (0..12).map(|i| m.add_binary(format!("x{i}"))).collect();
        let mut cap = LinExpr::zero();
        let mut obj = LinExpr::zero();
        for (i, &v) in vars.iter().enumerate() {
            cap.add_term(v, 1.0 + (i % 3) as f64);
            obj.add_term(v, 1.0 + (i % 5) as f64 * 0.37);
        }
        m.add_le("cap", cap, 7.0);
        m.maximize(obj);
        let cfg = MilpConfig::default().with_max_nodes(2);
        let (sol, stats) = solve_with_stats(&m, &cfg);
        assert!(stats.nodes <= 2);
        assert!(matches!(sol.status, SolveStatus::Feasible | SolveStatus::LimitReached));
        // With enough nodes the same model solves to optimality.
        let full = solve_default(&m);
        assert_eq!(full.status, SolveStatus::Optimal);
        assert!(m.violations(&full.values, 1e-6).is_empty());
    }

    #[test]
    fn incumbent_hint_prunes_without_losing_optimum() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_le("c", term(x, 1.0) + term(y, 1.0), 1.0);
        m.maximize(term(x, 2.0) + term(y, 3.0));
        // Hint below the optimum: search still proves optimality of 3.
        let cfg = MilpConfig::default().with_incumbent_hint(1.0);
        let sol = solve(&m, &cfg);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn warm_start_equal_to_optimum_still_finds_it() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.add_le("cap", term(x, 1.0), 1.0);
        m.maximize(term(x, 1.0));
        let cfg = MilpConfig::default().with_incumbent_hint(1.0);
        let sol = solve(&m, &cfg);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 1.0).abs() < 1e-6);
        assert!(sol.is_set(x));
    }
}
