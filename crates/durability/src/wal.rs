//! The per-session append-only delta WAL.
//!
//! ## File format
//!
//! ```text
//! magic "E3DWAL02"                                  (8 bytes)
//! record*:  len: u32 | payload: len bytes | crc32(payload): u32
//! payload:  seq: u64 | deadline: Option<u64 nanos>
//!           | request_id: Option<str> | RelationDelta
//! ```
//!
//! The WAL is a **redo log of applied deltas**: the registry appends a
//! record only after `re_explain` succeeded and before the caller is
//! acknowledged. Each append is a single `write_all` straight to the file
//! descriptor (no user-space buffering), so a `kill -9` can lose at most
//! the record being written — never an acknowledged one — and `fsync`
//! policy only decides what a *power loss* can take.
//!
//! ## Torn tails
//!
//! [`read_wal`] scans records until the first frame that is short, fails
//! its checksum, or does not decode, and **stops there**: the valid prefix
//! is returned together with the byte offset it ends at and a flag saying
//! whether trailing garbage was discarded. It never panics on any byte
//! sequence — the corpus tests flip, truncate, and extend real logs at
//! every offset. [`WalWriter::open_end`] truncates the file back to that
//! valid offset before resuming appends, so a torn tail is physically
//! repaired on recovery.

use crate::codec::{crc32, dec_delta, enc_delta, Dec, Enc};
use crate::fault::{self, ShimHandle};
use crate::DurabilityError;
use explain3d_incremental::RelationDelta;
use std::fs::File;
use std::io::{Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Magic bytes opening every WAL file (format version 02 — records carry
/// the client-generated `request_id` used for exactly-once retry dedup).
pub const WAL_MAGIC: [u8; 8] = *b"E3DWAL02";

/// Sanity bound on one record's payload: a corrupt length field larger
/// than this is treated as a torn tail instead of attempted.
const MAX_RECORD_BYTES: u32 = 1 << 30;

/// When (not whether) appended records reach stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync from the append path; the OS flushes on its schedule.
    /// Survives process crashes (`kill -9`) but not power loss.
    Never,
    /// Group commit: fsync once every N appended records (and on every
    /// explicit [`WalWriter::sync`]). Bounds power-loss exposure to N
    /// acknowledged deltas at a fraction of `Always`'s cost.
    EveryN(u32),
    /// fsync after every record: an acknowledged delta is never lost,
    /// at ~one disk flush per request.
    Always,
}

impl FsyncPolicy {
    /// Parses the CLI spelling: `off`/`never`, `interval` (group commit
    /// every 16 records), `interval:N`, or `always`.
    pub fn parse(raw: &str) -> Option<FsyncPolicy> {
        match raw {
            "off" | "never" => Some(FsyncPolicy::Never),
            "interval" => Some(FsyncPolicy::EveryN(16)),
            "always" => Some(FsyncPolicy::Always),
            other => {
                let n = other.strip_prefix("interval:")?.parse().ok()?;
                (n > 0).then_some(FsyncPolicy::EveryN(n))
            }
        }
    }
}

/// One durable log entry: an applied delta, its position in the session's
/// apply order, and the per-request MILP deadline it ran under (the node
/// budget — and therefore the report — is a deterministic function of it).
#[derive(Debug, Clone)]
pub struct WalRecord {
    /// 1-based position in the session's delta order.
    pub seq: u64,
    /// The request's scoped deadline override, if any.
    pub deadline: Option<Duration>,
    /// The client-generated idempotency token, if the request carried one
    /// — recovery rebuilds the retry-dedup window from these.
    pub request_id: Option<String>,
    /// The applied edit script.
    pub delta: RelationDelta,
}

fn encode_record(record: &WalRecord) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(record.seq);
    e.opt_duration(record.deadline);
    e.opt_str(record.request_id.as_deref());
    enc_delta(&mut e, &record.delta);
    e.into_bytes()
}

/// An open WAL with append access.
pub struct WalWriter {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    unsynced: u32,
    shim: ShimHandle,
    /// When true, [`WalWriter::append`] records how long the write and the
    /// policy-driven fsync took, readable via [`WalWriter::last_timings`].
    /// Off by default so the clock reads cost nothing when nobody asks.
    timing: bool,
    last_write: Duration,
    last_fsync: Duration,
}

impl WalWriter {
    /// Creates a fresh (truncated) WAL containing only the magic header.
    pub fn create(path: &Path, policy: FsyncPolicy) -> std::io::Result<WalWriter> {
        WalWriter::create_with(path, policy, &None)
    }

    /// [`WalWriter::create`] with I/O routed through `shim`.
    pub fn create_with(
        path: &Path,
        policy: FsyncPolicy,
        shim: &ShimHandle,
    ) -> std::io::Result<WalWriter> {
        let mut file = fault::open_write(shim, path, true)?;
        fault::write_all(shim, &mut file, path, &WAL_MAGIC)?;
        fault::fsync(shim, &file, path)?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            policy,
            unsynced: 0,
            shim: shim.clone(),
            timing: false,
            last_write: Duration::ZERO,
            last_fsync: Duration::ZERO,
        })
    }

    /// Reopens an existing WAL for appending, first truncating it to
    /// `valid_len` (the end of the last valid record, per [`read_wal`]) so
    /// a torn tail is physically discarded. A `valid_len` below the header
    /// size recreates the file.
    pub fn open_end(
        path: &Path,
        policy: FsyncPolicy,
        valid_len: u64,
    ) -> std::io::Result<WalWriter> {
        WalWriter::open_end_with(path, policy, valid_len, &None)
    }

    /// [`WalWriter::open_end`] with I/O routed through `shim`.
    pub fn open_end_with(
        path: &Path,
        policy: FsyncPolicy,
        valid_len: u64,
        shim: &ShimHandle,
    ) -> std::io::Result<WalWriter> {
        if valid_len < WAL_MAGIC.len() as u64 {
            return WalWriter::create_with(path, policy, shim);
        }
        let mut file = fault::open_write(shim, path, false)?;
        file.set_len(valid_len)?;
        file.seek(SeekFrom::End(0))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            policy,
            unsynced: 0,
            shim: shim.clone(),
            timing: false,
            last_write: Duration::ZERO,
            last_fsync: Duration::ZERO,
        })
    }

    /// Enables (or disables) per-append timing capture; see
    /// [`WalWriter::last_timings`]. Disabled writers never read the clock.
    pub fn set_timing(&mut self, on: bool) {
        self.timing = on;
        self.last_write = Duration::ZERO;
        self.last_fsync = Duration::ZERO;
    }

    /// `(write, fsync)` durations of the most recent [`WalWriter::append`]
    /// — both zero unless timing is enabled. The fsync component is zero
    /// for appends whose policy skipped the sync.
    pub fn last_timings(&self) -> (Duration, Duration) {
        (self.last_write, self.last_fsync)
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record (a single `write_all` of the whole frame) and
    /// fsyncs according to the policy.
    pub fn append(&mut self, record: &WalRecord) -> std::io::Result<()> {
        let payload = encode_record(record);
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        let started = self.timing.then(Instant::now);
        fault::write_all(&self.shim, &mut self.file, &self.path, &frame)?;
        if let Some(t0) = started {
            self.last_write = t0.elapsed();
            self.last_fsync = Duration::ZERO;
        }
        let sync_due = match self.policy {
            FsyncPolicy::Never => false,
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                self.unsynced >= n
            }
        };
        if sync_due {
            let t0 = started.map(|_| Instant::now());
            fault::fsync(&self.shim, &self.file, &self.path)?;
            if let Some(t0) = t0 {
                self.last_fsync = t0.elapsed();
            }
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.unsynced = 0;
        fault::fsync(&self.shim, &self.file, &self.path)
    }

    /// Truncates the log back to just the header — called after a snapshot
    /// has durably captured everything the log contained.
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.file.set_len(WAL_MAGIC.len() as u64)?;
        self.file.seek(SeekFrom::Start(WAL_MAGIC.len() as u64))?;
        self.unsynced = 0;
        fault::fsync(&self.shim, &self.file, &self.path)
    }
}

/// The result of scanning a WAL file.
#[derive(Debug)]
pub struct WalReadOutcome {
    /// Every valid record, in append order.
    pub records: Vec<WalRecord>,
    /// Byte offset at which the valid prefix ends (where a reopening
    /// writer must truncate to). Below the header size means the file
    /// itself is unusable and must be recreated.
    pub valid_len: u64,
    /// True when bytes past `valid_len` were discarded (a torn or corrupt
    /// tail — expected after a crash mid-append, never an error).
    pub tail_discarded: bool,
}

/// Reads the valid prefix of a WAL file. Never panics and never errors on
/// *content*: any undecodable suffix — short frame, checksum mismatch,
/// invalid payload, even a missing or wrong magic header — just ends the
/// valid prefix. Only I/O failures surface as errors.
pub fn read_wal(path: &Path) -> Result<WalReadOutcome, DurabilityError> {
    read_wal_with(path, &None)
}

/// [`read_wal`] with I/O routed through `shim`.
pub fn read_wal_with(path: &Path, shim: &ShimHandle) -> Result<WalReadOutcome, DurabilityError> {
    let mut bytes = Vec::new();
    match fault::open_read(shim, path) {
        Ok(mut f) => {
            fault::read_to_end(shim, &mut f, path, &mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalReadOutcome { records: Vec::new(), valid_len: 0, tail_discarded: false })
        }
        Err(e) => return Err(e.into()),
    }
    if bytes.len() < WAL_MAGIC.len() || bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Ok(WalReadOutcome {
            records: Vec::new(),
            valid_len: 0,
            tail_discarded: !bytes.is_empty(),
        });
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    while let Some(header) = bytes.get(pos..pos + 4) {
        let len = u32::from_le_bytes(header.try_into().expect("4-byte slice"));
        if len > MAX_RECORD_BYTES {
            break;
        }
        let payload_start = pos + 4;
        let crc_start = payload_start + len as usize;
        let Some(payload) = bytes.get(payload_start..crc_start) else { break };
        let Some(crc_bytes) = bytes.get(crc_start..crc_start + 4) else { break };
        let stored_crc = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte slice"));
        if crc32(payload) != stored_crc {
            break;
        }
        let mut d = Dec::new(payload);
        let record = (|| -> Result<WalRecord, crate::codec::CodecError> {
            let seq = d.u64()?;
            let deadline = d.opt_duration()?;
            let request_id = d.opt_str()?;
            let delta = dec_delta(&mut d)?;
            Ok(WalRecord { seq, deadline, request_id, delta })
        })();
        let Ok(record) = record else { break };
        if !d.finished() {
            break;
        }
        records.push(record);
        pos = crc_start + 4;
    }
    Ok(WalReadOutcome { records, valid_len: pos as u64, tail_discarded: pos < bytes.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use explain3d_core::prelude::{CanonicalTuple, Side};
    use explain3d_relation::prelude::{Row, Value};

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("e3d-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tuple(key: &str) -> CanonicalTuple {
        CanonicalTuple {
            id: 0,
            key: vec![Value::str(key)],
            impact: 1.5,
            members: vec![0],
            representative: Row::new(vec![Value::str(key)]),
        }
    }

    fn record(seq: u64) -> WalRecord {
        WalRecord {
            seq,
            deadline: seq.is_multiple_of(2).then(|| Duration::from_millis(seq * 10)),
            request_id: seq.is_multiple_of(3).then(|| format!("req-{seq}")),
            delta: RelationDelta::new()
                .insert(Side::Left, tuple(&format!("k{seq}")))
                .delete(Side::Right, seq as usize),
        }
    }

    fn write_log(path: &Path, n: u64, policy: FsyncPolicy) {
        let mut w = WalWriter::create(path, policy).unwrap();
        for seq in 1..=n {
            w.append(&record(seq)).unwrap();
        }
        w.sync().unwrap();
    }

    #[test]
    fn append_then_read_round_trips() {
        let dir = tempdir("roundtrip");
        let path = dir.join("wal.log");
        write_log(&path, 5, FsyncPolicy::EveryN(2));
        let out = read_wal(&path).unwrap();
        assert_eq!(out.records.len(), 5);
        assert!(!out.tail_discarded);
        for (i, r) in out.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
            assert_eq!(r.deadline, record(r.seq).deadline);
            assert_eq!(r.request_id, record(r.seq).request_id);
            assert_eq!(r.delta.ops.len(), 2);
        }
        assert_eq!(out.valid_len, std::fs::metadata(&path).unwrap().len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_at_every_byte_recovers_the_prefix() {
        let dir = tempdir("trunc");
        let path = dir.join("wal.log");
        write_log(&path, 4, FsyncPolicy::Never);
        let full = std::fs::read(&path).unwrap();
        let whole = read_wal(&path).unwrap();
        // Byte offsets at which each record ends.
        let mut ends = vec![WAL_MAGIC.len() as u64];
        {
            let mut pos = WAL_MAGIC.len();
            for _ in 0..4 {
                let len = u32::from_le_bytes(full[pos..pos + 4].try_into().unwrap()) as usize;
                pos += 4 + len + 4;
                ends.push(pos as u64);
            }
        }
        let cut_path = dir.join("cut.log");
        for cut in 0..=full.len() {
            std::fs::write(&cut_path, &full[..cut]).unwrap();
            let out = read_wal(&cut_path).unwrap();
            // The valid prefix is exactly the records whose frames fit.
            let expect = ends.iter().filter(|&&e| e <= cut as u64).count().saturating_sub(1);
            assert_eq!(out.records.len(), expect, "cut at byte {cut}");
            assert_eq!(out.tail_discarded, out.valid_len < cut as u64, "cut at byte {cut}");
            for (a, b) in out.records.iter().zip(&whole.records) {
                assert_eq!(a.seq, b.seq);
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flips_never_panic_and_never_fabricate_records() {
        let dir = tempdir("flip");
        let path = dir.join("wal.log");
        write_log(&path, 3, FsyncPolicy::Never);
        let full = std::fs::read(&path).unwrap();
        let flip_path = dir.join("flip.log");
        for i in 0..full.len() {
            for bit in [0x01u8, 0x80u8] {
                let mut bytes = full.clone();
                bytes[i] ^= bit;
                std::fs::write(&flip_path, &bytes).unwrap();
                let out = read_wal(&flip_path).unwrap();
                // A flip can only shorten the valid prefix; surviving
                // records must equal the originals.
                assert!(out.records.len() <= 3, "flip at byte {i}");
                let original = read_wal(&path).unwrap();
                for (a, b) in out.records.iter().zip(&original.records) {
                    // Sequence numbers live inside the checksummed payload,
                    // so a surviving record is bit-identical.
                    assert_eq!(a.seq, b.seq, "flip at byte {i}");
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_tail_is_discarded_and_repaired_on_reopen() {
        let dir = tempdir("garbage");
        let path = dir.join("wal.log");
        write_log(&path, 2, FsyncPolicy::Never);
        let valid = std::fs::metadata(&path).unwrap().len();
        // Simulate a crash mid-append: half a frame of garbage.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xAB; 7]);
        std::fs::write(&path, &bytes).unwrap();
        let out = read_wal(&path).unwrap();
        assert_eq!(out.records.len(), 2);
        assert!(out.tail_discarded);
        assert_eq!(out.valid_len, valid);
        // Reopening truncates the tail and appends cleanly after it.
        let mut w = WalWriter::open_end(&path, FsyncPolicy::Always, out.valid_len).unwrap();
        w.append(&record(3)).unwrap();
        let repaired = read_wal(&path).unwrap();
        assert_eq!(repaired.records.len(), 3);
        assert!(!repaired.tail_discarded);
        assert_eq!(repaired.records[2].seq, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_missing_and_unmagical_files_read_cleanly() {
        let dir = tempdir("empty");
        let missing = read_wal(&dir.join("nope.log")).unwrap();
        assert!(missing.records.is_empty() && !missing.tail_discarded);
        let empty = dir.join("empty.log");
        std::fs::write(&empty, b"").unwrap();
        let out = read_wal(&empty).unwrap();
        assert!(out.records.is_empty() && !out.tail_discarded && out.valid_len == 0);
        let wrong = dir.join("wrong.log");
        std::fs::write(&wrong, b"NOTAWAL!extra").unwrap();
        let out = read_wal(&wrong).unwrap();
        assert!(out.records.is_empty() && out.tail_discarded && out.valid_len == 0);
        // A writer reopening an unusable file recreates it.
        let mut w = WalWriter::open_end(&wrong, FsyncPolicy::Never, out.valid_len).unwrap();
        w.append(&record(1)).unwrap();
        assert_eq!(read_wal(&wrong).unwrap().records.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_truncates_to_header() {
        let dir = tempdir("reset");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, FsyncPolicy::Never).unwrap();
        for seq in 1..=3 {
            w.append(&record(seq)).unwrap();
        }
        w.reset().unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), WAL_MAGIC.len() as u64);
        w.append(&record(4)).unwrap();
        let out = read_wal(&path).unwrap();
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].seq, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_policy_parses_cli_spellings() {
        assert_eq!(FsyncPolicy::parse("off"), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("interval"), Some(FsyncPolicy::EveryN(16)));
        assert_eq!(FsyncPolicy::parse("interval:4"), Some(FsyncPolicy::EveryN(4)));
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("interval:0"), None);
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }
}
