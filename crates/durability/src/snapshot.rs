//! Atomic session snapshots.
//!
//! A snapshot captures everything needed to rebuild an [`ExplainSession`]
//! from nothing: the two canonical relations *as of* delta `seq`, the
//! attribute matches, the full session configuration, whether the session
//! has produced a report, and the deadline its last run executed under.
//! Recovery loads the snapshot and replays the WAL suffix with
//! `seq > snapshot.seq`; the byte-identity-to-cold invariant of
//! `re_explain` guarantees one cold `explain` over the replayed relations
//! (under `last_deadline`) reproduces the pre-crash report exactly.
//!
//! Snapshots are written **atomically**: encode to `<file>.tmp` in the same
//! directory, flush + fsync, then `rename` over the target (POSIX rename is
//! atomic within a filesystem). A crash mid-write leaves the previous
//! snapshot untouched; a reader therefore sees either the old complete
//! snapshot or the new complete one, never a torn hybrid — and the trailing
//! CRC-32 rejects anything else (bit rot, partial rename on exotic
//! filesystems) as [`DurabilityError::Corrupt`].
//!
//! [`ExplainSession`]: explain3d_incremental::ExplainSession

use crate::codec::{
    crc32, dec_matches, dec_relation, dec_session_config, enc_matches, enc_relation,
    enc_session_config, Dec, Enc,
};
use crate::fault::{self, ShimHandle};
use crate::DurabilityError;
use explain3d_core::prelude::{AttributeMatches, CanonicalRelation};
use explain3d_incremental::SessionConfig;
use std::path::Path;
use std::time::Duration;

/// Magic bytes opening every snapshot file (format version 2 — carries
/// the retry-dedup window used for exactly-once client retries).
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"E3DSNAP2";

/// A complete durable image of one session at a delta sequence number.
#[derive(Debug, Clone)]
pub struct SessionSnapshot {
    /// Number of deltas applied to reach this state (0 = as created).
    pub seq: u64,
    /// Whether the session had produced a report (recovery re-runs the
    /// explain only when it had — a never-explained session recovers to
    /// the same `NoReport` state it crashed in).
    pub explained: bool,
    /// The scoped deadline override of the session's last run, if any —
    /// the node budget (and so the report) is a deterministic function
    /// of it, so recovery must re-run under the same one.
    pub last_deadline: Option<Duration>,
    /// Full session configuration (pipeline, MILP, mapping options).
    pub config: SessionConfig,
    /// The attribute matches the session was created with.
    pub matches: AttributeMatches,
    /// Left canonical relation, post-`seq` deltas.
    pub left: CanonicalRelation,
    /// Right canonical relation, post-`seq` deltas.
    pub right: CanonicalRelation,
    /// The retry-dedup window as of `seq`: recently applied
    /// `(request_id, seq)` pairs, oldest first, so a recovered session
    /// still answers retried deltas exactly once.
    pub retry_window: Vec<(String, u64)>,
}

fn encode(snapshot: &SessionSnapshot) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(snapshot.seq);
    e.bool(snapshot.explained);
    e.opt_duration(snapshot.last_deadline);
    enc_session_config(&mut e, &snapshot.config);
    enc_matches(&mut e, &snapshot.matches);
    enc_relation(&mut e, &snapshot.left);
    enc_relation(&mut e, &snapshot.right);
    e.usize(snapshot.retry_window.len());
    for (request_id, seq) in &snapshot.retry_window {
        e.str(request_id);
        e.u64(*seq);
    }
    e.into_bytes()
}

fn decode(payload: &[u8]) -> Result<SessionSnapshot, DurabilityError> {
    let mut d = Dec::new(payload);
    let inner = (|| -> Result<SessionSnapshot, crate::codec::CodecError> {
        let seq = d.u64()?;
        let explained = d.bool()?;
        let last_deadline = d.opt_duration()?;
        let config = dec_session_config(&mut d)?;
        let matches = dec_matches(&mut d)?;
        let left = dec_relation(&mut d)?;
        let right = dec_relation(&mut d)?;
        let window_len = d.len(9)?;
        let mut retry_window = Vec::with_capacity(window_len);
        for _ in 0..window_len {
            let request_id = d.str()?;
            let seq = d.u64()?;
            retry_window.push((request_id, seq));
        }
        Ok(SessionSnapshot {
            seq,
            explained,
            last_deadline,
            config,
            matches,
            left,
            right,
            retry_window,
        })
    })();
    let snapshot = inner.map_err(|e| DurabilityError::Corrupt(format!("snapshot payload: {e}")))?;
    if !d.finished() {
        return Err(DurabilityError::Corrupt("snapshot has trailing bytes".into()));
    }
    Ok(snapshot)
}

/// Writes `snapshot` to `path` atomically (tmp + fsync + rename + best-
/// effort directory fsync).
pub fn write_snapshot(path: &Path, snapshot: &SessionSnapshot) -> Result<(), DurabilityError> {
    write_snapshot_with(path, snapshot, &None)
}

/// [`write_snapshot`] with I/O routed through `shim`.
pub fn write_snapshot_with(
    path: &Path,
    snapshot: &SessionSnapshot,
    shim: &ShimHandle,
) -> Result<(), DurabilityError> {
    let payload = encode(snapshot);
    let mut bytes = Vec::with_capacity(payload.len() + 20);
    bytes.extend_from_slice(&SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&payload);
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());

    let tmp = path.with_extension("tmp");
    {
        let mut file = fault::open_write(shim, &tmp, true)?;
        fault::write_all(shim, &mut file, &tmp, &bytes)?;
        fault::fsync(shim, &file, &tmp)?;
    }
    fault::rename(shim, &tmp, path)?;
    // Persist the rename itself; failure here only risks power-loss
    // visibility of the *new* snapshot, never corruption of the old.
    if let Some(dir) = path.parent() {
        let _ = fault::dir_sync(shim, dir);
    }
    Ok(())
}

/// Loads a snapshot, validating magic, length, and checksum. `Ok(None)`
/// when the file does not exist; [`DurabilityError::Corrupt`] (never a
/// panic) when it exists but does not validate.
pub fn load_snapshot(path: &Path) -> Result<Option<SessionSnapshot>, DurabilityError> {
    load_snapshot_with(path, &None)
}

/// [`load_snapshot`] with I/O routed through `shim`.
pub fn load_snapshot_with(
    path: &Path,
    shim: &ShimHandle,
) -> Result<Option<SessionSnapshot>, DurabilityError> {
    let mut bytes = Vec::new();
    match fault::open_read(shim, path) {
        Ok(mut f) => {
            fault::read_to_end(shim, &mut f, path, &mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let header = SNAPSHOT_MAGIC.len() + 8;
    if bytes.len() < header || bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(DurabilityError::Corrupt("snapshot header".into()));
    }
    let len =
        u64::from_le_bytes(bytes[SNAPSHOT_MAGIC.len()..header].try_into().expect("8-byte slice"));
    let len = usize::try_from(len)
        .ok()
        .filter(|l| header + l + 4 == bytes.len())
        .ok_or_else(|| DurabilityError::Corrupt("snapshot length".into()))?;
    let payload = &bytes[header..header + len];
    let stored_crc = u32::from_le_bytes(bytes[header + len..].try_into().expect("4-byte slice"));
    if crc32(payload) != stored_crc {
        return Err(DurabilityError::Corrupt("snapshot checksum".into()));
    }
    decode(payload).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use explain3d_core::prelude::CanonicalTuple;
    use explain3d_relation::prelude::{Row, Schema, Value, ValueType};
    use std::path::PathBuf;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("e3d-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> SessionSnapshot {
        let rel = |name: &str, keys: &[&str]| CanonicalRelation {
            query_name: name.to_string(),
            schema: Schema::from_pairs(&[("k", ValueType::Str)]),
            key_attrs: vec!["k".to_string()],
            tuples: keys
                .iter()
                .enumerate()
                .map(|(i, k)| CanonicalTuple {
                    id: i,
                    key: vec![Value::str(*k)],
                    impact: i as f64 + 0.5,
                    members: vec![i],
                    representative: Row::new(vec![Value::str(*k)]),
                })
                .collect(),
            aggregate: None,
        };
        SessionSnapshot {
            seq: 42,
            explained: true,
            last_deadline: Some(Duration::from_millis(250)),
            config: SessionConfig::default(),
            matches: AttributeMatches::single_equivalent("k", "k"),
            left: rel("Q1", &["a", "b", "c"]),
            right: rel("Q2", &["a", "b"]),
            retry_window: vec![("req-40".to_string(), 40), ("req-42".to_string(), 42)],
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let dir = tempdir("roundtrip");
        let path = dir.join("current.snap");
        let snap = sample();
        write_snapshot(&path, &snap).unwrap();
        let back = load_snapshot(&path).unwrap().expect("snapshot present");
        assert_eq!(back.seq, 42);
        assert!(back.explained);
        assert_eq!(back.last_deadline, Some(Duration::from_millis(250)));
        assert_eq!(back.matches, snap.matches);
        assert_eq!(back.left, snap.left);
        assert_eq!(back.right, snap.right);
        assert_eq!(back.retry_window, snap.retry_window);
        // No stray tmp file remains after the rename.
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_snapshot_is_none_and_corruption_is_typed() {
        let dir = tempdir("corrupt");
        let path = dir.join("current.snap");
        assert!(load_snapshot(&path).unwrap().is_none());
        write_snapshot(&path, &sample()).unwrap();
        let good = std::fs::read(&path).unwrap();
        // Flip one payload byte: checksum must reject it.
        let mut bad = good.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(load_snapshot(&path), Err(DurabilityError::Corrupt(_))));
        // Truncations at every length are a typed error, never a panic.
        for cut in 0..good.len() {
            std::fs::write(&path, &good[..cut]).unwrap();
            assert!(matches!(load_snapshot(&path), Err(DurabilityError::Corrupt(_))));
        }
        // Restoring the original bytes loads again.
        std::fs::write(&path, &good).unwrap();
        assert!(load_snapshot(&path).unwrap().is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_replaces_atomically() {
        let dir = tempdir("rewrite");
        let path = dir.join("current.snap");
        let mut snap = sample();
        write_snapshot(&path, &snap).unwrap();
        snap.seq = 43;
        snap.left.tuples.pop();
        write_snapshot(&path, &snap).unwrap();
        let back = load_snapshot(&path).unwrap().unwrap();
        assert_eq!(back.seq, 43);
        assert_eq!(back.left.tuples.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
