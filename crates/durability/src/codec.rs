//! The binary codec shared by the WAL and the snapshot files.
//!
//! Everything durable is serialised through [`Enc`]/[`Dec`]: little-endian
//! fixed-width integers, floats as IEEE-754 bit patterns (so a round trip
//! is *bit*-identical — the fingerprint invariant tolerates no `-0.0` or
//! NaN-payload drift), and length-prefixed UTF-8 strings. Decoding never
//! panics on arbitrary bytes: every read is bounds-checked and every enum
//! tag validated, returning [`CodecError`] — the WAL reader turns those
//! into "the tail is torn, stop here" and the snapshot loader into a
//! corruption error.
//!
//! The integrity checksum is CRC-32 (IEEE, reflected polynomial
//! `0xEDB88320`), computed over the record payload.

use explain3d_core::prelude::{
    AttributeMatch, AttributeMatches, CanonicalRelation, CanonicalTuple, Explain3DConfig,
    MappingOptions, PartitioningStrategy, ProbabilityParams, SemanticRelation, Side,
};
use explain3d_incremental::{RelationDelta, SessionConfig, TupleOp};
use explain3d_linkage::StringMetric;
use explain3d_milp::prelude::{LpKernel, MilpConfig};
use explain3d_relation::prelude::{Aggregate, Column, Row, Schema, Value, ValueType};
use std::fmt;
use std::time::Duration;

/// A decode failure: the bytes do not describe a valid object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the object did.
    Truncated,
    /// A tag, length, or value was out of range.
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => f.write_str("truncated input"),
            CodecError::Invalid(what) => write!(f, "invalid encoding: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        // lint:allow(panic-free-wire): const-evaluated — `i < 256` is the
        // loop bound, and an out-of-range index here would be a compile
        // error, not a runtime panic on attacker bytes.
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        // lint:allow(panic-free-wire): the index is masked to 8 bits against
        // a 256-entry table — in range for every input byte.
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// A growing byte buffer with typed little-endian appends.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` widened to u64.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a little-endian i64.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an f64 as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends an optional length-prefixed string (presence byte + value).
    pub fn opt_str(&mut self, v: Option<&str>) {
        match v {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
        }
    }

    /// Appends an optional u64 (presence byte + value).
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }

    /// Appends an optional f64.
    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
        }
    }

    /// Appends an optional duration as whole nanoseconds (saturating at
    /// `u64::MAX` ≈ 584 years).
    pub fn opt_duration(&mut self, v: Option<Duration>) {
        self.opt_u64(v.map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)));
    }
}

/// A bounds-checked cursor over encoded bytes.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        let slice = self.buf.get(self.pos..end).ok_or(CodecError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    /// [`take`](Dec::take) with a compile-time length, as an array.
    fn take_n<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        self.take(N)?.try_into().map_err(|_| CodecError::Truncated)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take_n()?))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take_n()?))
    }

    /// Reads a u64 narrowed to usize.
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.u64()?).map_err(|_| CodecError::Invalid("usize overflow"))
    }

    /// Reads a little-endian i64.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take_n()?))
    }

    /// Reads an f64 from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool tag")),
        }
    }

    /// Reads a length-prefixed UTF-8 string. The length is validated
    /// against the remaining bytes *before* allocating, so a corrupt
    /// length cannot trigger a huge allocation.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let len = self.usize()?;
        if len > self.buf.len() - self.pos {
            return Err(CodecError::Truncated);
        }
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| CodecError::Invalid("non-UTF-8 string"))
    }

    /// Reads an optional length-prefixed string.
    pub fn opt_str(&mut self) -> Result<Option<String>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            _ => Err(CodecError::Invalid("option tag")),
        }
    }

    /// Reads an optional u64.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(CodecError::Invalid("option tag")),
        }
    }

    /// Reads an optional f64.
    pub fn opt_f64(&mut self) -> Result<Option<f64>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            _ => Err(CodecError::Invalid("option tag")),
        }
    }

    /// Reads an optional duration stored as whole nanoseconds.
    pub fn opt_duration(&mut self) -> Result<Option<Duration>, CodecError> {
        Ok(self.opt_u64()?.map(Duration::from_nanos))
    }

    /// Reads a collection length and validates it against a per-element
    /// lower bound so corrupt lengths fail fast instead of allocating.
    pub fn len(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let len = self.usize()?;
        let remaining = self.buf.len() - self.pos;
        if len > remaining / min_elem_bytes.max(1) {
            return Err(CodecError::Truncated);
        }
        Ok(len)
    }
}

// ---------------------------------------------------------------------------
// Typed encoders/decoders for the durable object graph.
// ---------------------------------------------------------------------------

fn enc_value(e: &mut Enc, v: &Value) {
    match v {
        Value::Null => e.u8(0),
        Value::Int(i) => {
            e.u8(1);
            e.i64(*i);
        }
        Value::Float(f) => {
            e.u8(2);
            e.f64(*f);
        }
        Value::Str(s) => {
            e.u8(3);
            e.str(s);
        }
        Value::Bool(b) => {
            e.u8(4);
            e.bool(*b);
        }
    }
}

fn dec_value(d: &mut Dec<'_>) -> Result<Value, CodecError> {
    Ok(match d.u8()? {
        0 => Value::Null,
        1 => Value::Int(d.i64()?),
        2 => Value::Float(d.f64()?),
        3 => Value::Str(d.str()?),
        4 => Value::Bool(d.bool()?),
        _ => return Err(CodecError::Invalid("value tag")),
    })
}

fn enc_value_type(e: &mut Enc, t: ValueType) {
    e.u8(match t {
        ValueType::Int => 0,
        ValueType::Float => 1,
        ValueType::Str => 2,
        ValueType::Bool => 3,
        ValueType::Unknown => 4,
    });
}

fn dec_value_type(d: &mut Dec<'_>) -> Result<ValueType, CodecError> {
    Ok(match d.u8()? {
        0 => ValueType::Int,
        1 => ValueType::Float,
        2 => ValueType::Str,
        3 => ValueType::Bool,
        4 => ValueType::Unknown,
        _ => return Err(CodecError::Invalid("value-type tag")),
    })
}

fn enc_values(e: &mut Enc, values: &[Value]) {
    e.usize(values.len());
    for v in values {
        enc_value(e, v);
    }
}

fn dec_values(d: &mut Dec<'_>) -> Result<Vec<Value>, CodecError> {
    let n = d.len(1)?;
    (0..n).map(|_| dec_value(d)).collect()
}

fn enc_strings(e: &mut Enc, strings: &[String]) {
    e.usize(strings.len());
    for s in strings {
        e.str(s);
    }
}

fn dec_strings(d: &mut Dec<'_>) -> Result<Vec<String>, CodecError> {
    let n = d.len(8)?;
    (0..n).map(|_| d.str()).collect()
}

fn enc_side(e: &mut Enc, side: Side) {
    e.u8(match side {
        Side::Left => 0,
        Side::Right => 1,
    });
}

fn dec_side(d: &mut Dec<'_>) -> Result<Side, CodecError> {
    Ok(match d.u8()? {
        0 => Side::Left,
        1 => Side::Right,
        _ => return Err(CodecError::Invalid("side tag")),
    })
}

fn enc_tuple(e: &mut Enc, t: &CanonicalTuple) {
    e.usize(t.id);
    enc_values(e, &t.key);
    e.f64(t.impact);
    e.usize(t.members.len());
    for &m in &t.members {
        e.usize(m);
    }
    enc_values(e, t.representative.values());
}

fn dec_tuple(d: &mut Dec<'_>) -> Result<CanonicalTuple, CodecError> {
    let id = d.usize()?;
    let key = dec_values(d)?;
    let impact = d.f64()?;
    let n = d.len(8)?;
    let members = (0..n).map(|_| d.usize()).collect::<Result<Vec<_>, _>>()?;
    let representative = Row::new(dec_values(d)?);
    Ok(CanonicalTuple { id, key, impact, members, representative })
}

/// Encodes a canonical relation (schema, key attributes, tuples, aggregate).
pub fn enc_relation(e: &mut Enc, r: &CanonicalRelation) {
    e.str(&r.query_name);
    e.usize(r.schema.columns().len());
    for c in r.schema.columns() {
        e.str(&c.name);
        enc_value_type(e, c.ty);
    }
    enc_strings(e, &r.key_attrs);
    match r.aggregate {
        None => e.u8(0),
        Some(Aggregate::Count) => e.u8(1),
        Some(Aggregate::Sum) => e.u8(2),
        Some(Aggregate::Avg) => e.u8(3),
        Some(Aggregate::Max) => e.u8(4),
        Some(Aggregate::Min) => e.u8(5),
    }
    e.usize(r.tuples.len());
    for t in &r.tuples {
        enc_tuple(e, t);
    }
}

/// Decodes a canonical relation.
pub fn dec_relation(d: &mut Dec<'_>) -> Result<CanonicalRelation, CodecError> {
    let query_name = d.str()?;
    let ncols = d.len(9)?;
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name = d.str()?;
        let ty = dec_value_type(d)?;
        columns.push(Column::new(name, ty));
    }
    let key_attrs = dec_strings(d)?;
    let aggregate = match d.u8()? {
        0 => None,
        1 => Some(Aggregate::Count),
        2 => Some(Aggregate::Sum),
        3 => Some(Aggregate::Avg),
        4 => Some(Aggregate::Max),
        5 => Some(Aggregate::Min),
        _ => return Err(CodecError::Invalid("aggregate tag")),
    };
    let ntuples = d.len(8)?;
    let tuples = (0..ntuples).map(|_| dec_tuple(d)).collect::<Result<Vec<_>, _>>()?;
    Ok(CanonicalRelation { query_name, schema: Schema::new(columns), key_attrs, tuples, aggregate })
}

/// Encodes the attribute matches.
pub fn enc_matches(e: &mut Enc, m: &AttributeMatches) {
    e.usize(m.matches().len());
    for am in m.matches() {
        enc_strings(e, &am.left);
        enc_strings(e, &am.right);
        e.u8(match am.relation {
            SemanticRelation::Equivalent => 0,
            SemanticRelation::LessGeneral => 1,
            SemanticRelation::MoreGeneral => 2,
        });
    }
}

/// Decodes the attribute matches.
pub fn dec_matches(d: &mut Dec<'_>) -> Result<AttributeMatches, CodecError> {
    let n = d.len(17)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let left = dec_strings(d)?;
        let right = dec_strings(d)?;
        let relation = match d.u8()? {
            0 => SemanticRelation::Equivalent,
            1 => SemanticRelation::LessGeneral,
            2 => SemanticRelation::MoreGeneral,
            _ => return Err(CodecError::Invalid("relation tag")),
        };
        out.push(AttributeMatch { left, right, relation });
    }
    Ok(AttributeMatches::new(out))
}

/// Encodes a session configuration.
///
/// Every field that changes the deterministic output of an explain run is
/// persisted bit-exactly. The one deliberate omission is
/// `MilpConfig::initial_basis`: a warm-start basis is transient solver
/// state, not configuration — a recovered session starts basis-cold exactly
/// like a fresh one (and the default `warm_start_dirty: false` sessions
/// never diverge on that anyway).
pub fn enc_session_config(e: &mut Enc, c: &SessionConfig) {
    let ProbabilityParams { alpha, beta, prob_floor } = c.explain.params;
    e.f64(alpha);
    e.f64(beta);
    e.f64(prob_floor);
    match c.explain.strategy {
        PartitioningStrategy::None => e.u8(0),
        PartitioningStrategy::ConnectedComponents => e.u8(1),
        PartitioningStrategy::Smart { batch_size } => {
            e.u8(2);
            e.usize(batch_size);
        }
    }
    let m = &c.explain.milp;
    e.usize(m.max_nodes);
    e.opt_duration(m.deadline);
    e.opt_duration(m.time_limit);
    e.f64(m.int_tolerance);
    e.f64(m.gap_tolerance);
    e.opt_f64(m.incumbent_hint);
    e.bool(m.export_basis);
    e.u8(match m.lp_kernel {
        LpKernel::Sparse => 0,
        LpKernel::Dense => 1,
    });
    e.bool(m.warm_start);
    e.bool(c.explain.parallel);
    e.opt_u64(c.explain.threads.map(|t| t as u64));
    e.u8(match c.mapping.metric {
        StringMetric::Jaccard => 0,
        StringMetric::Jaro => 1,
        StringMetric::JaroWinkler => 2,
    });
    e.f64(c.mapping.min_similarity);
    e.bool(c.mapping.use_blocking);
    e.usize(c.mapping.sample_every);
    e.bool(c.warm_start_dirty);
    e.opt_u64(c.score_cache_soft_cap.map(|v| v as u64));
}

/// Decodes a session configuration.
pub fn dec_session_config(d: &mut Dec<'_>) -> Result<SessionConfig, CodecError> {
    let alpha = d.f64()?;
    let beta = d.f64()?;
    let prob_floor = d.f64()?;
    let strategy = match d.u8()? {
        0 => PartitioningStrategy::None,
        1 => PartitioningStrategy::ConnectedComponents,
        2 => PartitioningStrategy::Smart { batch_size: d.usize()? },
        _ => return Err(CodecError::Invalid("strategy tag")),
    };
    let milp = MilpConfig {
        max_nodes: d.usize()?,
        deadline: d.opt_duration()?,
        time_limit: d.opt_duration()?,
        int_tolerance: d.f64()?,
        gap_tolerance: d.f64()?,
        incumbent_hint: d.opt_f64()?,
        initial_basis: None,
        export_basis: d.bool()?,
        lp_kernel: match d.u8()? {
            0 => LpKernel::Sparse,
            1 => LpKernel::Dense,
            _ => return Err(CodecError::Invalid("lp-kernel tag")),
        },
        warm_start: d.bool()?,
    };
    let parallel = d.bool()?;
    let threads = d
        .opt_u64()?
        .map(|t| usize::try_from(t).map_err(|_| CodecError::Invalid("threads overflow")))
        .transpose()?;
    let metric = match d.u8()? {
        0 => StringMetric::Jaccard,
        1 => StringMetric::Jaro,
        2 => StringMetric::JaroWinkler,
        _ => return Err(CodecError::Invalid("metric tag")),
    };
    let mapping = MappingOptions {
        metric,
        min_similarity: d.f64()?,
        use_blocking: d.bool()?,
        sample_every: d.usize()?,
    };
    let warm_start_dirty = d.bool()?;
    let score_cache_soft_cap = d
        .opt_u64()?
        .map(|v| usize::try_from(v).map_err(|_| CodecError::Invalid("cache cap overflow")))
        .transpose()?;
    Ok(SessionConfig {
        explain: Explain3DConfig {
            params: ProbabilityParams { alpha, beta, prob_floor },
            strategy,
            milp,
            parallel,
            threads,
        },
        mapping,
        warm_start_dirty,
        score_cache_soft_cap,
    })
}

/// Encodes a relation delta (its ordered tuple ops).
pub fn enc_delta(e: &mut Enc, delta: &RelationDelta) {
    e.usize(delta.ops.len());
    for op in &delta.ops {
        match op {
            TupleOp::Insert { side, tuple } => {
                e.u8(0);
                enc_side(e, *side);
                enc_tuple(e, tuple);
            }
            TupleOp::Update { side, index, tuple } => {
                e.u8(1);
                enc_side(e, *side);
                e.usize(*index);
                enc_tuple(e, tuple);
            }
            TupleOp::Delete { side, index } => {
                e.u8(2);
                enc_side(e, *side);
                e.usize(*index);
            }
        }
    }
}

/// Decodes a relation delta.
pub fn dec_delta(d: &mut Dec<'_>) -> Result<RelationDelta, CodecError> {
    let n = d.len(2)?;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        ops.push(match d.u8()? {
            0 => TupleOp::Insert { side: dec_side(d)?, tuple: dec_tuple(d)? },
            1 => TupleOp::Update { side: dec_side(d)?, index: d.usize()?, tuple: dec_tuple(d)? },
            2 => TupleOp::Delete { side: dec_side(d)?, index: d.usize()? },
            _ => return Err(CodecError::Invalid("op tag")),
        });
    }
    Ok(RelationDelta { ops })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(key: &str, impact: f64) -> CanonicalTuple {
        CanonicalTuple {
            id: 3,
            key: vec![Value::str(key), Value::Int(-7), Value::Float(f64::NAN)],
            impact,
            members: vec![1, 4, 9],
            representative: Row::new(vec![Value::Null, Value::Bool(true)]),
        }
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // The canonical IEEE test vector plus degenerate inputs.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn relation_round_trips_bit_exactly() {
        let rel = CanonicalRelation {
            query_name: "Q1".into(),
            schema: Schema::from_pairs(&[("k", ValueType::Str), ("n", ValueType::Float)]),
            key_attrs: vec!["k".into()],
            tuples: vec![tuple("a", -0.0), tuple("b", 2.5)],
            aggregate: Some(Aggregate::Avg),
        };
        let mut e = Enc::new();
        enc_relation(&mut e, &rel);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = dec_relation(&mut d).unwrap();
        assert!(d.finished());
        assert_eq!(back.query_name, rel.query_name);
        assert_eq!(back.key_attrs, rel.key_attrs);
        assert_eq!(back.aggregate, rel.aggregate);
        assert_eq!(back.schema, rel.schema);
        // Bit-exact float round trip, including -0.0 and NaN payloads.
        assert_eq!(back.tuples[0].impact.to_bits(), (-0.0f64).to_bits());
        for (a, b) in back.tuples.iter().zip(&rel.tuples) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.members, b.members);
            assert_eq!(a.representative, b.representative);
            assert_eq!(a.key.len(), b.key.len());
        }
        match (&back.tuples[0].key[2], &rel.tuples[0].key[2]) {
            (Value::Float(x), Value::Float(y)) => assert_eq!(x.to_bits(), y.to_bits()),
            _ => panic!("float key survived as a different type"),
        }
    }

    #[test]
    fn session_config_round_trips() {
        let mut config = SessionConfig::default();
        config.explain.strategy = PartitioningStrategy::Smart { batch_size: 77 };
        config.explain.milp.deadline = Some(Duration::from_millis(123));
        config.explain.milp.incumbent_hint = Some(-3.25);
        config.explain.threads = Some(3);
        config.mapping.metric = StringMetric::JaroWinkler;
        config.mapping.min_similarity = 0.42;
        config.warm_start_dirty = true;
        config.score_cache_soft_cap = Some(4096);
        let mut e = Enc::new();
        enc_session_config(&mut e, &config);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = dec_session_config(&mut d).unwrap();
        assert!(d.finished());
        assert_eq!(back.explain.strategy, config.explain.strategy);
        assert_eq!(back.explain.milp.deadline, config.explain.milp.deadline);
        assert_eq!(back.explain.milp.incumbent_hint, config.explain.milp.incumbent_hint);
        assert_eq!(back.explain.threads, config.explain.threads);
        assert_eq!(back.mapping.metric, config.mapping.metric);
        assert_eq!(back.mapping.min_similarity, config.mapping.min_similarity);
        assert_eq!(back.warm_start_dirty, config.warm_start_dirty);
        assert_eq!(back.score_cache_soft_cap, config.score_cache_soft_cap);
    }

    #[test]
    fn delta_round_trips() {
        let delta = RelationDelta::new()
            .insert(Side::Left, tuple("x", 1.0))
            .update(Side::Right, 5, tuple("y", 2.0))
            .delete(Side::Left, 0);
        let mut e = Enc::new();
        enc_delta(&mut e, &delta);
        let bytes = e.into_bytes();
        let back = dec_delta(&mut Dec::new(&bytes)).unwrap();
        assert_eq!(back.ops.len(), 3);
        assert!(matches!(back.ops[0], TupleOp::Insert { side: Side::Left, .. }));
        assert!(matches!(back.ops[1], TupleOp::Update { side: Side::Right, index: 5, .. }));
        assert!(matches!(back.ops[2], TupleOp::Delete { side: Side::Left, index: 0 }));
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoders() {
        // A deterministic xorshift fuzz sweep: every decoder must return
        // Ok or Err on garbage, never panic or over-allocate.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in 0..200usize {
            let bytes: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            let _ = dec_relation(&mut Dec::new(&bytes));
            let _ = dec_session_config(&mut Dec::new(&bytes));
            let _ = dec_delta(&mut Dec::new(&bytes));
            let _ = dec_matches(&mut Dec::new(&bytes));
        }
        // Truncation of a valid encoding at every prefix length is also
        // always a clean error.
        let mut e = Enc::new();
        enc_delta(&mut e, &RelationDelta::new().insert(Side::Right, tuple("t", 9.0)));
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            assert!(dec_delta(&mut Dec::new(&bytes[..cut])).is_err());
        }
    }

    #[test]
    fn matches_round_trip() {
        let m = AttributeMatches::new(vec![
            AttributeMatch::equivalent("a", "b"),
            AttributeMatch::less_general("p", "c"),
            AttributeMatch::equivalent_sets(vec!["x".into(), "y".into()], vec!["z".into()]),
        ]);
        let mut e = Enc::new();
        enc_matches(&mut e, &m);
        let bytes = e.into_bytes();
        let back = dec_matches(&mut Dec::new(&bytes)).unwrap();
        assert_eq!(back, m);
    }
}
