//! Deterministic fault injection for the durability I/O stack.
//!
//! Every filesystem operation the durability crate performs — open, read,
//! write, fsync, rename, directory sync — is routed through an [`IoShim`].
//! In production the shim handle is `None` and each call site degrades to
//! the plain `std::fs` call behind a single branch (zero measurable
//! overhead, verified by the `durability` bench lane). Under test, a
//! seeded [`FaultInjector`] implements the shim and executes a
//! [`FaultPlan`]: fail the Nth matching op, every-Nth, or each op with a
//! seeded probability, with typed failure modes:
//!
//! * [`FaultKind::Enospc`] / [`FaultKind::Eio`] — the op fails with the
//!   corresponding OS error (`ENOSPC` = errno 28, `EIO` = errno 5);
//! * [`FaultKind::ShortWrite`] — half the buffer reaches the file, then
//!   the write errors (a torn frame, exactly what a crash mid-`write`
//!   leaves behind);
//! * [`FaultKind::SilentFsyncLoss`] — fsync **reports success** without
//!   syncing. The injector tracks, per path, the length that has actually
//!   been made durable; [`FaultInjector::power_cut`] then truncates every
//!   tracked file back to its durable length, emulating power loss on a
//!   disk whose cache lied.
//!
//! Determinism: the same plan + seed produces the same fault schedule,
//! so every chaos-suite failure reproduces from its printed seed.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The operation classes the shim covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// Opening a file (for read or write, including create).
    Open,
    /// Reading file contents.
    Read,
    /// Writing bytes to an open file.
    Write,
    /// `fsync`/`fdatasync` on an open file.
    Fsync,
    /// Renaming a file (the snapshot commit point).
    Rename,
    /// Syncing a directory (persisting a rename).
    DirSync,
}

impl FaultOp {
    /// Parses the CLI spelling used by `--fault-ops`.
    pub fn parse(raw: &str) -> Option<FaultOp> {
        match raw {
            "open" => Some(FaultOp::Open),
            "read" => Some(FaultOp::Read),
            "write" => Some(FaultOp::Write),
            "fsync" => Some(FaultOp::Fsync),
            "rename" => Some(FaultOp::Rename),
            "dirsync" => Some(FaultOp::DirSync),
            _ => None,
        }
    }
}

/// How an injected fault manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The op fails with `ENOSPC` (disk full).
    Enospc,
    /// The op fails with `EIO` (generic I/O error; also the spelling for
    /// "rename failure" when attached to [`FaultOp::Rename`]).
    Eio,
    /// Half the buffer is written, then the write errors with `EIO` —
    /// a torn frame on disk. Only meaningful for [`FaultOp::Write`].
    ShortWrite,
    /// fsync returns `Ok` without syncing; the data is lost on the next
    /// [`FaultInjector::power_cut`]. Only meaningful for [`FaultOp::Fsync`].
    SilentFsyncLoss,
}

impl FaultKind {
    fn parse(raw: &str) -> Option<FaultKind> {
        match raw {
            "enospc" => Some(FaultKind::Enospc),
            "eio" => Some(FaultKind::Eio),
            "short" | "shortwrite" => Some(FaultKind::ShortWrite),
            "silentloss" | "fsyncloss" => Some(FaultKind::SilentFsyncLoss),
            _ => None,
        }
    }
}

/// When a rule fires, counted per [`FaultOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire exactly once, on the Nth (1-based) op of the rule's class.
    Nth(u64),
    /// Fire on every Nth op of the class.
    EveryNth(u64),
    /// Fire each matching op with probability `ppm` / 1_000_000, drawn
    /// from the plan's seeded generator.
    Chance(u32),
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy)]
pub struct FaultRule {
    /// The op class the rule matches.
    pub op: FaultOp,
    /// When it fires.
    pub trigger: Trigger,
    /// What happens when it fires.
    pub kind: FaultKind,
}

/// A complete seeded fault schedule.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for [`Trigger::Chance`] draws.
    pub seed: u64,
    /// The rules, checked in order; the first that fires wins.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Parses the CLI spelling: comma-separated `op:trigger:kind` terms
    /// where `trigger` is `nth=K`, `every=K`, or `ppm=P` (parts per
    /// million). Example: `write:nth=5:enospc,fsync:ppm=20000:silentloss`.
    pub fn parse(seed: u64, raw: &str) -> Option<FaultPlan> {
        let mut rules = Vec::new();
        for term in raw.split(',').filter(|t| !t.is_empty()) {
            let mut parts = term.split(':');
            let op = FaultOp::parse(parts.next()?)?;
            let trigger = parts.next()?;
            let kind = FaultKind::parse(parts.next()?)?;
            if parts.next().is_some() {
                return None;
            }
            let trigger = if let Some(n) = trigger.strip_prefix("nth=") {
                Trigger::Nth(n.parse().ok().filter(|&n| n > 0)?)
            } else if let Some(n) = trigger.strip_prefix("every=") {
                Trigger::EveryNth(n.parse().ok().filter(|&n| n > 0)?)
            } else if let Some(p) = trigger.strip_prefix("ppm=") {
                Trigger::Chance(p.parse().ok().filter(|&p| p <= 1_000_000)?)
            } else {
                return None;
            };
            rules.push(FaultRule { op, trigger, kind });
        }
        Some(FaultPlan { seed, rules })
    }
}

/// The I/O surface the durability crate performs all filesystem work
/// through. [`RealIo`] is the production passthrough; [`FaultInjector`]
/// interposes a [`FaultPlan`].
pub trait IoShim: Send + Sync + std::fmt::Debug {
    /// Opens `path` for reading.
    fn open_read(&self, path: &Path) -> std::io::Result<File>;
    /// Opens `path` for writing: `truncate` creates/truncates, otherwise
    /// the file must already exist.
    fn open_write(&self, path: &Path, truncate: bool) -> std::io::Result<File>;
    /// Reads the file to the end into `buf`.
    fn read_to_end(
        &self,
        file: &mut File,
        path: &Path,
        buf: &mut Vec<u8>,
    ) -> std::io::Result<usize>;
    /// Writes the whole buffer.
    fn write_all(&self, file: &mut File, path: &Path, buf: &[u8]) -> std::io::Result<()>;
    /// Forces file contents to stable storage.
    fn fsync(&self, file: &File, path: &Path) -> std::io::Result<()>;
    /// Renames `from` to `to` (atomic within a filesystem).
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()>;
    /// Best-effort directory sync, persisting a rename.
    fn dir_sync(&self, dir: &Path) -> std::io::Result<()>;
}

/// The production passthrough: every method is the plain `std::fs` call.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealIo;

impl IoShim for RealIo {
    fn open_read(&self, path: &Path) -> std::io::Result<File> {
        File::open(path)
    }
    fn open_write(&self, path: &Path, truncate: bool) -> std::io::Result<File> {
        OpenOptions::new().create(truncate).write(true).truncate(truncate).open(path)
    }
    fn read_to_end(
        &self,
        file: &mut File,
        _path: &Path,
        buf: &mut Vec<u8>,
    ) -> std::io::Result<usize> {
        file.read_to_end(buf)
    }
    fn write_all(&self, file: &mut File, _path: &Path, buf: &[u8]) -> std::io::Result<()> {
        file.write_all(buf)
    }
    fn fsync(&self, file: &File, _path: &Path) -> std::io::Result<()> {
        file.sync_data()
    }
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        std::fs::rename(from, to)
    }
    fn dir_sync(&self, dir: &Path) -> std::io::Result<()> {
        File::open(dir)?.sync_all()
    }
}

/// The optional injector handle threaded through [`DurabilityConfig`].
/// `None` (production) costs one branch per I/O call.
///
/// [`DurabilityConfig`]: crate::DurabilityConfig
pub type ShimHandle = Option<Arc<FaultInjector>>;

#[derive(Debug, Default)]
struct InjectorState {
    /// Per-op-class 1-based counters of ops *seen* (faulted or not).
    seen: HashMap<FaultOp, u64>,
    /// xorshift64* state for [`Trigger::Chance`] draws.
    rng: u64,
    /// Total faults fired so far.
    fired: u64,
    /// Per path: bytes known to be on stable storage (maintained across
    /// writes, fsyncs, and renames while the injector is attached).
    durable: HashMap<PathBuf, u64>,
}

impl InjectorState {
    fn next_rand(&mut self) -> u64 {
        // xorshift64* — deterministic, seedable, no external deps.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A seeded, thread-safe fault injector implementing [`IoShim`].
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    state: Mutex<InjectorState>,
    /// When false, no faults fire (durable-length tracking continues) —
    /// flipped by [`FaultInjector::disarm`] so a test can run clean
    /// recovery after a faulty episode.
    armed: std::sync::atomic::AtomicBool,
}

impl FaultInjector {
    /// An injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Arc<FaultInjector> {
        // splitmix64 scrambles the seed so adjacent seeds produce
        // unrelated schedules; xorshift state must also not be 0.
        let mut z = plan.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let rng = (z ^ (z >> 31)).max(1);
        Arc::new(FaultInjector {
            plan,
            state: Mutex::new(InjectorState { rng, ..InjectorState::default() }),
            armed: std::sync::atomic::AtomicBool::new(true),
        })
    }

    /// Stops firing faults (tracking continues).
    pub fn disarm(&self) {
        self.armed.store(false, std::sync::atomic::Ordering::SeqCst);
    }

    /// Resumes firing faults.
    pub fn arm(&self) {
        self.armed.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Total ops of `op`'s class observed so far.
    pub fn ops_seen(&self, op: FaultOp) -> u64 {
        *self.state.lock().expect("injector lock").seen.get(&op).unwrap_or(&0)
    }

    /// Total faults fired so far.
    pub fn faults_fired(&self) -> u64 {
        self.state.lock().expect("injector lock").fired
    }

    /// Emulates power loss: truncates every tracked file back to its last
    /// durably-synced length (never extends — a concurrent legitimate
    /// truncation wins). Returns the paths that actually lost bytes.
    pub fn power_cut(&self) -> Vec<PathBuf> {
        let state = self.state.lock().expect("injector lock");
        let mut lost = Vec::new();
        for (path, &durable_len) in &state.durable {
            let Ok(meta) = std::fs::metadata(path) else { continue };
            if meta.len() > durable_len {
                if let Ok(f) = OpenOptions::new().write(true).open(path) {
                    if f.set_len(durable_len).is_ok() {
                        lost.push(path.clone());
                    }
                }
            }
        }
        lost
    }

    /// Checks the plan for `op`; `Some(kind)` when a fault fires.
    fn check(&self, op: FaultOp) -> Option<FaultKind> {
        let mut state = self.state.lock().expect("injector lock");
        let count = state.seen.entry(op).or_insert(0);
        *count += 1;
        let count = *count;
        if !self.armed.load(std::sync::atomic::Ordering::SeqCst) {
            return None;
        }
        for rule in &self.plan.rules {
            if rule.op != op {
                continue;
            }
            let fires = match rule.trigger {
                Trigger::Nth(n) => count == n,
                Trigger::EveryNth(n) => count.is_multiple_of(n),
                Trigger::Chance(ppm) => (state.next_rand() % 1_000_000) < ppm as u64,
            };
            if fires {
                state.fired += 1;
                return Some(rule.kind);
            }
        }
        None
    }

    fn note_durable(&self, path: &Path, len: u64) {
        self.state.lock().expect("injector lock").durable.insert(path.to_path_buf(), len);
    }

    fn io_err(kind: FaultKind) -> std::io::Error {
        match kind {
            FaultKind::Enospc => std::io::Error::from_raw_os_error(28), // ENOSPC
            _ => std::io::Error::from_raw_os_error(5),                  // EIO
        }
    }
}

impl IoShim for FaultInjector {
    fn open_read(&self, path: &Path) -> std::io::Result<File> {
        if let Some(kind) = self.check(FaultOp::Open) {
            return Err(Self::io_err(kind));
        }
        File::open(path)
    }

    fn open_write(&self, path: &Path, truncate: bool) -> std::io::Result<File> {
        if let Some(kind) = self.check(FaultOp::Open) {
            return Err(Self::io_err(kind));
        }
        let file = RealIo.open_write(path, truncate)?;
        // Begin tracking durable length: a truncated/created file has no
        // durable bytes; an existing one is assumed durable as found
        // unless already tracked at a smaller length.
        let len = if truncate { 0 } else { file.metadata().map(|m| m.len()).unwrap_or(0) };
        let mut state = self.state.lock().expect("injector lock");
        let entry = state.durable.entry(path.to_path_buf()).or_insert(len);
        if truncate {
            *entry = 0;
        }
        Ok(file)
    }

    fn read_to_end(
        &self,
        file: &mut File,
        _path: &Path,
        buf: &mut Vec<u8>,
    ) -> std::io::Result<usize> {
        if let Some(kind) = self.check(FaultOp::Read) {
            return Err(Self::io_err(kind));
        }
        file.read_to_end(buf)
    }

    fn write_all(&self, file: &mut File, _path: &Path, buf: &[u8]) -> std::io::Result<()> {
        match self.check(FaultOp::Write) {
            None => file.write_all(buf),
            Some(FaultKind::ShortWrite) => {
                // Half the frame lands on disk, then the write "fails" —
                // the torn-tail shape read_wal repairs on recovery.
                let _ = file.write_all(&buf[..buf.len() / 2]);
                Err(Self::io_err(FaultKind::ShortWrite))
            }
            Some(kind) => Err(Self::io_err(kind)),
        }
    }

    fn fsync(&self, file: &File, path: &Path) -> std::io::Result<()> {
        match self.check(FaultOp::Fsync) {
            Some(FaultKind::SilentFsyncLoss) => {
                // The disk cache lies: report success, sync nothing, leave
                // the durable length where it was. power_cut() collects.
                Ok(())
            }
            Some(kind) => Err(Self::io_err(kind)),
            None => {
                file.sync_data()?;
                // Everything written so far is now genuinely durable.
                let len = file.metadata().map(|m| m.len()).unwrap_or(0);
                self.note_durable(path, len);
                Ok(())
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        if let Some(kind) = self.check(FaultOp::Rename) {
            return Err(Self::io_err(kind));
        }
        std::fs::rename(from, to)?;
        // Durable-length tracking follows the bytes to their new name.
        let mut state = self.state.lock().expect("injector lock");
        if let Some(len) = state.durable.remove(from) {
            state.durable.insert(to.to_path_buf(), len);
        }
        Ok(())
    }

    fn dir_sync(&self, dir: &Path) -> std::io::Result<()> {
        if let Some(kind) = self.check(FaultOp::DirSync) {
            return Err(Self::io_err(kind));
        }
        RealIo.dir_sync(dir)
    }
}

// ---------------------------------------------------------------------------
// Dispatch helpers: `None` is the production fast path (direct std call
// behind one branch), `Some` routes through the injector's IoShim impl.
// ---------------------------------------------------------------------------

pub(crate) fn open_read(shim: &ShimHandle, path: &Path) -> std::io::Result<File> {
    match shim {
        None => File::open(path),
        Some(s) => s.open_read(path),
    }
}

pub(crate) fn open_write(shim: &ShimHandle, path: &Path, truncate: bool) -> std::io::Result<File> {
    match shim {
        None => RealIo.open_write(path, truncate),
        Some(s) => s.open_write(path, truncate),
    }
}

pub(crate) fn read_to_end(
    shim: &ShimHandle,
    file: &mut File,
    path: &Path,
    buf: &mut Vec<u8>,
) -> std::io::Result<usize> {
    match shim {
        None => file.read_to_end(buf),
        Some(s) => s.read_to_end(file, path, buf),
    }
}

pub(crate) fn write_all(
    shim: &ShimHandle,
    file: &mut File,
    path: &Path,
    buf: &[u8],
) -> std::io::Result<()> {
    match shim {
        None => file.write_all(buf),
        Some(s) => s.write_all(file, path, buf),
    }
}

pub(crate) fn fsync(shim: &ShimHandle, file: &File, path: &Path) -> std::io::Result<()> {
    match shim {
        None => file.sync_data(),
        Some(s) => s.fsync(file, path),
    }
}

pub(crate) fn rename(shim: &ShimHandle, from: &Path, to: &Path) -> std::io::Result<()> {
    match shim {
        None => std::fs::rename(from, to),
        Some(s) => s.rename(from, to),
    }
}

pub(crate) fn dir_sync(shim: &ShimHandle, dir: &Path) -> std::io::Result<()> {
    match shim {
        None => RealIo.dir_sync(dir),
        Some(s) => s.dir_sync(dir),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("e3d-fault-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn plan_parses_cli_spellings() {
        let plan = FaultPlan::parse(7, "write:nth=5:enospc,fsync:ppm=20000:silentloss").unwrap();
        assert_eq!(plan.rules.len(), 2);
        assert_eq!(plan.rules[0].op, FaultOp::Write);
        assert_eq!(plan.rules[0].trigger, Trigger::Nth(5));
        assert_eq!(plan.rules[0].kind, FaultKind::Enospc);
        assert_eq!(plan.rules[1].trigger, Trigger::Chance(20_000));
        assert_eq!(plan.rules[1].kind, FaultKind::SilentFsyncLoss);
        assert!(FaultPlan::parse(0, "write:nth=0:eio").is_none(), "nth must be positive");
        assert!(FaultPlan::parse(0, "frobnicate:nth=1:eio").is_none());
        assert!(FaultPlan::parse(0, "write:sometimes:eio").is_none());
        assert!(FaultPlan::parse(0, "rename:every=2:eio").is_some());
        assert!(FaultPlan::parse(0, "").unwrap().rules.is_empty());
    }

    #[test]
    fn nth_write_fails_with_enospc_and_counter_advances() {
        let dir = tempdir("nth");
        let inj = FaultInjector::new(FaultPlan {
            seed: 1,
            rules: vec![FaultRule {
                op: FaultOp::Write,
                trigger: Trigger::Nth(3),
                kind: FaultKind::Enospc,
            }],
        });
        let path = dir.join("f");
        let mut file = inj.open_write(&path, true).unwrap();
        assert!(inj.write_all(&mut file, &path, b"one").is_ok());
        assert!(inj.write_all(&mut file, &path, b"two").is_ok());
        let err = inj.write_all(&mut file, &path, b"three").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28), "third write must be ENOSPC");
        assert!(inj.write_all(&mut file, &path, b"four").is_ok(), "Nth fires once");
        assert_eq!(inj.ops_seen(FaultOp::Write), 4);
        assert_eq!(inj.faults_fired(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_write_leaves_half_the_buffer() {
        let dir = tempdir("short");
        let inj = FaultInjector::new(FaultPlan {
            seed: 1,
            rules: vec![FaultRule {
                op: FaultOp::Write,
                trigger: Trigger::Nth(1),
                kind: FaultKind::ShortWrite,
            }],
        });
        let path = dir.join("f");
        let mut file = inj.open_write(&path, true).unwrap();
        let err = inj.write_all(&mut file, &path, b"12345678").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(5));
        assert_eq!(std::fs::read(&path).unwrap(), b"1234", "exactly half must land");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn silent_fsync_loss_is_collected_by_power_cut() {
        let dir = tempdir("powercut");
        let inj = FaultInjector::new(FaultPlan {
            seed: 1,
            rules: vec![FaultRule {
                op: FaultOp::Fsync,
                trigger: Trigger::Nth(2),
                kind: FaultKind::SilentFsyncLoss,
            }],
        });
        let path = dir.join("f");
        let mut file = inj.open_write(&path, true).unwrap();
        inj.write_all(&mut file, &path, b"durable!").unwrap();
        inj.fsync(&file, &path).unwrap(); // real sync: 8 bytes durable
        inj.write_all(&mut file, &path, b"lost").unwrap();
        inj.fsync(&file, &path).unwrap(); // lying sync: reports Ok
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 12);
        let lost = inj.power_cut();
        assert_eq!(lost, vec![path.clone()]);
        assert_eq!(std::fs::read(&path).unwrap(), b"durable!", "unsynced suffix must vanish");
        assert!(inj.power_cut().is_empty(), "second cut loses nothing further");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rename_transfers_durability_tracking_and_can_fail() {
        let dir = tempdir("rename");
        let inj = FaultInjector::new(FaultPlan {
            seed: 1,
            rules: vec![FaultRule {
                op: FaultOp::Rename,
                trigger: Trigger::Nth(2),
                kind: FaultKind::Eio,
            }],
        });
        let tmp = dir.join("t.tmp");
        let dst = dir.join("t.snap");
        let mut file = inj.open_write(&tmp, true).unwrap();
        inj.write_all(&mut file, &tmp, b"abcdef").unwrap();
        inj.fsync(&file, &tmp).unwrap();
        drop(file);
        inj.rename(&tmp, &dst).unwrap();
        // The durable length followed the rename: a power cut keeps dst.
        assert!(inj.power_cut().is_empty());
        assert_eq!(std::fs::read(&dst).unwrap(), b"abcdef");
        // Second rename fails per plan.
        std::fs::write(&tmp, b"x").unwrap();
        assert!(inj.rename(&tmp, &dst).is_err());
        assert_eq!(std::fs::read(&dst).unwrap(), b"abcdef", "failed rename must not replace");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chance_trigger_is_deterministic_per_seed_and_disarm_stops_faults() {
        let fire_pattern = |seed: u64, armed: bool| -> Vec<bool> {
            let inj = FaultInjector::new(FaultPlan {
                seed,
                rules: vec![FaultRule {
                    op: FaultOp::Write,
                    trigger: Trigger::Chance(500_000),
                    kind: FaultKind::Eio,
                }],
            });
            if !armed {
                inj.disarm();
            }
            (0..64).map(|_| inj.check(FaultOp::Write).is_some()).collect()
        };
        let a = fire_pattern(42, true);
        assert_eq!(a, fire_pattern(42, true), "same seed, same schedule");
        assert!(a.iter().any(|&f| f) && a.iter().any(|&f| !f), "p=0.5 fires sometimes");
        assert_ne!(a, fire_pattern(43, true), "different seed, different schedule");
        assert!(fire_pattern(42, false).iter().all(|&f| !f), "disarmed fires never");
    }

    #[test]
    fn real_io_round_trips() {
        let dir = tempdir("realio");
        let path = dir.join("f");
        let mut file = RealIo.open_write(&path, true).unwrap();
        RealIo.write_all(&mut file, &path, b"payload").unwrap();
        RealIo.fsync(&file, &path).unwrap();
        drop(file);
        let mut file = RealIo.open_read(&path).unwrap();
        let mut buf = Vec::new();
        RealIo.read_to_end(&mut file, &path, &mut buf).unwrap();
        assert_eq!(buf, b"payload");
        RealIo.rename(&path, &dir.join("g")).unwrap();
        RealIo.dir_sync(&dir).unwrap();
        assert!(RealIo.open_write(&dir.join("missing"), false).is_err(), "no-create mode");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
