//! # explain3d-durability
//!
//! Durable sessions for the Explain3D service: a per-session append-only
//! **delta WAL** plus periodic atomic **canonical-relation snapshots**,
//! with recovery = latest valid snapshot + replay of the checksummed log
//! suffix. Entirely `std` — no serialisation or checksum dependencies.
//!
//! * [`codec`] — the bounds-checked binary codec (and CRC-32) every
//!   durable byte goes through; decoding arbitrary bytes never panics;
//! * [`wal`] — length-prefixed, checksummed redo records of *applied*
//!   deltas, with a configurable [`FsyncPolicy`] (off / group-commit /
//!   always) and a reader that cleanly discards torn or corrupt tails;
//! * [`snapshot`] — tmp + fsync + rename atomic images of everything a
//!   session needs to rebuild (relations, config, matches, seq, the last
//!   run's deadline);
//! * [`store`] — the per-session directory layout and
//!   [`SessionStore::recover`], which replays the WAL suffix onto the
//!   snapshot relations.
//!
//! ## Why recovery is provably exact
//!
//! The WAL logs a delta only after the session's `re_explain` succeeded
//! (and before the caller is acknowledged), so the log is precisely the
//! session's applied-delta order. `re_explain` is byte-identical (equal
//! `report_fingerprint`) to a cold `explain` over the post-delta
//! relations under the same deadline-derived node budget — the invariant
//! PR 4/5 pinned. Recovery therefore rebuilds the relations by pure
//! `apply_delta` replay and runs **one** cold explain under the recorded
//! deadline: the result must equal the last report the crashed process
//! served. The service-layer torture tests assert exactly that, under
//! randomized `kill -9`.

#![warn(missing_docs)]

pub mod codec;
pub mod fault;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use fault::{
    FaultInjector, FaultKind, FaultOp, FaultPlan, FaultRule, IoShim, RealIo, ShimHandle, Trigger,
};
pub use snapshot::{load_snapshot, write_snapshot, SessionSnapshot};
pub use store::{
    session_dirname, DurabilityConfig, RecoveredSession, SessionStore, QUARANTINE_DIR,
    SNAPSHOT_FILE, WAL_FILE,
};
pub use wal::{read_wal, FsyncPolicy, WalReadOutcome, WalRecord, WalWriter};

use std::fmt;

/// A durability failure: an I/O error or on-disk state that fails
/// validation. Torn WAL tails are **not** errors — they are expected
/// crash residue and handled by truncation.
#[derive(Debug)]
pub enum DurabilityError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// On-disk bytes exist but do not validate (bad magic, checksum, or
    /// a logged delta that no longer applies).
    Corrupt(String),
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io(e) => write!(f, "durability I/O error: {e}"),
            DurabilityError::Corrupt(what) => write!(f, "durable state corrupt: {what}"),
        }
    }
}

impl From<std::io::Error> for DurabilityError {
    fn from(e: std::io::Error) -> Self {
        DurabilityError::Io(e)
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurabilityError::Io(e) => Some(e),
            DurabilityError::Corrupt(_) => None,
        }
    }
}
