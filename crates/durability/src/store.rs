//! The per-session on-disk store: directory layout, naming, and recovery.
//!
//! ## Layout
//!
//! ```text
//! <data dir>/
//!   n-<name>/           one directory per session (see [`session_dirname`])
//!     current.snap      latest atomic snapshot (written at create, every
//!                       snapshot-interval deltas, on spill, and on drain)
//!     wal.log           delta records with seq > snapshot.seq (plus,
//!                       transiently, records the snapshot already covers —
//!                       recovery skips them by sequence number)
//! ```
//!
//! ## Recovery = snapshot + suffix replay
//!
//! [`SessionStore::recover`] loads the snapshot, applies every WAL record
//! with `seq > snapshot.seq` to the snapshot relations via
//! [`apply_delta`], and returns the rebuilt state plus a [`WalWriter`]
//! positioned after the last valid record (a torn tail having been
//! truncated away). The caller rebuilds the `ExplainSession` and — when
//! the session had explained — runs one cold `explain` under the recorded
//! `last_deadline`; byte-identity-to-cold makes that report equal the one
//! the crashed process last served.
//!
//! The snapshot/WAL ordering is crash-safe in both directions: a snapshot
//! at seq `S` renamed into place before the WAL is reset leaves records
//! `≤ S` in the log, which replay skips by sequence number; a crash before
//! the rename leaves the old snapshot plus a complete log, which replays
//! in full.

use crate::snapshot::{load_snapshot, write_snapshot, SessionSnapshot};
use crate::wal::{read_wal, FsyncPolicy, WalWriter};
use crate::DurabilityError;
use explain3d_incremental::apply_delta;
use std::path::PathBuf;
use std::time::Duration;

/// File name of the snapshot inside a session directory.
pub const SNAPSHOT_FILE: &str = "current.snap";
/// File name of the WAL inside a session directory.
pub const WAL_FILE: &str = "wal.log";

/// Durability settings a registry is configured with.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Root data directory (one subdirectory per session).
    pub dir: PathBuf,
    /// When appended WAL records reach stable storage.
    pub fsync: FsyncPolicy,
    /// Write a fresh snapshot (and reset the WAL) every N logged deltas.
    pub snapshot_every: u64,
}

impl DurabilityConfig {
    /// Defaults: group-commit fsync every 16 records, snapshot every 64
    /// deltas.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig { dir: dir.into(), fsync: FsyncPolicy::EveryN(16), snapshot_every: 64 }
    }
}

/// The FNV-1a 64-bit hash (seedable for the two-hash directory fallback).
fn fnv64(bytes: &[u8], seed: u64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Maps a session name to a filesystem-safe directory name. Names made of
/// `[A-Za-z0-9._-]` (the overwhelmingly common case) map reversibly to
/// `n-<name>`; anything else — or anything long enough to threaten the
/// 255-byte `NAME_MAX` — maps to a fixed-width double-FNV digest under the
/// `h-` prefix (not reversible, vanishingly unlikely to collide, and
/// deterministic so lookups always find the same directory).
pub fn session_dirname(name: &str) -> String {
    let safe = !name.is_empty()
        && name.len() <= 100
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'));
    if safe {
        format!("n-{name}")
    } else {
        format!("h-{:016x}{:016x}", fnv64(name.as_bytes(), 0), fnv64(name.as_bytes(), !0))
    }
}

/// A session rebuilt from disk, relations advanced past the WAL suffix.
#[derive(Debug)]
pub struct RecoveredSession {
    /// The snapshot with `left`/`right` mutated to the post-replay state
    /// and `seq`/`last_deadline`/`explained` advanced accordingly.
    pub snapshot: SessionSnapshot,
    /// How many WAL records were replayed on top of the snapshot.
    pub replayed: u64,
    /// True when a torn or corrupt WAL tail was discarded (and truncated).
    pub tail_discarded: bool,
}

/// Handle to the root data directory. Cheap to clone; all state is paths.
#[derive(Debug, Clone)]
pub struct SessionStore {
    config: DurabilityConfig,
}

impl SessionStore {
    /// Opens (creating if needed) the root directory. Creation failures
    /// are deferred to the first per-session operation so construction
    /// stays infallible for registry embedding.
    pub fn open(config: DurabilityConfig) -> SessionStore {
        let _ = std::fs::create_dir_all(&config.dir);
        SessionStore { config }
    }

    /// The configuration this store was opened with.
    pub fn config(&self) -> &DurabilityConfig {
        &self.config
    }

    fn session_dir(&self, name: &str) -> PathBuf {
        self.config.dir.join(session_dirname(name))
    }

    /// True when the session has durable state on disk.
    pub fn contains(&self, name: &str) -> bool {
        self.session_dir(name).join(SNAPSHOT_FILE).exists()
    }

    /// Session names recoverable from disk (reversibly-named directories
    /// only; `h-` digest directories are found by lookup, not listing).
    pub fn list_names(&self) -> Vec<String> {
        let Ok(entries) = std::fs::read_dir(&self.config.dir) else {
            return Vec::new();
        };
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter_map(|d| d.strip_prefix("n-").map(str::to_string))
            .filter(|n| self.contains(n))
            .collect();
        names.sort();
        names
    }

    /// Creates the session directory, writes the seq-0 snapshot, and opens
    /// a fresh WAL. Fails if the session already has durable state.
    pub fn create_session(
        &self,
        name: &str,
        snapshot: &SessionSnapshot,
    ) -> Result<WalWriter, DurabilityError> {
        let dir = self.session_dir(name);
        if dir.join(SNAPSHOT_FILE).exists() {
            return Err(DurabilityError::Corrupt(format!(
                "session {name:?} already has durable state"
            )));
        }
        std::fs::create_dir_all(&dir)?;
        write_snapshot(&dir.join(SNAPSHOT_FILE), snapshot)?;
        Ok(WalWriter::create(&dir.join(WAL_FILE), self.config.fsync)?)
    }

    /// Atomically replaces the session's snapshot. The caller resets the
    /// WAL afterwards (crash between the two is safe — replay skips
    /// records the new snapshot already covers).
    pub fn write_snapshot(
        &self,
        name: &str,
        snapshot: &SessionSnapshot,
    ) -> Result<(), DurabilityError> {
        let dir = self.session_dir(name);
        std::fs::create_dir_all(&dir)?;
        write_snapshot(&dir.join(SNAPSHOT_FILE), snapshot)
    }

    /// Deletes the session's durable state (no-op when absent).
    pub fn remove(&self, name: &str) -> Result<(), DurabilityError> {
        match std::fs::remove_dir_all(self.session_dir(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Rebuilds a session's relation state from its snapshot plus the
    /// valid WAL suffix, returning the state and a writer positioned for
    /// further appends. `Ok(None)` when the session has no durable state.
    pub fn recover(
        &self,
        name: &str,
    ) -> Result<Option<(RecoveredSession, WalWriter)>, DurabilityError> {
        let dir = self.session_dir(name);
        let Some(mut snapshot) = load_snapshot(&dir.join(SNAPSHOT_FILE))? else {
            return Ok(None);
        };
        let wal_path = dir.join(WAL_FILE);
        let outcome = read_wal(&wal_path)?;
        let mut seq = snapshot.seq;
        let mut last_deadline: Option<Duration> = snapshot.last_deadline;
        let mut explained = snapshot.explained;
        let mut replayed = 0u64;
        for record in &outcome.records {
            if record.seq <= snapshot.seq {
                continue; // covered by the snapshot (crash between rename and WAL reset)
            }
            if record.seq != seq + 1 {
                return Err(DurabilityError::Corrupt(format!(
                    "session {name:?}: WAL gap (have seq {seq}, next record is {})",
                    record.seq
                )));
            }
            apply_delta(&mut snapshot.left, &mut snapshot.right, &record.delta).map_err(|e| {
                DurabilityError::Corrupt(format!(
                    "session {name:?}: logged delta {} no longer applies: {e}",
                    record.seq
                ))
            })?;
            seq = record.seq;
            last_deadline = record.deadline;
            explained = true; // a logged delta implies a completed re_explain
            replayed += 1;
        }
        snapshot.seq = seq;
        snapshot.last_deadline = last_deadline;
        snapshot.explained = explained;
        let writer = WalWriter::open_end(&wal_path, self.config.fsync, outcome.valid_len)?;
        Ok(Some((
            RecoveredSession { snapshot, replayed, tail_discarded: outcome.tail_discarded },
            writer,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::WalRecord;
    use explain3d_core::prelude::{AttributeMatches, CanonicalRelation, CanonicalTuple, Side};
    use explain3d_incremental::{RelationDelta, SessionConfig};
    use explain3d_relation::prelude::{Row, Schema, Value, ValueType};

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("e3d-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn rel(name: &str, keys: &[&str]) -> CanonicalRelation {
        CanonicalRelation {
            query_name: name.to_string(),
            schema: Schema::from_pairs(&[("k", ValueType::Str)]),
            key_attrs: vec!["k".to_string()],
            tuples: keys
                .iter()
                .enumerate()
                .map(|(i, k)| CanonicalTuple {
                    id: i,
                    key: vec![Value::str(*k)],
                    impact: 1.0,
                    members: vec![i],
                    representative: Row::new(vec![Value::str(*k)]),
                })
                .collect(),
            aggregate: None,
        }
    }

    fn tuple(key: &str, impact: f64) -> CanonicalTuple {
        CanonicalTuple {
            id: 0,
            key: vec![Value::str(key)],
            impact,
            members: vec![],
            representative: Row::new(vec![Value::str(key)]),
        }
    }

    fn genesis(left: CanonicalRelation, right: CanonicalRelation) -> SessionSnapshot {
        SessionSnapshot {
            seq: 0,
            explained: false,
            last_deadline: None,
            config: SessionConfig::default(),
            matches: AttributeMatches::single_equivalent("k", "k"),
            left,
            right,
        }
    }

    #[test]
    fn dirnames_are_safe_and_deterministic() {
        assert_eq!(session_dirname("demo-1.2_x"), "n-demo-1.2_x");
        let weird = session_dirname("a/b c\u{1F600}");
        assert!(weird.starts_with("h-") && weird.len() == 34);
        assert_eq!(weird, session_dirname("a/b c\u{1F600}"), "lookups must be stable");
        assert_ne!(session_dirname("x"), session_dirname("y"));
        let long = "z".repeat(128);
        assert!(session_dirname(&long).len() <= 255);
        // A hash dirname can never shadow a reversible one.
        assert!(!session_dirname(&long).starts_with("n-"));
    }

    #[test]
    fn create_log_recover_replays_the_suffix() {
        let dir = tempdir("recover");
        let store = SessionStore::open(DurabilityConfig::new(&dir));
        let mut wal =
            store.create_session("s", &genesis(rel("Q1", &["a", "b"]), rel("Q2", &["a"]))).unwrap();
        assert!(store.contains("s"));
        // Log two applied deltas.
        let d1 = RelationDelta::new().insert(Side::Right, tuple("b", 2.0));
        let d2 = RelationDelta::new().delete(Side::Left, 0);
        wal.append(&WalRecord { seq: 1, deadline: None, delta: d1.clone() }).unwrap();
        wal.append(&WalRecord {
            seq: 2,
            deadline: Some(Duration::from_millis(100)),
            delta: d2.clone(),
        })
        .unwrap();
        wal.sync().unwrap();
        drop(wal);

        let (recovered, _writer) = store.recover("s").unwrap().expect("session on disk");
        assert_eq!(recovered.replayed, 2);
        assert!(!recovered.tail_discarded);
        let snap = &recovered.snapshot;
        assert_eq!(snap.seq, 2);
        assert!(snap.explained);
        assert_eq!(snap.last_deadline, Some(Duration::from_millis(100)));
        // The replayed relations equal a direct application of the deltas.
        let (mut left, mut right) = (rel("Q1", &["a", "b"]), rel("Q2", &["a"]));
        apply_delta(&mut left, &mut right, &d1).unwrap();
        apply_delta(&mut left, &mut right, &d2).unwrap();
        assert_eq!(snap.left, left);
        assert_eq!(snap.right, right);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_then_stale_wal_records_are_skipped() {
        let dir = tempdir("skip");
        let store = SessionStore::open(DurabilityConfig::new(&dir));
        let mut wal =
            store.create_session("s", &genesis(rel("Q1", &["a"]), rel("Q2", &[]))).unwrap();
        let d1 = RelationDelta::new().insert(Side::Right, tuple("a", 1.0));
        wal.append(&WalRecord { seq: 1, deadline: None, delta: d1.clone() }).unwrap();
        wal.sync().unwrap();
        // Snapshot at seq 1 *without* resetting the WAL — the crash window
        // between snapshot rename and WAL reset.
        let (mut left, mut right) = (rel("Q1", &["a"]), rel("Q2", &[]));
        apply_delta(&mut left, &mut right, &d1).unwrap();
        let snap = SessionSnapshot {
            seq: 1,
            explained: true,
            last_deadline: None,
            config: SessionConfig::default(),
            matches: AttributeMatches::single_equivalent("k", "k"),
            left: left.clone(),
            right: right.clone(),
        };
        store.write_snapshot("s", &snap).unwrap();
        drop(wal);
        let (recovered, _w) = store.recover("s").unwrap().unwrap();
        assert_eq!(recovered.replayed, 0, "record ≤ snapshot.seq must be skipped");
        assert_eq!(recovered.snapshot.seq, 1);
        assert_eq!(recovered.snapshot.left, left);
        assert_eq!(recovered.snapshot.right, right);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn double_create_conflicts_and_remove_is_idempotent() {
        let dir = tempdir("conflict");
        let store = SessionStore::open(DurabilityConfig::new(&dir));
        let g = genesis(rel("Q1", &["a"]), rel("Q2", &["a"]));
        let _w = store.create_session("s", &g).unwrap();
        assert!(store.create_session("s", &g).is_err());
        store.remove("s").unwrap();
        assert!(!store.contains("s"));
        store.remove("s").unwrap(); // absent: still Ok
        assert!(store.recover("s").unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn list_names_reports_reversible_sessions() {
        let dir = tempdir("list");
        let store = SessionStore::open(DurabilityConfig::new(&dir));
        let g = genesis(rel("Q1", &["a"]), rel("Q2", &["a"]));
        let _a = store.create_session("beta", &g).unwrap();
        let _b = store.create_session("alpha", &g).unwrap();
        assert_eq!(store.list_names(), vec!["alpha".to_string(), "beta".to_string()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
