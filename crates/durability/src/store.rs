//! The per-session on-disk store: directory layout, naming, and recovery.
//!
//! ## Layout
//!
//! ```text
//! <data dir>/
//!   n-<name>/           one directory per session (see [`session_dirname`])
//!     current.snap      latest atomic snapshot (written at create, every
//!                       snapshot-interval deltas, on spill, and on drain)
//!     wal.log           delta records with seq > snapshot.seq (plus,
//!                       transiently, records the snapshot already covers —
//!                       recovery skips them by sequence number)
//! ```
//!
//! ## Recovery = snapshot + suffix replay
//!
//! [`SessionStore::recover`] loads the snapshot, applies every WAL record
//! with `seq > snapshot.seq` to the snapshot relations via
//! [`apply_delta`], and returns the rebuilt state plus a [`WalWriter`]
//! positioned after the last valid record (a torn tail having been
//! truncated away). The caller rebuilds the `ExplainSession` and — when
//! the session had explained — runs one cold `explain` under the recorded
//! `last_deadline`; byte-identity-to-cold makes that report equal the one
//! the crashed process last served.
//!
//! The snapshot/WAL ordering is crash-safe in both directions: a snapshot
//! at seq `S` renamed into place before the WAL is reset leaves records
//! `≤ S` in the log, which replay skips by sequence number; a crash before
//! the rename leaves the old snapshot plus a complete log, which replays
//! in full.

use crate::fault::ShimHandle;
use crate::snapshot::{load_snapshot_with, write_snapshot_with, SessionSnapshot};
use crate::wal::{read_wal_with, FsyncPolicy, WalWriter};
use crate::DurabilityError;
use explain3d_incremental::apply_delta;
use std::path::PathBuf;
use std::time::Duration;

/// File name of the snapshot inside a session directory.
pub const SNAPSHOT_FILE: &str = "current.snap";
/// File name of the WAL inside a session directory.
pub const WAL_FILE: &str = "wal.log";
/// Directory (under the data dir) where stale session state is renamed
/// aside instead of deleted when a session degrades.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Durability settings a registry is configured with.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Root data directory (one subdirectory per session).
    pub dir: PathBuf,
    /// When appended WAL records reach stable storage.
    pub fsync: FsyncPolicy,
    /// Write a fresh snapshot (and reset the WAL) every N logged deltas.
    pub snapshot_every: u64,
    /// Optional fault-injection shim every I/O call routes through.
    /// `None` in production: each call site is the plain `std::fs` call
    /// behind a single branch.
    pub shim: ShimHandle,
}

impl DurabilityConfig {
    /// Defaults: group-commit fsync every 16 records, snapshot every 64
    /// deltas, no fault injection.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::EveryN(16),
            snapshot_every: 64,
            shim: None,
        }
    }
}

/// The FNV-1a 64-bit hash (seedable for the two-hash directory fallback).
fn fnv64(bytes: &[u8], seed: u64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Maps a session name to a filesystem-safe directory name. Names made of
/// `[A-Za-z0-9._-]` (the overwhelmingly common case) map reversibly to
/// `n-<name>`; anything else — or anything long enough to threaten the
/// 255-byte `NAME_MAX` — maps to a fixed-width double-FNV digest under the
/// `h-` prefix (not reversible, vanishingly unlikely to collide, and
/// deterministic so lookups always find the same directory).
pub fn session_dirname(name: &str) -> String {
    let safe = !name.is_empty()
        && name.len() <= 100
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'));
    if safe {
        format!("n-{name}")
    } else {
        format!("h-{:016x}{:016x}", fnv64(name.as_bytes(), 0), fnv64(name.as_bytes(), !0))
    }
}

/// A session rebuilt from disk, relations advanced past the WAL suffix.
#[derive(Debug)]
pub struct RecoveredSession {
    /// The snapshot with `left`/`right` mutated to the post-replay state
    /// and `seq`/`last_deadline`/`explained` advanced accordingly.
    pub snapshot: SessionSnapshot,
    /// How many WAL records were replayed on top of the snapshot.
    pub replayed: u64,
    /// True when a torn or corrupt WAL tail was discarded (and truncated).
    pub tail_discarded: bool,
}

/// Handle to the root data directory. Cheap to clone; all state is paths.
#[derive(Debug, Clone)]
pub struct SessionStore {
    config: DurabilityConfig,
}

impl SessionStore {
    /// Opens (creating if needed) the root directory and garbage-collects
    /// stale `*.tmp` snapshot files a crash mid-`snapshot()` left behind
    /// (the atomic-rename protocol makes them dead weight the moment the
    /// writing process is gone). Creation failures are deferred to the
    /// first per-session operation so construction stays infallible for
    /// registry embedding.
    pub fn open(config: DurabilityConfig) -> SessionStore {
        let _ = std::fs::create_dir_all(&config.dir);
        let store = SessionStore { config };
        store.collect_stale_tmp();
        store
    }

    /// Removes `*.tmp` files from every session directory (best-effort;
    /// the count is returned for tests and logs).
    pub fn collect_stale_tmp(&self) -> usize {
        let Ok(entries) = std::fs::read_dir(&self.config.dir) else {
            return 0;
        };
        let mut removed = 0;
        for session_dir in entries.filter_map(|e| e.ok()).map(|e| e.path()) {
            if !session_dir.is_dir() {
                continue;
            }
            let Ok(files) = std::fs::read_dir(&session_dir) else { continue };
            for file in files.filter_map(|e| e.ok()).map(|e| e.path()) {
                if file.extension().is_some_and(|ext| ext == "tmp")
                    && std::fs::remove_file(&file).is_ok()
                {
                    removed += 1;
                }
            }
        }
        removed
    }

    /// The configuration this store was opened with.
    pub fn config(&self) -> &DurabilityConfig {
        &self.config
    }

    fn session_dir(&self, name: &str) -> PathBuf {
        self.config.dir.join(session_dirname(name))
    }

    /// True when the session has durable state on disk.
    pub fn contains(&self, name: &str) -> bool {
        self.session_dir(name).join(SNAPSHOT_FILE).exists()
    }

    /// Session names recoverable from disk (reversibly-named directories
    /// only; `h-` digest directories are found by lookup, not listing).
    pub fn list_names(&self) -> Vec<String> {
        let Ok(entries) = std::fs::read_dir(&self.config.dir) else {
            return Vec::new();
        };
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter_map(|d| d.strip_prefix("n-").map(str::to_string))
            .filter(|n| self.contains(n))
            .collect();
        names.sort();
        names
    }

    /// Creates the session directory, writes the seq-0 snapshot, and opens
    /// a fresh WAL. Fails if the session already has durable state.
    pub fn create_session(
        &self,
        name: &str,
        snapshot: &SessionSnapshot,
    ) -> Result<WalWriter, DurabilityError> {
        let dir = self.session_dir(name);
        if dir.join(SNAPSHOT_FILE).exists() {
            return Err(DurabilityError::Corrupt(format!(
                "session {name:?} already has durable state"
            )));
        }
        std::fs::create_dir_all(&dir)?;
        write_snapshot_with(&dir.join(SNAPSHOT_FILE), snapshot, &self.config.shim)?;
        Ok(WalWriter::create_with(&dir.join(WAL_FILE), self.config.fsync, &self.config.shim)?)
    }

    /// Atomically replaces the session's snapshot. The caller resets the
    /// WAL afterwards (crash between the two is safe — replay skips
    /// records the new snapshot already covers).
    pub fn write_snapshot(
        &self,
        name: &str,
        snapshot: &SessionSnapshot,
    ) -> Result<(), DurabilityError> {
        let dir = self.session_dir(name);
        std::fs::create_dir_all(&dir)?;
        write_snapshot_with(&dir.join(SNAPSHOT_FILE), snapshot, &self.config.shim)
    }

    /// Re-attaches a degraded session: writes `snapshot` atomically over
    /// whatever snapshot exists (creating the directory if needed), then
    /// truncates a fresh WAL. The write order makes every crash point
    /// recoverable: old snapshot + old WAL (the durable acked prefix),
    /// new snapshot + old WAL (whose records all have `seq <=
    /// snapshot.seq` and are skipped by replay), or new snapshot + fresh
    /// WAL. Unlike [`SessionStore::create_session`] this never refuses an
    /// existing snapshot — superseding the stale image is the point.
    pub fn reattach(
        &self,
        name: &str,
        snapshot: &SessionSnapshot,
    ) -> Result<WalWriter, DurabilityError> {
        let dir = self.session_dir(name);
        std::fs::create_dir_all(&dir)?;
        write_snapshot_with(&dir.join(SNAPSHOT_FILE), snapshot, &self.config.shim)?;
        Ok(WalWriter::create_with(&dir.join(WAL_FILE), self.config.fsync, &self.config.shim)?)
    }

    /// Deletes the session's durable state (no-op when absent).
    pub fn remove(&self, name: &str) -> Result<(), DurabilityError> {
        match std::fs::remove_dir_all(self.session_dir(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Renames the session's durable state aside into the quarantine
    /// directory instead of deleting it — the degraded-mode path: stale
    /// state must never be recovered as truth, but it is evidence, not
    /// garbage. Returns the quarantine path, or `Ok(None)` when the
    /// session had no durable state.
    pub fn quarantine(&self, name: &str) -> Result<Option<PathBuf>, DurabilityError> {
        let dir = self.session_dir(name);
        if !dir.exists() {
            return Ok(None);
        }
        let qroot = self.config.dir.join(QUARANTINE_DIR);
        std::fs::create_dir_all(&qroot)?;
        let base = session_dirname(name);
        // First free numeric suffix keeps repeated quarantines of the
        // same name side by side instead of overwriting each other.
        for k in 0..u32::MAX {
            let target = qroot.join(format!("{base}.{k}"));
            if !target.exists() {
                std::fs::rename(&dir, &target)?;
                return Ok(Some(target));
            }
        }
        Err(DurabilityError::Corrupt(format!("no free quarantine slot for {name:?}")))
    }

    /// Rebuilds a session's relation state from its snapshot plus the
    /// valid WAL suffix, returning the state and a writer positioned for
    /// further appends. `Ok(None)` when the session has no durable state.
    pub fn recover(
        &self,
        name: &str,
    ) -> Result<Option<(RecoveredSession, WalWriter)>, DurabilityError> {
        let dir = self.session_dir(name);
        let Some(mut snapshot) = load_snapshot_with(&dir.join(SNAPSHOT_FILE), &self.config.shim)?
        else {
            return Ok(None);
        };
        let wal_path = dir.join(WAL_FILE);
        let outcome = read_wal_with(&wal_path, &self.config.shim)?;
        let mut seq = snapshot.seq;
        let mut last_deadline: Option<Duration> = snapshot.last_deadline;
        let mut explained = snapshot.explained;
        let mut replayed = 0u64;
        for record in &outcome.records {
            if record.seq <= snapshot.seq {
                continue; // covered by the snapshot (crash between rename and WAL reset)
            }
            if record.seq != seq + 1 {
                return Err(DurabilityError::Corrupt(format!(
                    "session {name:?}: WAL gap (have seq {seq}, next record is {})",
                    record.seq
                )));
            }
            apply_delta(&mut snapshot.left, &mut snapshot.right, &record.delta).map_err(|e| {
                DurabilityError::Corrupt(format!(
                    "session {name:?}: logged delta {} no longer applies: {e}",
                    record.seq
                ))
            })?;
            seq = record.seq;
            last_deadline = record.deadline;
            explained = true; // a logged delta implies a completed re_explain
            if let Some(request_id) = &record.request_id {
                snapshot.retry_window.push((request_id.clone(), record.seq));
            }
            replayed += 1;
        }
        snapshot.seq = seq;
        snapshot.last_deadline = last_deadline;
        snapshot.explained = explained;
        let writer = WalWriter::open_end_with(
            &wal_path,
            self.config.fsync,
            outcome.valid_len,
            &self.config.shim,
        )?;
        Ok(Some((
            RecoveredSession { snapshot, replayed, tail_discarded: outcome.tail_discarded },
            writer,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::WalRecord;
    use explain3d_core::prelude::{AttributeMatches, CanonicalRelation, CanonicalTuple, Side};
    use explain3d_incremental::{RelationDelta, SessionConfig};
    use explain3d_relation::prelude::{Row, Schema, Value, ValueType};

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("e3d-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn rel(name: &str, keys: &[&str]) -> CanonicalRelation {
        CanonicalRelation {
            query_name: name.to_string(),
            schema: Schema::from_pairs(&[("k", ValueType::Str)]),
            key_attrs: vec!["k".to_string()],
            tuples: keys
                .iter()
                .enumerate()
                .map(|(i, k)| CanonicalTuple {
                    id: i,
                    key: vec![Value::str(*k)],
                    impact: 1.0,
                    members: vec![i],
                    representative: Row::new(vec![Value::str(*k)]),
                })
                .collect(),
            aggregate: None,
        }
    }

    fn tuple(key: &str, impact: f64) -> CanonicalTuple {
        CanonicalTuple {
            id: 0,
            key: vec![Value::str(key)],
            impact,
            members: vec![],
            representative: Row::new(vec![Value::str(key)]),
        }
    }

    fn genesis(left: CanonicalRelation, right: CanonicalRelation) -> SessionSnapshot {
        SessionSnapshot {
            seq: 0,
            explained: false,
            last_deadline: None,
            config: SessionConfig::default(),
            matches: AttributeMatches::single_equivalent("k", "k"),
            left,
            right,
            retry_window: Vec::new(),
        }
    }

    #[test]
    fn dirnames_are_safe_and_deterministic() {
        assert_eq!(session_dirname("demo-1.2_x"), "n-demo-1.2_x");
        let weird = session_dirname("a/b c\u{1F600}");
        assert!(weird.starts_with("h-") && weird.len() == 34);
        assert_eq!(weird, session_dirname("a/b c\u{1F600}"), "lookups must be stable");
        assert_ne!(session_dirname("x"), session_dirname("y"));
        let long = "z".repeat(128);
        assert!(session_dirname(&long).len() <= 255);
        // A hash dirname can never shadow a reversible one.
        assert!(!session_dirname(&long).starts_with("n-"));
    }

    #[test]
    fn create_log_recover_replays_the_suffix() {
        let dir = tempdir("recover");
        let store = SessionStore::open(DurabilityConfig::new(&dir));
        let mut wal =
            store.create_session("s", &genesis(rel("Q1", &["a", "b"]), rel("Q2", &["a"]))).unwrap();
        assert!(store.contains("s"));
        // Log two applied deltas.
        let d1 = RelationDelta::new().insert(Side::Right, tuple("b", 2.0));
        let d2 = RelationDelta::new().delete(Side::Left, 0);
        wal.append(&WalRecord {
            seq: 1,
            deadline: None,
            request_id: Some("req-1".to_string()),
            delta: d1.clone(),
        })
        .unwrap();
        wal.append(&WalRecord {
            seq: 2,
            deadline: Some(Duration::from_millis(100)),
            request_id: None,
            delta: d2.clone(),
        })
        .unwrap();
        wal.sync().unwrap();
        drop(wal);

        let (recovered, _writer) = store.recover("s").unwrap().expect("session on disk");
        assert_eq!(recovered.replayed, 2);
        assert!(!recovered.tail_discarded);
        let snap = &recovered.snapshot;
        assert_eq!(snap.seq, 2);
        assert!(snap.explained);
        assert_eq!(snap.last_deadline, Some(Duration::from_millis(100)));
        assert_eq!(
            snap.retry_window,
            vec![("req-1".to_string(), 1)],
            "replay must rebuild the retry-dedup window from logged request ids"
        );
        // The replayed relations equal a direct application of the deltas.
        let (mut left, mut right) = (rel("Q1", &["a", "b"]), rel("Q2", &["a"]));
        apply_delta(&mut left, &mut right, &d1).unwrap();
        apply_delta(&mut left, &mut right, &d2).unwrap();
        assert_eq!(snap.left, left);
        assert_eq!(snap.right, right);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_then_stale_wal_records_are_skipped() {
        let dir = tempdir("skip");
        let store = SessionStore::open(DurabilityConfig::new(&dir));
        let mut wal =
            store.create_session("s", &genesis(rel("Q1", &["a"]), rel("Q2", &[]))).unwrap();
        let d1 = RelationDelta::new().insert(Side::Right, tuple("a", 1.0));
        wal.append(&WalRecord { seq: 1, deadline: None, request_id: None, delta: d1.clone() })
            .unwrap();
        wal.sync().unwrap();
        // Snapshot at seq 1 *without* resetting the WAL — the crash window
        // between snapshot rename and WAL reset.
        let (mut left, mut right) = (rel("Q1", &["a"]), rel("Q2", &[]));
        apply_delta(&mut left, &mut right, &d1).unwrap();
        let snap = SessionSnapshot {
            seq: 1,
            explained: true,
            last_deadline: None,
            config: SessionConfig::default(),
            matches: AttributeMatches::single_equivalent("k", "k"),
            left: left.clone(),
            right: right.clone(),
            retry_window: Vec::new(),
        };
        store.write_snapshot("s", &snap).unwrap();
        drop(wal);
        let (recovered, _w) = store.recover("s").unwrap().unwrap();
        assert_eq!(recovered.replayed, 0, "record ≤ snapshot.seq must be skipped");
        assert_eq!(recovered.snapshot.seq, 1);
        assert_eq!(recovered.snapshot.left, left);
        assert_eq!(recovered.snapshot.right, right);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn double_create_conflicts_and_remove_is_idempotent() {
        let dir = tempdir("conflict");
        let store = SessionStore::open(DurabilityConfig::new(&dir));
        let g = genesis(rel("Q1", &["a"]), rel("Q2", &["a"]));
        let _w = store.create_session("s", &g).unwrap();
        assert!(store.create_session("s", &g).is_err());
        store.remove("s").unwrap();
        assert!(!store.contains("s"));
        store.remove("s").unwrap(); // absent: still Ok
        assert!(store.recover("s").unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_collects_stale_tmp_files() {
        let dir = tempdir("tmpgc");
        let store = SessionStore::open(DurabilityConfig::new(&dir));
        let g = genesis(rel("Q1", &["a"]), rel("Q2", &["a"]));
        let _w = store.create_session("s", &g).unwrap();
        // A crash mid-snapshot leaves current.tmp behind; seed two.
        let session_dir = dir.join(session_dirname("s"));
        std::fs::write(session_dir.join("current.tmp"), b"torn half-snapshot").unwrap();
        std::fs::write(session_dir.join("other.tmp"), b"older").unwrap();
        let reopened = SessionStore::open(DurabilityConfig::new(&dir));
        assert!(!session_dir.join("current.tmp").exists(), "open must GC stale tmp files");
        assert!(!session_dir.join("other.tmp").exists());
        assert!(session_dir.join(SNAPSHOT_FILE).exists(), "the real snapshot must survive");
        assert!(reopened.recover("s").unwrap().is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_renames_aside_and_never_deletes() {
        let dir = tempdir("quarantine");
        let store = SessionStore::open(DurabilityConfig::new(&dir));
        let g = genesis(rel("Q1", &["a"]), rel("Q2", &["a"]));
        let _w = store.create_session("s", &g).unwrap();
        let q1 = store.quarantine("s").unwrap().expect("state existed");
        assert!(!store.contains("s"), "quarantined state must not be recoverable as truth");
        assert!(q1.join(SNAPSHOT_FILE).exists(), "the bytes must survive, renamed aside");
        assert!(store.recover("s").unwrap().is_none());
        // The name is free again; a second episode lands in a new slot.
        let _w = store.create_session("s", &g).unwrap();
        let q2 = store.quarantine("s").unwrap().expect("state existed");
        assert_ne!(q1, q2, "repeated quarantines must not overwrite each other");
        assert!(q1.exists() && q2.exists());
        assert!(store.quarantine("s").unwrap().is_none(), "nothing left to quarantine");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_wal_fault_surfaces_and_clean_reopen_recovers() {
        use crate::fault::{FaultInjector, FaultKind, FaultOp, FaultPlan, FaultRule, Trigger};
        let dir = tempdir("faulty");
        let inj = FaultInjector::new(FaultPlan {
            seed: 9,
            rules: vec![FaultRule {
                op: FaultOp::Write,
                trigger: Trigger::Nth(4),
                kind: FaultKind::ShortWrite,
            }],
        });
        let mut config = DurabilityConfig::new(&dir);
        config.fsync = FsyncPolicy::Always;
        config.shim = Some(inj.clone());
        let store = SessionStore::open(config);
        let g = genesis(rel("Q1", &["a", "b"]), rel("Q2", &["a"]));
        // Writes 1–3: snapshot tmp, WAL magic, first record. Write 4 (the
        // second record) tears mid-frame.
        let mut wal = store.create_session("s", &g).unwrap();
        let d = RelationDelta::new().insert(Side::Right, tuple("b", 2.0));
        wal.append(&WalRecord { seq: 1, deadline: None, request_id: None, delta: d.clone() })
            .unwrap();
        let err = wal
            .append(&WalRecord { seq: 2, deadline: None, request_id: None, delta: d.clone() })
            .unwrap_err();
        assert_eq!(err.raw_os_error(), Some(5), "torn write surfaces as EIO");
        drop(wal);
        // Recovery through a clean store repairs the torn tail: only the
        // intact first record replays.
        let clean = SessionStore::open(DurabilityConfig::new(&dir));
        let (recovered, _w) = clean.recover("s").unwrap().expect("session on disk");
        assert_eq!(recovered.replayed, 1, "the torn second record must be discarded");
        assert!(recovered.tail_discarded);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn list_names_reports_reversible_sessions() {
        let dir = tempdir("list");
        let store = SessionStore::open(DurabilityConfig::new(&dir));
        let g = genesis(rel("Q1", &["a"]), rel("Q2", &["a"]));
        let _a = store.create_session("beta", &g).unwrap();
        let _b = store.create_session("alpha", &g).unwrap();
        assert_eq!(store.list_names(), vec!["alpha".to_string(), "beta".to_string()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
