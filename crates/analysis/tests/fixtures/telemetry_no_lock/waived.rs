//! Fixture: a deliberate under-lock sink silenced by a reasoned waiver.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

pub struct Slot {
    pub state: Mutex<u64>,
}

pub fn inc_under_state(slot: &Slot, runs: &Counter) {
    let state = slot.state.lock().unwrap();
    // lint:allow(telemetry-no-lock): fixture — single-threaded teardown accounting, no concurrent observer.
    runs.inc();
    let _ = state;
}
