//! Fixture: metric sinks recorded while hot-path registry guards are
//! live — the critical-section stretch `telemetry-no-lock` exists to
//! refuse. Linted under a virtual registry.rs path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub struct Histogram(AtomicU64);

impl Histogram {
    pub fn observe(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }
}

pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

pub struct Slot {
    pub state: Mutex<u64>,
}

/// Observes a histogram while the slot-state guard is still held.
pub fn observe_under_state(slot: &Slot, run_us: &Histogram) {
    let state = slot.state.lock().unwrap();
    run_us.observe(*state);
}

/// Bumps a counter inside the same critical section.
pub fn inc_under_state(slot: &Slot, runs: &Counter) {
    let state = slot.state.lock().unwrap();
    runs.inc();
    let _ = state;
}
