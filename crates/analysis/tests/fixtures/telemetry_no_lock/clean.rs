//! Fixture: the sanctioned instrumentation shapes — capture plain
//! integers under the lock, record them after the guard is released
//! (explicit `drop`, or the guard's block closing).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub struct Histogram(AtomicU64);

impl Histogram {
    pub fn observe(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }
}

pub struct Slot {
    pub state: Mutex<u64>,
}

/// Capture under the lock, `drop`, then record.
pub fn observe_after_drop(slot: &Slot, run_us: &Histogram) {
    let state = slot.state.lock().unwrap();
    let elapsed = *state;
    drop(state);
    run_us.observe(elapsed);
}

/// The guard dies with its block; the sink runs lock-free.
pub fn observe_after_block(slot: &Slot, run_us: &Histogram) {
    let elapsed = {
        let state = slot.state.lock().unwrap();
        *state
    };
    run_us.observe(elapsed);
}
