//! Fixture: every `unsafe` carries a `SAFETY:` comment (same line or in
//! the comment block directly above, attributes allowed in between).

pub fn first_byte(p: *const u8) -> u8 {
    // SAFETY: callers guarantee `p` points to at least one readable byte.
    unsafe { *p }
}

// SAFETY: caller contract — `p` points to at least two readable bytes.
#[inline]
pub unsafe fn second_byte(p: *const u8) -> u8 {
    *p.add(1)
}

pub fn third(p: *const u8) -> u8 {
    unsafe { *p } // SAFETY: trailing-style justification also counts.
}
