//! Fixture: an `unsafe` block with no `SAFETY:` justification.

pub fn first_byte(p: *const u8) -> u8 {
    unsafe { *p }
}

pub unsafe fn second_byte(p: *const u8) -> u8 {
    *p.add(1)
}
