//! Fixture: an un-annotated `unsafe` silenced by a reasoned waiver.

pub fn first_byte(p: *const u8) -> u8 {
    // lint:allow(safety-comments): fixture — the soundness argument lives in the harness docs.
    unsafe { *p }
}
