//! Fixture: the blessed float ordering. A `partial_cmp` inside a string
//! or comment must not fire either: "x.partial_cmp(y)" stays invisible.

pub fn sort_scores(scores: &mut [f64]) {
    scores.sort_by(|a, b| a.total_cmp(b));
}

pub fn describe() -> &'static str {
    "uses total_cmp, never partial_cmp"
}
