//! Fixture: a float ordering through `partial_cmp` — nondeterministic
//! under NaN, exactly what the PR-4 sweep removed.

pub fn sort_scores(scores: &mut [f64]) {
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}
