//! Fixture: a `partial_cmp` site waived with a semantic reason.

pub fn sql_compare(x: f64, y: f64) -> Option<std::cmp::Ordering> {
    // lint:allow(float-total-order): SQL semantics — NaN must compare UNKNOWN (None), which is the partial ordering.
    x.partial_cmp(&y)
}
