//! Fixture: the same decode written panic-free — typed errors for every
//! malformed input. Mentions of unwrap() in strings ("never unwrap()")
//! and comments must not fire. Unit tests may panic freely.

pub fn decode(buf: &[u8]) -> Result<u32, String> {
    let first = buf.first().ok_or("empty frame")?;
    let last = buf.last().ok_or("empty frame")?;
    let mid = buf.get(1).ok_or("need at least two bytes")?;
    if *first == 0xFF {
        return Err("reserved frame marker".to_string()); // never panic!()
    }
    Ok(u32::from(*first) + u32::from(*last) + u32::from(*mid))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        // Test context is exempt: unwrap/indexing are fine here.
        assert_eq!(decode(&[1, 2]).unwrap(), 1 + 2 + 2);
        let buf = [3u8, 4];
        assert_eq!(buf[0], 3);
    }
}
