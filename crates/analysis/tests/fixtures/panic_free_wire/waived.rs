//! Fixture: wire-edge panics silenced by reasoned waivers — e.g. indexes
//! whose bounds are proven by a mask or a checked length.

const TABLE: [u32; 256] = [0; 256];

pub fn decode(buf: &[u8]) -> u32 {
    let mut acc = 0u32;
    for &b in buf {
        // lint:allow(panic-free-wire): index masked to 8 bits against a 256-entry table — always in range.
        acc ^= TABLE[(b & 0xFF) as usize];
    }
    acc
}
