//! Fixture: every banned panic path on the wire edge — `.unwrap()`,
//! `.expect()`, `panic!`, and slice indexing. Linted under a virtual
//! wire-edge path.

pub fn decode(buf: &[u8]) -> u32 {
    let first = buf[0];
    let last = buf.last().unwrap();
    let mid = buf.get(1).expect("at least two bytes");
    if first == 0xFF {
        panic!("reserved frame marker");
    }
    u32::from(first) + u32::from(*last) + u32::from(*mid)
}
