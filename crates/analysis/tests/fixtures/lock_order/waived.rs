//! Fixture: a deliberate rank inversion silenced by a reasoned waiver.

use std::sync::Mutex;

pub struct Slot {
    pub state: Mutex<u32>,
    pub pending: Mutex<Vec<u32>>,
}

pub fn drain_wrong_way(slot: &Slot) {
    let pending = slot.pending.lock().unwrap();
    // lint:allow(lock-order): fixture — documents the waiver path for a single-threaded teardown phase.
    let state = slot.state.lock().unwrap();
    let _ = (pending, state);
}
