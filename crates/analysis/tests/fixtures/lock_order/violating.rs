//! Fixture: rank-order inversions in the registry lock family — a direct
//! one and one hidden behind a same-file helper call (the one-level
//! inlining case). Linted under a virtual registry.rs path.

use std::sync::{Mutex, MutexGuard, RwLock};

pub struct Slot {
    pub state: Mutex<u32>,
    pub pending: Mutex<Vec<u32>>,
}

pub struct Shard {
    pub slots: RwLock<Vec<Slot>>,
}

/// Blocks on slot-state (rank 2) while holding slot-pending (rank 4).
pub fn drain_wrong_way(slot: &Slot) {
    let pending = slot.pending.lock().unwrap();
    let state = slot.state.lock().unwrap();
    let _ = (pending, state);
}

fn grab_state(slot: &Slot) -> MutexGuard<'_, u32> {
    slot.state.lock().unwrap()
}

/// The same inversion, one call deep: `grab_state` blocks on rank 2.
pub fn inlined_wrong_way(slot: &Slot) {
    let pending = slot.pending.lock().unwrap();
    let state = grab_state(slot);
    let _ = (pending, state);
}
