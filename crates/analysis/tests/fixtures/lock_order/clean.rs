//! Fixture: lock nestings that follow the declared rank order, plus the
//! patterns the checker must tolerate — try-acquisitions, `drop()`
//! releases, and statement-scoped temporaries.

use std::sync::{Mutex, RwLock};

pub struct Slot {
    pub state: Mutex<u32>,
    pub pending: Mutex<Vec<u32>>,
}

pub struct Shard {
    pub slots: RwLock<Vec<Slot>>,
}

/// slot-state (2) then slot-pending (4): ascending, fine.
pub fn drain(slot: &Slot) {
    let state = slot.state.lock().unwrap();
    let pending = slot.pending.lock().unwrap();
    let _ = (state, pending);
}

/// slot-state (2) then index-stripe (3): ascending, fine.
pub fn revalidate(slot: &Slot, shard: &Shard) -> usize {
    let state = slot.state.lock().unwrap();
    let n = shard.slots.read().unwrap().len();
    let _ = state;
    n
}

/// A try-acquisition never blocks, so it is exempt from the order even
/// against a held higher rank.
pub fn probe(slot: &Slot) {
    let pending = slot.pending.lock().unwrap();
    if let Ok(state) = slot.state.try_lock() {
        let _ = (&pending, state);
    }
}

/// An explicit `drop()` releases the guard: the later low-rank
/// acquisition happens with nothing held.
pub fn sequential(slot: &Slot) {
    let pending = slot.pending.lock().unwrap();
    drop(pending);
    let state = slot.state.lock().unwrap();
    let _ = state;
}

/// A statement-scoped temporary dies at the `;` — the next statement
/// holds nothing.
pub fn temporary(slot: &Slot) {
    slot.pending.lock().unwrap().push(1);
    let state = slot.state.lock().unwrap();
    let _ = state;
}
