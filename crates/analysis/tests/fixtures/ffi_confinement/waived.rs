//! Fixture: an FFI declaration outside the allow-list, waived with a
//! reason.

// lint:allow(ffi-confinement): fixture — demonstrates the waiver path for a one-off binding.
extern "C" {
    fn getpid() -> i32;
}

pub fn pid() -> i32 {
    // SAFETY: getpid takes no arguments and cannot fail.
    unsafe { getpid() }
}
