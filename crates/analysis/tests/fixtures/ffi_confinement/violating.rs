//! Fixture: raw FFI declared outside the designated modules.

extern "C" {
    fn getpid() -> i32;
}

pub fn pid() -> i32 {
    // SAFETY: getpid takes no arguments and cannot fail.
    unsafe { getpid() }
}
