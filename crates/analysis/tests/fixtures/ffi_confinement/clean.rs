//! Fixture: no FFI; a comment or string mentioning extern "C" must not
//! fire ("extern \"C\" lives in poller.rs").

pub fn pid() -> u32 {
    std::process::id()
}
