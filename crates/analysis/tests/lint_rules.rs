//! Per-rule contract tests: every rule fires on its violating fixture,
//! stays silent on the clean one, and is silenced by a reasoned waiver on
//! the waived one. Fixtures live under `tests/fixtures/<rule>/` (excluded
//! from the workspace walk — they violate on purpose) and are linted
//! under *virtual* paths, because several rules are path-scoped.

use explain3d_analysis::{lint_source, Finding};
use std::path::Path;

/// Lints `tests/fixtures/<rule>/<kind>.rs` as if it lived at `virt`.
fn lint_fixture(rule_dir: &str, kind: &str, virt: &str) -> Vec<Finding> {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule_dir)
        .join(format!("{kind}.rs"));
    let src = std::fs::read_to_string(&fixture)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", fixture.display()));
    lint_source(Path::new(virt), &src)
}

/// Asserts the triple contract for one rule at one virtual path.
fn assert_triple(rule: &str, rule_dir: &str, virt: &str, violating_count: usize) {
    let violating = lint_fixture(rule_dir, "violating", virt);
    assert_eq!(
        violating.iter().filter(|f| f.rule == rule).count(),
        violating_count,
        "{rule}: wrong finding count on violating fixture; got {violating:#?}"
    );
    assert!(
        violating.iter().all(|f| f.rule == rule),
        "{rule}: violating fixture tripped unrelated rules: {violating:#?}"
    );
    let clean = lint_fixture(rule_dir, "clean", virt);
    assert!(clean.is_empty(), "{rule}: clean fixture must be silent, got {clean:#?}");
    let waived = lint_fixture(rule_dir, "waived", virt);
    assert!(waived.is_empty(), "{rule}: reasoned waivers must silence, got {waived:#?}");
}

#[test]
fn safety_comments_triple() {
    // Two sites: the bare block and the bare unsafe fn.
    assert_triple("safety-comments", "safety_comments", "crates/example/src/lib.rs", 2);
}

#[test]
fn float_total_order_triple() {
    assert_triple("float-total-order", "float_total_order", "crates/example/src/lib.rs", 1);
}

#[test]
fn ffi_confinement_triple() {
    assert_triple("ffi-confinement", "ffi_confinement", "crates/example/src/lib.rs", 1);
}

#[test]
fn ffi_confinement_is_silent_in_designated_modules() {
    // The same extern block under an allow-listed path is fine.
    let findings = lint_fixture("ffi_confinement", "violating", "crates/service/src/poller.rs");
    assert!(findings.is_empty(), "allow-listed path must be exempt, got {findings:#?}");
}

#[test]
fn panic_free_wire_triple() {
    // Four sites: buf[0], .unwrap(), .expect(), panic!.
    assert_triple("panic-free-wire", "panic_free_wire", "crates/service/src/wire.rs", 4);
}

#[test]
fn panic_free_wire_only_guards_the_wire_edge() {
    // The identical source under a non-wire path is out of scope.
    let findings = lint_fixture("panic_free_wire", "violating", "crates/relation/src/value.rs");
    assert!(findings.is_empty(), "non-wire path must be exempt, got {findings:#?}");
}

#[test]
fn lock_order_triple() {
    // Two inversions: the direct one and the one behind a helper call.
    assert_triple("lock-order", "lock_order", "crates/service/src/registry.rs", 2);
}

#[test]
fn lock_order_reports_the_inlined_call_site() {
    let findings = lint_fixture("lock_order", "violating", "crates/service/src/registry.rs");
    assert!(
        findings.iter().any(|f| f.message.contains("call to `grab_state`")),
        "the helper-call inversion must be attributed to the call site, got {findings:#?}"
    );
}

#[test]
fn telemetry_no_lock_triple() {
    // Two sinks under a live slot-state guard: an `.observe(` and an `.inc(`.
    assert_triple("telemetry-no-lock", "telemetry_no_lock", "crates/service/src/registry.rs", 2);
}

#[test]
fn telemetry_no_lock_only_guards_the_registry() {
    // The identical source anywhere else is out of scope: only the
    // registry file owns the ranked lock family.
    let findings =
        lint_fixture("telemetry_no_lock", "violating", "crates/service/src/telemetry.rs");
    assert!(findings.is_empty(), "non-registry path must be exempt, got {findings:#?}");
}

#[test]
fn waiver_without_reason_is_a_finding() {
    let src = "// lint:allow(float-total-order)\npub fn f() {}\n";
    let findings = lint_source(Path::new("crates/example/src/lib.rs"), src);
    assert!(
        findings.iter().any(|f| f.rule == "waiver-reason"),
        "a reasonless waiver must fire waiver-reason, got {findings:#?}"
    );
}

#[test]
fn waiver_naming_unknown_rule_is_a_finding() {
    let src = "// lint:allow(no-such-rule): because reasons\npub fn f() {}\n";
    let findings = lint_source(Path::new("crates/example/src/lib.rs"), src);
    assert!(
        findings.iter().any(|f| f.rule == "waiver-unknown-rule"),
        "a typo'd rule id must fire waiver-unknown-rule, got {findings:#?}"
    );
}

#[test]
fn reasonless_waiver_does_not_silence_the_finding() {
    let src = "\
pub fn sort(scores: &mut [f64]) {
    // lint:allow(float-total-order)
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}
";
    let findings = lint_source(Path::new("crates/example/src/lib.rs"), src);
    assert!(
        findings.iter().any(|f| f.rule == "float-total-order"),
        "an unreasoned waiver must not suppress, got {findings:#?}"
    );
}
