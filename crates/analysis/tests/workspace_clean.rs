//! The meta-test: the live workspace itself is lint-clean. This is the
//! same check CI's `lint` job runs via the binary; having it in `cargo
//! test` means a finding cannot land even when someone skips the lint
//! lane locally.

use std::path::Path;

#[test]
fn live_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analysis sits two levels below the workspace root");
    assert!(root.join("Cargo.toml").exists(), "workspace root not found at {root:?}");
    let findings = explain3d_analysis::lint_workspace(root).expect("workspace walk");
    assert!(
        findings.is_empty(),
        "the workspace must stay lint-clean; fix or waive (with a reason):\n{}",
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}
