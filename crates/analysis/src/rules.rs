//! The rule catalog. Each rule encodes one load-bearing invariant the
//! workspace has accumulated over PRs 1–8; the engine runs all of them
//! over every file and the waiver grammar (see [`crate::engine`]) is the
//! only escape hatch.

use crate::engine::{FileContext, Finding};
use crate::lexer::TokenKind;
use crate::lock_order;

/// A lint rule: stable id, one-line summary, and the checker.
pub struct Rule {
    /// Stable rule id — what waivers name.
    pub id: &'static str,
    /// One-line summary for `--rules` and the README catalog.
    pub summary: &'static str,
    /// The checker.
    pub check: fn(&FileContext<'_>, &mut Vec<Finding>),
}

/// Every rule, in catalog order.
pub const ALL: &[Rule] = &[
    Rule {
        id: "safety-comments",
        summary: "every `unsafe` block/fn/impl carries a `// SAFETY:` justification",
        check: safety_comments,
    },
    Rule {
        id: "float-total-order",
        summary: "`partial_cmp` is banned — float orderings use `total_cmp` (PR-4 NaN sweep)",
        check: float_total_order,
    },
    Rule {
        id: "ffi-confinement",
        summary: "`extern \"C\"` FFI only in the designated modules",
        check: ffi_confinement,
    },
    Rule {
        id: "panic-free-wire",
        summary: "no unwrap/expect/panic!/slice-index where arbitrary bytes are decoded",
        check: panic_free_wire,
    },
    Rule {
        id: "lock-order",
        summary: "the registry's lock family is acquired in declared rank order",
        check: lock_order::check,
    },
    Rule {
        id: "telemetry-no-lock",
        summary: "no metric recording (`.observe`/`.inc`/`.inc_by`) under a hot-path registry lock",
        check: lock_order::check_telemetry,
    },
];

/// Rust keywords — used to tell `value[i]` (indexing) from `if [a] = …`
/// (not indexing) and similar.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "type", "unsafe", "use",
    "where", "while", "yield",
];

fn is_keyword(word: &str) -> bool {
    KEYWORDS.contains(&word)
}

/// Index of the previous non-comment token before `i`, if any.
fn prev_sig(ctx: &FileContext<'_>, i: usize) -> Option<usize> {
    (0..i).rev().find(|&j| !ctx.tokens[j].is_comment())
}

/// Index of the next non-comment token after `i`, if any.
fn next_sig(ctx: &FileContext<'_>, i: usize) -> Option<usize> {
    (i + 1..ctx.tokens.len()).find(|&j| !ctx.tokens[j].is_comment())
}

// ---------------------------------------------------------------------------
// R1: safety-comments
// ---------------------------------------------------------------------------

/// Every `unsafe` keyword — blocks, fns, impls, traits, test helpers
/// included — must be annotated with a comment containing `SAFETY:` on the
/// same line or in the contiguous comment/attribute block directly above.
/// The justification is the reviewable artifact: *why* the invariants the
/// compiler can no longer check still hold.
fn safety_comments(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    // Per-line facts (1-based; index 0 unused).
    let nlines = ctx.src.lines().count() + 2;
    let mut has_code = vec![false; nlines];
    let mut has_safety = vec![false; nlines];
    let mut has_comment = vec![false; nlines];
    for t in ctx.tokens {
        let lines = t.line as usize..=(t.end_line as usize).min(nlines - 1);
        if t.is_comment() {
            let safety = t.text(ctx.src).contains("SAFETY:");
            for l in lines {
                has_comment[l] = true;
                has_safety[l] |= safety;
            }
        } else {
            for l in lines {
                has_code[l] = true;
            }
        }
    }
    let attr_line = |l: usize| -> bool {
        ctx.src.lines().nth(l - 1).map(str::trim_start).is_some_and(|s| s.starts_with('#'))
    };
    for (i, t) in ctx.tokens.iter().enumerate() {
        if !t.is_ident(ctx.src, "unsafe") {
            continue;
        }
        // Same line, then the contiguous comment/attribute block above
        // (blank lines or code lines break the block).
        let mut annotated = has_safety[t.line as usize];
        let mut l = t.line as usize;
        while !annotated && l > 1 {
            l -= 1;
            let comment_only = has_comment[l] && !has_code[l];
            if !(comment_only || (has_code[l] && attr_line(l))) {
                break;
            }
            annotated = has_safety[l];
        }
        if annotated {
            continue;
        }
        let what = match next_sig(ctx, i).map(|j| ctx.tokens[j]) {
            Some(n) if n.is_ident(ctx.src, "fn") => "unsafe fn",
            Some(n) if n.is_ident(ctx.src, "impl") => "unsafe impl",
            Some(n) if n.is_ident(ctx.src, "trait") => "unsafe trait",
            _ => "unsafe block",
        };
        ctx.report(
            out,
            "safety-comments",
            t.line,
            format!("{what} without a `// SAFETY:` comment justifying why it is sound"),
        );
    }
}

// ---------------------------------------------------------------------------
// R2: float-total-order
// ---------------------------------------------------------------------------

/// `partial_cmp` made NaNs compare `Equal`-ish all over the pre-PR-4 code
/// and produced nondeterministic sorts; the sweep replaced every float
/// ordering with `total_cmp`. This rule makes the sweep permanent: any
/// `partial_cmp` identifier — call *or* trait-impl definition — needs a
/// waiver stating why a partial ordering is semantically right there.
fn float_total_order(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for t in ctx.tokens.iter() {
        if t.is_ident(ctx.src, "partial_cmp") {
            ctx.report(
                out,
                "float-total-order",
                t.line,
                "`partial_cmp` is banned (NaN makes it lie): use `f64::total_cmp` / \
                 `Value::total_cmp`, or waive with the semantic reason a partial \
                 ordering is correct here"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// R3: ffi-confinement
// ---------------------------------------------------------------------------

/// Files allowed to declare `extern "C"` items: the two readiness-backend
/// modules, the serve binary (signal handling), and the perf harness
/// (rlimits). Everything else must go through these modules — raw FFI
/// scattered across the tree is how errno-handling bugs breed.
const FFI_ALLOWED: &[&str] = &[
    "crates/service/src/poller.rs",
    "crates/parallel/src/wake.rs",
    "crates/service/src/bin/explain3d-serve.rs",
    "crates/bench/src/bin/perf_report.rs",
];

fn ffi_confinement(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let path = ctx.path_str();
    if FFI_ALLOWED.iter().any(|allowed| path.ends_with(allowed)) {
        return;
    }
    for (i, t) in ctx.tokens.iter().enumerate() {
        if !t.is_ident(ctx.src, "extern") || ctx.is_test(i) {
            continue;
        }
        // `extern crate` is a legacy import, not FFI.
        let next = next_sig(ctx, i).map(|j| ctx.tokens[j]);
        if next.is_some_and(|n| n.is_ident(ctx.src, "crate")) {
            continue;
        }
        ctx.report(
            out,
            "ffi-confinement",
            t.line,
            format!(
                "raw FFI (`extern`) outside the designated modules — move the binding \
                 into one of: {}",
                FFI_ALLOWED.join(", ")
            ),
        );
    }
}

// ---------------------------------------------------------------------------
// R4: panic-free-wire
// ---------------------------------------------------------------------------

/// The files where "decoding arbitrary bytes never panics" is a pinned,
/// tested guarantee (the PR-5 wire audit and the PR-6 codec contract).
const WIRE_EDGE: &[&str] = &[
    "crates/service/src/json.rs",
    "crates/service/src/proto.rs",
    "crates/service/src/wire.rs",
    "crates/durability/src/codec.rs",
];

/// Macros that unconditionally panic when reached.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn panic_free_wire(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let path = ctx.path_str();
    if !WIRE_EDGE.iter().any(|edge| path.ends_with(edge)) {
        return;
    }
    for (i, t) in ctx.tokens.iter().enumerate() {
        if ctx.is_test(i) || t.kind != TokenKind::Ident && t.kind != TokenKind::Punct('[') {
            continue;
        }
        // `.unwrap()` / `.expect(…)`.
        if t.kind == TokenKind::Ident {
            let word = t.text(ctx.src);
            if (word == "unwrap" || word == "expect")
                && prev_sig(ctx, i).is_some_and(|p| ctx.tokens[p].is_punct('.'))
                && next_sig(ctx, i).is_some_and(|n| ctx.tokens[n].is_punct('('))
            {
                ctx.report(
                    out,
                    "panic-free-wire",
                    t.line,
                    format!(
                        "`.{word}()` on the wire edge — arbitrary bytes must never \
                         panic; return a typed error instead"
                    ),
                );
            }
            if PANIC_MACROS.contains(&word)
                && next_sig(ctx, i).is_some_and(|n| ctx.tokens[n].is_punct('!'))
            {
                ctx.report(
                    out,
                    "panic-free-wire",
                    t.line,
                    format!("`{word}!` on the wire edge — return a typed error instead"),
                );
            }
            continue;
        }
        // Slice indexing: `expr[…]` panics out-of-range. An opening `[`
        // is indexing when the previous significant token could end an
        // expression: a non-keyword identifier, `)`, `]`, or a literal.
        if let Some(p) = prev_sig(ctx, i) {
            let prev = ctx.tokens[p];
            let indexes = match prev.kind {
                TokenKind::Ident => !is_keyword(prev.text(ctx.src)),
                TokenKind::Punct(')') | TokenKind::Punct(']') => true,
                TokenKind::Str | TokenKind::Number => true,
                _ => false,
            };
            if indexes {
                ctx.report(
                    out,
                    "panic-free-wire",
                    t.line,
                    "slice-indexing on the wire edge can panic out-of-range — use \
                     `.get(…)` and handle `None`"
                        .to_string(),
                );
            }
        }
    }
}
