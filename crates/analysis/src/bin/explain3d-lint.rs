//! `explain3d-lint` — run the workspace invariant checks.
//!
//! ```text
//! cargo run -p explain3d-analysis -- --workspace     # lint the whole tree
//! cargo run -p explain3d-analysis -- file.rs …       # lint specific files
//! cargo run -p explain3d-analysis -- --rules         # list the rule catalog
//! ```
//!
//! Exit status: 0 when clean, 1 when any finding fired, 2 on usage or
//! I/O errors. CI runs the `--workspace` form and treats a non-zero exit
//! as a failed check.

use explain3d_analysis::{engine, rules};
use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args.iter().any(|a| a == "--rules") {
        for rule in rules::ALL {
            println!("{:<18} {}", rule.id, rule.summary);
        }
        return;
    }
    let findings = if args.iter().any(|a| a == "--workspace") {
        let root = workspace_root();
        match engine::lint_workspace(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("explain3d-lint: workspace walk failed: {e}");
                std::process::exit(2);
            }
        }
    } else {
        let mut findings = Vec::new();
        for arg in &args {
            if arg.starts_with('-') {
                eprintln!("explain3d-lint: unknown flag `{arg}`");
                usage();
                std::process::exit(2);
            }
            let path = PathBuf::from(arg);
            match std::fs::read_to_string(&path) {
                Ok(src) => findings.extend(engine::lint_source(&path, &src)),
                Err(e) => {
                    eprintln!("explain3d-lint: cannot read `{arg}`: {e}");
                    std::process::exit(2);
                }
            }
        }
        findings
    };
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        eprintln!("explain3d-lint: clean ({} rules)", rules::ALL.len());
    } else {
        eprintln!("explain3d-lint: {} finding(s)", findings.len());
        std::process::exit(1);
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR/../..` when run via cargo
/// (crates/analysis → workspace), else the nearest ancestor of the current
/// directory holding a `Cargo.toml` with a `[workspace]` table.
fn workspace_root() -> PathBuf {
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let crate_dir = PathBuf::from(manifest);
        if let Some(root) = crate_dir.parent().and_then(Path::parent) {
            if root.join("Cargo.toml").exists() {
                return root.to_path_buf();
            }
        }
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn usage() {
    eprintln!(
        "usage: explain3d-lint [--workspace | FILE.rs …]\n\
         \n\
         --workspace   lint every .rs file under the workspace root\n\
         --rules       list the rule catalog\n\
         \n\
         Waive a finding with `// lint:allow(rule-id): reason` on or above\n\
         the offending line; the reason is mandatory."
    );
}
