//! R5 `lock-order`: rank discipline for the session registry's lock family.
//!
//! `crates/service/src/registry.rs` nests four kinds of locks (plus the
//! recovery bookkeeping table). The *request path* touches them in lookup
//! order — index stripe, slot pending, slot state, recovery gate — but
//! what deadlock-freedom actually needs is a consistent **holds** order:
//! whenever a thread blocks on lock B while holding lock A, `rank(A) <
//! rank(B)` for one global rank function. Reading every nesting out of
//! PRs 5–8 gives this acquisition order (outermost first):
//!
//! | rank | lock            | recognized as                                  |
//! |------|-----------------|------------------------------------------------|
//! | 0    | recovery-table  | `.recovering.lock(`                            |
//! | 1    | recovery-gate   | `gate.lock(`                                   |
//! | 2    | slot-state      | `.state.lock(`, `lock_state(`                  |
//! | 3    | index-stripe    | `.slots.read/.write(`, `shard_read/write(`     |
//! | 4    | slot-pending    | `.pending.lock(`                               |
//!
//! The real nestings this admits: the recovery gate is held across a whole
//! recovery (which re-reads and writes the stripe: 1 → 3); `explain`
//! holds a slot's state while re-validating registration against the
//! stripe (2 → 3); eviction holds the stripe while draining a victim's
//! pending queue (3 → 4); a drain holds the state while collecting the
//! pending batch (2 → 4). Anything else — most importantly *blocking* on
//! a slot's state while holding the stripe or a pending queue, which is
//! how a slow `re_explain` would freeze every unrelated session on the
//! stripe — is a violation.
//!
//! `try_lock`/`try_read`/`try_write` acquisitions are **exempt from the
//! order check** (a try-acquisition never waits, so it cannot close a
//! wait-for cycle) but the guard they return still counts as *held* for
//! later blocking acquisitions.
//!
//! ## How approximate this is
//!
//! This is a lexical pass, not a borrow checker. Guards are assumed held
//! until their enclosing block closes (a `let`-bound guard), until the end
//! of their statement (an unbound temporary), or until an explicit
//! `drop(name)`. Calls to functions defined *in the same file* are
//! inlined **one level**: calling a function that internally blocks on a
//! rank ≤ a currently-held rank is a violation at the call site. Method
//! calls through arbitrary receivers are not resolved (only free calls
//! and `self.` calls are) — approximate by design, and calibrated so the
//! live `registry.rs` is clean without waivers.

use crate::engine::{FileContext, Finding};
use crate::lexer::{Token, TokenKind};
use std::collections::HashMap;

/// The file this rule applies to.
const TARGET: &str = "crates/service/src/registry.rs";

/// The declared lock family: `(rank, name)` recognized by field or
/// receiver patterns (see [`classify`]).
const FAMILY: &[(u8, &str)] = &[
    (0, "recovery-table"),
    (1, "recovery-gate"),
    (2, "slot-state"),
    (3, "index-stripe"),
    (4, "slot-pending"),
];

fn family_name(rank: u8) -> &'static str {
    FAMILY.iter().find(|(r, _)| *r == rank).map(|(_, n)| *n).unwrap_or("?")
}

/// Metric-sink methods `telemetry-no-lock` flags: each records into a
/// shared histogram or counter (an atomic RMW another core may contend
/// on) and has no business running inside a ranked critical section.
const SINKS: &[&str] = &["observe", "inc", "inc_by"];

/// Lowest-ranked guard under which metric recording is refused. Ranks 0–1
/// (the recovery table and gate) are cold paths held across whole
/// recoveries; 2+ (slot-state, index-stripe, slot-pending) are the hot
/// request-path locks the telemetry discipline protects.
const SINK_MIN_RANK: u8 = 2;

/// What a body scan looks for.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// R5: blocking acquisitions must ascend in rank.
    Order,
    /// R6: no metric sink while a hot-path guard is held.
    TelemetrySinks,
}

/// One recognized acquisition.
struct Acquisition {
    rank: u8,
    blocking: bool,
    /// Significant-token index just past the acquisition (the `(`).
    after: usize,
}

/// A lock guard currently held by the function being scanned.
struct Held {
    rank: u8,
    /// Brace depth whose closing releases the guard.
    depth: i32,
    /// `let`-binding name, for `drop(name)`.
    binding: Option<String>,
    /// Whether the guard is a `let`-bound (block-scoped) one; unbound
    /// temporaries die at the end of their statement instead.
    bound: bool,
    line: u32,
}

/// Entry point — see the module docs.
pub fn check(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if !ctx.path_str().ends_with(TARGET) {
        return;
    }
    // Significant (non-comment, non-test) token indices.
    let sig: Vec<usize> =
        (0..ctx.tokens.len()).filter(|&i| !ctx.tokens[i].is_comment() && !ctx.is_test(i)).collect();
    let bodies = find_fn_bodies(ctx, &sig);
    // Pass A: each function's own blocking acquisitions, for one-level
    // call inlining.
    let mut acquired_by_fn: HashMap<String, Vec<(u8, u32)>> = HashMap::new();
    for (name, range) in &bodies {
        let mut ranks = Vec::new();
        let mut k = range.0;
        while k < range.1 {
            if let Some(acq) = classify(ctx, &sig, k) {
                if acq.blocking {
                    ranks.push((acq.rank, ctx.tokens[sig[k]].line));
                }
                k = acq.after;
            } else {
                k += 1;
            }
        }
        acquired_by_fn.entry(name.clone()).or_default().extend(ranks);
    }
    // Pass B: scope-tracked scan of each body.
    for (name, range) in &bodies {
        scan_body(ctx, &sig, name, *range, &acquired_by_fn, Mode::Order, out);
    }
}

/// R6 `telemetry-no-lock`: the instrumentation discipline of the
/// observability layer, made permanent. Timings are *captured* under a
/// lock as plain integers and *recorded* (`.observe(…)`, `.inc(…)`,
/// `.inc_by(…)`) only after the guard is gone — shipping them out through
/// `RunTimings` / local `Option`s where needed. A sink call while a
/// slot-state, index-stripe, or slot-pending guard is held stretches the
/// critical section by a shared-atomic RMW (and whatever the metrics
/// library does next), which is exactly the per-session serialization
/// the service's tail latency hangs on. Uses the same scope machine (and
/// the same approximations) as `lock-order`.
pub fn check_telemetry(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if !ctx.path_str().ends_with(TARGET) {
        return;
    }
    let sig: Vec<usize> =
        (0..ctx.tokens.len()).filter(|&i| !ctx.tokens[i].is_comment() && !ctx.is_test(i)).collect();
    let bodies = find_fn_bodies(ctx, &sig);
    let no_inlining = HashMap::new();
    for (name, range) in &bodies {
        scan_body(ctx, &sig, name, *range, &no_inlining, Mode::TelemetrySinks, out);
    }
}

/// Locates `fn name … { body }` items among the significant tokens.
/// Returns `(name, (sig_index_of_open_brace, sig_index_past_close))`.
fn find_fn_bodies(ctx: &FileContext<'_>, sig: &[usize]) -> Vec<(String, (usize, usize))> {
    let mut out = Vec::new();
    let tok = |k: usize| -> &Token { &ctx.tokens[sig[k]] };
    let mut k = 0usize;
    while k + 1 < sig.len() {
        if tok(k).is_ident(ctx.src, "fn") && tok(k + 1).kind == TokenKind::Ident {
            let name = tok(k + 1).text(ctx.src).to_string();
            // Find the body `{`: the first `{` at zero paren/bracket
            // nesting after the parameter list (skips `-> Type` too, since
            // types before a body brace carry no `{`).
            let mut depth = 0i32;
            let mut j = k + 2;
            let mut body_open = None;
            while j < sig.len() {
                match tok(j).kind {
                    TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                    TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                    TokenKind::Punct('{') if depth == 0 => {
                        body_open = Some(j);
                        break;
                    }
                    // `fn f(…);` — a trait method signature, no body.
                    TokenKind::Punct(';') if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(open) = body_open {
                let mut brace = 0i32;
                let mut end = open;
                while end < sig.len() {
                    match tok(end).kind {
                        TokenKind::Punct('{') => brace += 1,
                        TokenKind::Punct('}') => {
                            brace -= 1;
                            if brace == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    end += 1;
                }
                out.push((name, (open + 1, end)));
                // Continue *inside* the body too: nested fns are rare but
                // cheap to include — the outer scan treats the nested fn's
                // tokens as part of the outer body, which over-approximates
                // but never under-reports. The explicit entry gives the
                // nested fn its own precise scan.
                k += 2;
                continue;
            }
        }
        k += 1;
    }
    out
}

/// Recognizes a lock-family acquisition starting at significant index `k`.
fn classify(ctx: &FileContext<'_>, sig: &[usize], k: usize) -> Option<Acquisition> {
    let tok = |i: usize| -> Option<&Token> { sig.get(i).map(|&j| &ctx.tokens[j]) };
    let ident = |i: usize| -> Option<&str> {
        tok(i).filter(|t| t.kind == TokenKind::Ident).map(|t| t.text(ctx.src))
    };
    // Free/self call patterns: `lock_state(`, `shard_read(`, `shard_write(`.
    if let Some(word) = ident(k) {
        let callish = tok(k + 1).is_some_and(|t| t.is_punct('('));
        if callish && !preceded_by_path_sep(ctx, sig, k) {
            match word {
                "lock_state" => return Some(Acquisition { rank: 2, blocking: true, after: k + 2 }),
                "shard_read" | "shard_write" => {
                    return Some(Acquisition { rank: 3, blocking: true, after: k + 2 })
                }
                _ => {}
            }
        }
    }
    // Field/receiver method patterns: `X . method (`.
    let method = ident(k + 2)?;
    if !tok(k + 1)?.is_punct('.') || !tok(k + 3)?.is_punct('(') {
        return None;
    }
    let recv = ident(k)?;
    let (rank, blocking) = match (recv, method) {
        ("recovering", "lock") => (0, true),
        ("gate", "lock") => (1, true),
        ("state", "lock") => (2, true),
        ("state", "try_lock") => (2, false),
        ("slots", "read") | ("slots", "write") => (3, true),
        ("slots", "try_read") | ("slots", "try_write") => (3, false),
        ("pending", "lock") => (4, true),
        _ => return None,
    };
    Some(Acquisition { rank, blocking, after: k + 4 })
}

/// True when the ident at `k` is reached through `.` or `::` — a method
/// call on an arbitrary receiver or a path like `std::mem::take`, neither
/// of which the free-call patterns above should match.
fn preceded_by_path_sep(ctx: &FileContext<'_>, sig: &[usize], k: usize) -> bool {
    if k == 0 {
        return false;
    }
    let prev = &ctx.tokens[sig[k - 1]];
    if prev.is_punct(':') {
        return true;
    }
    if !prev.is_punct('.') {
        return false;
    }
    // `self.lock_state(…)` / `self.shard_read(…)` are still "our own"
    // functions; anything else through `.` is not resolved.
    !(k >= 2 && ctx.tokens[sig[k - 2]].is_ident(ctx.src, "self"))
}

/// The scope machine over one function body.
#[allow(clippy::too_many_arguments)]
fn scan_body(
    ctx: &FileContext<'_>,
    sig: &[usize],
    fn_name: &str,
    (start, end): (usize, usize),
    acquired_by_fn: &HashMap<String, Vec<(u8, u32)>>,
    mode: Mode,
    out: &mut Vec<Finding>,
) {
    let tok = |i: usize| -> &Token { &ctx.tokens[sig[i]] };
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i32;
    // Condition tracking: `if` / `while` / `match` … `{` — guards
    // acquired in the scrutinee live as long as the following body.
    let mut in_condition = false;
    // `let` tracking for the current statement.
    let mut stmt_let_binding: Option<String> = None;
    let mut seen_let = false;
    let mut k = start;
    while k < end {
        let t = tok(k);
        match t.kind {
            TokenKind::Punct('{') => {
                depth += 1;
                in_condition = false;
                seen_let = false;
                stmt_let_binding = None;
                k += 1;
                continue;
            }
            TokenKind::Punct('}') => {
                depth -= 1;
                held.retain(|h| h.depth <= depth);
                seen_let = false;
                stmt_let_binding = None;
                k += 1;
                continue;
            }
            TokenKind::Punct(';') => {
                held.retain(|h| {
                    h.bound || h.depth < depth || (in_condition && h.depth == depth + 1)
                });
                seen_let = false;
                stmt_let_binding = None;
                k += 1;
                continue;
            }
            TokenKind::Ident => {
                let word = t.text(ctx.src);
                match word {
                    "if" | "while" | "match" => in_condition = true,
                    "let" => {
                        seen_let = true;
                    }
                    "drop" if tok_is(ctx, sig, k + 1, '(') => {
                        // `drop(name)` releases the guard bound to `name`.
                        if let Some(nm) = sig.get(k + 2).map(|&j| &ctx.tokens[j]) {
                            if nm.kind == TokenKind::Ident {
                                let name = nm.text(ctx.src);
                                if let Some(pos) =
                                    held.iter().rposition(|h| h.binding.as_deref() == Some(name))
                                {
                                    held.remove(pos);
                                }
                            }
                        }
                    }
                    _ => {
                        if seen_let && stmt_let_binding.is_none() && !is_pattern_word(word) {
                            stmt_let_binding = Some(word.to_string());
                        }
                    }
                }
            }
            TokenKind::Punct('=') => {
                // Past the `=` of a `let`: idents after it are the
                // initializer, not the binding.
                seen_let = false;
            }
            _ => {}
        }
        // Metric sink while a hot-path guard is held? (`X.observe(` /
        // `X.inc(` / `X.inc_by(` — receiver irrelevant, the method names
        // are reserved for metric handles in this file.)
        if mode == Mode::TelemetrySinks
            && t.kind == TokenKind::Ident
            && SINKS.contains(&t.text(ctx.src))
            && k > start
            && tok(k - 1).is_punct('.')
            && tok_is(ctx, sig, k + 1, '(')
        {
            if let Some(h) = held.iter().find(|h| h.rank >= SINK_MIN_RANK) {
                ctx.report(
                    out,
                    "telemetry-no-lock",
                    t.line,
                    format!(
                        "in `{fn_name}`: metric sink `.{}(` while holding {} (rank {}, line \
                         {}) — capture the value under the lock, record it after release",
                        t.text(ctx.src),
                        family_name(h.rank),
                        h.rank,
                        h.line,
                    ),
                );
            }
        }
        // Acquisition?
        if let Some(acq) = classify(ctx, &sig[..end], k) {
            if mode == Mode::Order && acq.blocking {
                for h in &held {
                    if h.rank >= acq.rank {
                        ctx.report(
                            out,
                            "lock-order",
                            t.line,
                            format!(
                                "in `{fn_name}`: blocking acquisition of {} (rank {}) while \
                                 holding {} (rank {}, line {}) — declared order is {}",
                                family_name(acq.rank),
                                acq.rank,
                                family_name(h.rank),
                                h.rank,
                                h.line,
                                order_string(),
                            ),
                        );
                    }
                }
            }
            held.push(Held {
                rank: acq.rank,
                depth: if in_condition { depth + 1 } else { depth },
                binding: stmt_let_binding.clone(),
                bound: stmt_let_binding.is_some() || in_condition,
                line: t.line,
            });
            k = acq.after;
            continue;
        }
        // One-level call inlining: free or `self.` call of a same-file fn.
        if mode == Mode::Order && t.kind == TokenKind::Ident && tok_is(ctx, sig, k + 1, '(') {
            let word = t.text(ctx.src);
            if !held.is_empty() && !preceded_by_path_sep(ctx, sig, k) && word != "drop" {
                if let Some(callee_ranks) = acquired_by_fn.get(word) {
                    for h in &held {
                        for (rank, line) in callee_ranks {
                            if *rank <= h.rank {
                                ctx.report(
                                    out,
                                    "lock-order",
                                    t.line,
                                    format!(
                                        "in `{fn_name}`: call to `{word}` (which blocks on {} \
                                         at line {line}, rank {rank}) while holding {} (rank \
                                         {}, line {}) — declared order is {}",
                                        family_name(*rank),
                                        family_name(h.rank),
                                        h.rank,
                                        h.line,
                                        order_string(),
                                    ),
                                );
                            }
                        }
                    }
                }
            }
        }
        k += 1;
    }
}

fn tok_is(ctx: &FileContext<'_>, sig: &[usize], k: usize, ch: char) -> bool {
    sig.get(k).is_some_and(|&j| ctx.tokens[j].is_punct(ch))
}

/// Words that appear in `let` patterns before the real binding ident.
fn is_pattern_word(word: &str) -> bool {
    matches!(word, "mut" | "ref" | "Some" | "Ok" | "Err" | "None" | "box" | "_")
}

fn order_string() -> String {
    FAMILY.iter().map(|(r, n)| format!("{n}({r})")).collect::<Vec<_>>().join(" < ")
}
