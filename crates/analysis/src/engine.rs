//! The rule engine: per-file context, the waiver grammar, and the
//! workspace walker.
//!
//! ## Waivers
//!
//! A finding is silenced by a *waiver* comment:
//!
//! ```text
//! // lint:allow(rule-id): why this site is exempt
//! ```
//!
//! A waiver on its own line covers the next source line (comment-only and
//! attribute-only lines in between are skipped, so waivers stack above
//! attributes); a waiver trailing code covers its own line. A waiver
//! **without a reason** — nothing after the `)`, or an empty reason — is
//! itself a violation (`waiver-reason`), and a waiver naming a rule this
//! binary does not know is a violation too (`waiver-unknown-rule`): a
//! typo'd waiver that silently waives nothing is worse than noise.
//!
//! ## Test context
//!
//! Files under a `tests/` directory are integration tests; regions under a
//! `#[cfg(test)]` (or `#[cfg(all(test, …))]`) module are unit tests. Each
//! rule decides whether test context is exempt — the panic-edge rule is
//! (tests panic by design), the unsafe-audit rule is not (unsafe needs a
//! `SAFETY:` argument everywhere).

use crate::lexer::{tokenize, Token, TokenKind};
use crate::rules;
use std::path::{Path, PathBuf};

/// One lint finding: a rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule that fired (e.g. `"panic-free-wire"`).
    pub rule: &'static str,
    /// The file, as passed to the engine (workspace-relative in
    /// `--workspace` mode).
    pub file: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// Human explanation of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file.display(), self.line, self.rule, self.message)
    }
}

/// A parsed waiver comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// The rule being waived.
    pub rule: String,
    /// The stated reason (may be empty — which is itself a finding).
    pub reason: String,
    /// Line the waiver comment sits on.
    pub line: u32,
    /// The line the waiver covers (its own line for a trailing waiver,
    /// the next source line for a standalone one).
    pub covers: u32,
}

/// Everything a rule needs to inspect one file.
pub struct FileContext<'a> {
    /// The file path, as reported in findings.
    pub path: &'a Path,
    /// Raw source text.
    pub src: &'a str,
    /// The token stream.
    pub tokens: &'a [Token],
    /// Parsed waivers.
    pub waivers: &'a [Waiver],
    /// Whether the whole file is test code (lives under `tests/`).
    pub test_file: bool,
    /// For each token index, whether it sits inside a `#[cfg(test)]` mod.
    pub in_test_region: &'a [bool],
}

impl FileContext<'_> {
    /// True when `rule` is waived for `line` by a reasoned waiver.
    pub fn waived(&self, rule: &str, line: u32) -> bool {
        self.waivers.iter().any(|w| w.rule == rule && w.covers == line && !w.reason.is_empty())
    }

    /// True when token `i` is in test context (test file or test region).
    pub fn is_test(&self, i: usize) -> bool {
        self.test_file || self.in_test_region.get(i).copied().unwrap_or(false)
    }

    /// The path as a `/`-joined string for suffix matching.
    pub fn path_str(&self) -> String {
        self.path.to_string_lossy().replace('\\', "/")
    }

    /// Emits a finding unless a waiver covers it.
    pub fn report(&self, out: &mut Vec<Finding>, rule: &'static str, line: u32, message: String) {
        if !self.waived(rule, line) {
            out.push(Finding { rule, file: self.path.to_path_buf(), line, message });
        }
    }
}

/// Lints one file's source under the given (possibly virtual) path. The
/// path matters: several rules are scoped to specific files.
pub fn lint_source(path: &Path, src: &str) -> Vec<Finding> {
    let tokens = tokenize(src);
    let waivers = parse_waivers(src, &tokens);
    let in_test_region = mark_test_regions(src, &tokens);
    let path_s = path.to_string_lossy().replace('\\', "/");
    let test_file = path_s.contains("/tests/") || path_s.starts_with("tests/");
    let ctx = FileContext {
        path,
        src,
        tokens: &tokens,
        waivers: &waivers,
        test_file,
        in_test_region: &in_test_region,
    };
    let mut out = Vec::new();
    check_waiver_hygiene(&ctx, &mut out);
    for rule in rules::ALL {
        (rule.check)(&ctx, &mut out);
    }
    out.sort_by_key(|f| (f.line, f.rule));
    out
}

/// Walks the workspace at `root` and lints every `.rs` file, returning
/// findings with root-relative paths. Skips `target/` build output and
/// this crate's own rule fixtures (which contain violations *on purpose*).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel))?;
        out.extend(lint_source(&rel, &src));
    }
    Ok(out)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let rel_s = rel.to_string_lossy().replace('\\', "/");
        if SKIP_DIRS.iter().any(|skip| rel_s == *skip || rel_s.starts_with(&format!("{skip}/"))) {
            continue;
        }
        let ty = entry.file_type()?;
        if ty.is_dir() {
            // Nested target dirs (e.g. a fixture workspace) are skipped too.
            if entry.file_name() == "target" || entry.file_name() == ".git" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if rel_s.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Directories the workspace walk never descends into: build output, and
/// the lint's own fixtures (deliberate violations used by the rule tests).
pub const SKIP_DIRS: &[&str] = &["target", "crates/analysis/tests/fixtures"];

/// The marker a waiver comment starts with (after the `//` and optional
/// doc-comment sigils).
const WAIVER_MARK: &str = "lint:allow(";

fn parse_waivers(src: &str, tokens: &[Token]) -> Vec<Waiver> {
    // Lines that hold nothing but comments/attributes — a standalone
    // waiver skips over these to find the line it covers.
    let line_count = src.lines().count() as u32 + 1;
    let mut has_code = vec![false; line_count as usize + 2];
    for t in tokens {
        if t.is_comment() {
            continue;
        }
        for l in t.line..=t.end_line {
            if let Some(slot) = has_code.get_mut(l as usize) {
                *slot = true;
            }
        }
    }
    let mut waivers = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let body = t.text(src).trim_start_matches('/').trim_start_matches('!').trim();
        let Some(rest) = body.strip_prefix(WAIVER_MARK) else { continue };
        let (rule, after) = match rest.split_once(')') {
            Some(pair) => pair,
            None => (rest, ""),
        };
        let reason = after.trim().strip_prefix(':').map(str::trim).unwrap_or("").to_string();
        let trailing = has_code.get(t.line as usize).copied().unwrap_or(false);
        let covers = if trailing {
            t.line
        } else {
            // The next line with code on it; attribute/comment/blank lines
            // in between are skipped (bounded by EOF).
            (t.line + 1..line_count + 1)
                .find(|&l| has_code.get(l as usize).copied().unwrap_or(false))
                .unwrap_or(t.line)
        };
        waivers.push(Waiver { rule: rule.trim().to_string(), reason, line: t.line, covers });
    }
    waivers
}

/// Waiver hygiene: every waiver must name a known rule and state a reason.
fn check_waiver_hygiene(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for w in ctx.waivers {
        if w.reason.is_empty() {
            out.push(Finding {
                rule: "waiver-reason",
                file: ctx.path.to_path_buf(),
                line: w.line,
                message: format!(
                    "waiver for `{}` states no reason — write \
                     `// lint:allow({}): <why this site is exempt>`",
                    w.rule, w.rule
                ),
            });
        }
        if !rules::ALL.iter().any(|r| r.id == w.rule) {
            out.push(Finding {
                rule: "waiver-unknown-rule",
                file: ctx.path.to_path_buf(),
                line: w.line,
                message: format!(
                    "waiver names unknown rule `{}` (known: {})",
                    w.rule,
                    rules::ALL.iter().map(|r| r.id).collect::<Vec<_>>().join(", ")
                ),
            });
        }
    }
}

/// Marks every token inside a `#[cfg(test)] mod … { … }` region (also
/// `#[cfg(all(test, …))]` and friends: any `cfg` attribute whose argument
/// list mentions the bare ident `test`).
fn mark_test_regions(src: &str, tokens: &[Token]) -> Vec<bool> {
    let mut marked = vec![false; tokens.len()];
    let sig: Vec<usize> = (0..tokens.len()).filter(|&i| !tokens[i].is_comment()).collect();
    let mut k = 0usize;
    while k < sig.len() {
        if let Some(body_open) = test_mod_at(src, tokens, &sig, k) {
            // Mark from the opening brace to its match.
            let mut depth = 0i32;
            for &j in &sig[body_open..] {
                match tokens[j].kind {
                    TokenKind::Punct('{') => depth += 1,
                    TokenKind::Punct('}') => depth -= 1,
                    _ => {}
                }
                marked[j] = true;
                if depth == 0 && tokens[j].is_punct('}') {
                    break;
                }
            }
        }
        k += 1;
    }
    marked
}

/// If significant-token position `k` starts `#[cfg(…test…)]` followed (after
/// any further attributes) by `mod name {`, returns the sig-index of the
/// `{`.
fn test_mod_at(src: &str, tokens: &[Token], sig: &[usize], k: usize) -> Option<usize> {
    let tk = |i: usize| -> Option<&Token> { sig.get(i).map(|&j| &tokens[j]) };
    if !(tk(k)?.is_punct('#') && tk(k + 1)?.is_punct('[') && tk(k + 2)?.is_ident(src, "cfg")) {
        return None;
    }
    // Scan the attribute's bracket group for a bare `test` ident.
    let mut depth = 0i32;
    let mut i = k + 1;
    let mut saw_test = false;
    loop {
        let t = tk(i)?;
        match t.kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokenKind::Ident if t.text(src) == "test" => saw_test = true,
            _ => {}
        }
        i += 1;
    }
    if !saw_test {
        return None;
    }
    // Skip any further attributes between the cfg and the item.
    let mut i = i + 1;
    while tk(i)?.is_punct('#') && tk(i + 1)?.is_punct('[') {
        let mut depth = 0i32;
        let mut j = i + 1;
        loop {
            let t = tk(j)?;
            match t.kind {
                TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        i = j + 1;
    }
    if !tk(i)?.is_ident(src, "mod") {
        return None;
    }
    // `mod name {` — find the `{` (there is none for `mod name;`).
    let brace = i + 2;
    if tk(brace)?.is_punct('{') {
        Some(brace)
    } else {
        None
    }
}
