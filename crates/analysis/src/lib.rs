//! `explain3d-analysis`: in-tree static analysis for the Explain3D
//! workspace.
//!
//! The workspace has accumulated invariants that rustc and clippy cannot
//! express — "decoding arbitrary bytes never panics in these four files",
//! "every `unsafe` carries a written soundness argument", "the registry's
//! locks nest in one global order". This crate pins them: a hand-written
//! Rust lexer (no external parser — the tool is std-only and offline)
//! feeds a small rule engine, and `cargo run -p explain3d-analysis --
//! --workspace` fails CI when any rule fires without a reasoned waiver.
//!
//! The pieces:
//! - [`lexer`] — a real tokenizer (nested block comments, raw strings,
//!   byte/char literals, lifetimes) so string literals and comments can
//!   never false-positive a rule;
//! - [`engine`] — per-file context, the `// lint:allow(rule): reason`
//!   waiver grammar, `#[cfg(test)]` region tracking, the workspace walk;
//! - [`rules`] — the rule catalog (R1–R5);
//! - [`lock_order`] — the rank-discipline checker for the session
//!   registry's lock family.

pub mod engine;
pub mod lexer;
pub mod lock_order;
pub mod rules;

pub use engine::{lint_source, lint_workspace, Finding};
