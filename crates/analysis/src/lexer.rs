//! A real Rust lexer — the foundation every rule reads source through.
//!
//! Regexes over raw source misfire on exactly the constructs Rust makes
//! easy: `"unsafe"` inside a string, `partial_cmp` inside a doc comment,
//! `r#"extern "C""#` inside a raw string, nested `/* /* */ */` block
//! comments, `'a` lifetimes vs `'a'` char literals. This lexer resolves
//! all of those into a flat token stream, so a rule that asks "is there an
//! `unwrap` *identifier* here" can never be fooled by comment or literal
//! content — and conversely, the comment tokens are preserved (with their
//! text and line spans) because two rules *read* them: `safety-comments`
//! looks for `SAFETY:` annotations and the waiver engine looks for
//! `lint:allow(...)` markers.
//!
//! The lexer is deliberately lossless about position: every token carries
//! its byte range and 1-based start/end lines, so findings point at real
//! source lines.

/// What a token is. Literal kinds are collapsed to what the rules need:
/// all string-like literals are [`TokenKind::Str`], all numeric literals
/// are [`TokenKind::Number`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unsafe`, `partial_cmp`, `r#async`).
    Ident,
    /// A lifetime (`'a`, `'static`) — distinguished from char literals.
    Lifetime,
    /// A string, raw string, byte string, char, or byte literal.
    Str,
    /// An integer or float literal (suffixes included).
    Number,
    /// A single punctuation character (`.`, `[`, `!`, …).
    Punct(char),
    /// A `//` comment (doc comments `///` and `//!` included).
    LineComment,
    /// A `/* … */` comment, nesting handled; may span lines.
    BlockComment,
}

/// One token: kind plus its byte range and line span in the source.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based line of the last byte (differs from `line` only for block
    /// comments and multi-line string literals).
    pub end_line: u32,
}

impl Token {
    /// The token's text, borrowed from the source it was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// True for an `Ident` token spelling exactly `word`.
    pub fn is_ident(&self, src: &str, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text(src) == word
    }

    /// True for the given punctuation character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct(ch)
    }

    /// True for a comment of either flavour.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Lexes `src` into a token stream. Unterminated literals or comments are
/// tolerated (the remainder becomes one token) — a lint must never panic
/// on the code it is judging.
pub fn tokenize(src: &str) -> Vec<Token> {
    Lexer { src: src.as_bytes(), pos: 0, line: 1, tokens: Vec::new() }.run(src)
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn run(mut self, text: &str) -> Vec<Token> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.src[self.pos];
            match b {
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                    self.push(TokenKind::LineComment, start, line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment();
                    self.push(TokenKind::BlockComment, start, line);
                }
                b'r' | b'b' if self.raw_or_byte_string() => {
                    self.push(TokenKind::Str, start, line);
                }
                b'"' => {
                    self.pos += 1;
                    self.string_body(b'"');
                    self.push(TokenKind::Str, start, line);
                }
                b'\'' => {
                    if self.lifetime_not_char() {
                        self.pos += 1; // the quote
                        while self.pos < self.src.len() && is_ident_byte(self.src[self.pos]) {
                            self.pos += 1;
                        }
                        self.push(TokenKind::Lifetime, start, line);
                    } else {
                        self.pos += 1;
                        self.string_body(b'\'');
                        self.push(TokenKind::Str, start, line);
                    }
                }
                b'0'..=b'9' => {
                    self.number();
                    self.push(TokenKind::Number, start, line);
                }
                _ if is_ident_start(b) || b >= 0x80 => {
                    // `r#ident` raw identifiers were handled above only when
                    // they open a raw *string*; `r#fn` falls through to here
                    // via the `r` arm returning false.
                    self.pos += 1;
                    while self.pos < self.src.len() && is_ident_byte(self.src[self.pos]) {
                        self.pos += 1;
                    }
                    self.push(TokenKind::Ident, start, line);
                }
                _ => {
                    self.pos += 1;
                    self.push(TokenKind::Punct(b as char), start, line);
                }
            }
        }
        debug_assert!(self.tokens.iter().all(|t| text.get(t.start..t.end).is_some()));
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        self.tokens.push(Token { kind, start, end: self.pos, line, end_line: self.line });
    }

    /// Consumes a `/* … */` comment with nesting. `self.pos` sits on `/`.
    fn block_comment(&mut self) {
        let mut depth = 0usize;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.pos += 2;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    self.pos += 2;
                    depth -= 1;
                    if depth == 0 {
                        return;
                    }
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br"…"`, `b'…'` starting at
    /// `self.pos`. Returns true (with the literal consumed) when one was
    /// present; false (position untouched) when the `r`/`b` begins an
    /// identifier like `raw` or `buffer` — or a raw identifier `r#match`.
    fn raw_or_byte_string(&mut self) -> bool {
        let rest = &self.src[self.pos..];
        // b'…' byte literal.
        if rest.first() == Some(&b'b') && rest.get(1) == Some(&b'\'') {
            self.pos += 2;
            self.string_body(b'\'');
            return true;
        }
        // b"…" byte string.
        if rest.first() == Some(&b'b') && rest.get(1) == Some(&b'"') {
            self.pos += 2;
            self.string_body(b'"');
            return true;
        }
        // r"…" / r#"…"# / br"…" / br#"…"# raw (byte) strings.
        let mut i = 0;
        if rest.first() == Some(&b'b') {
            i += 1;
        }
        if rest.get(i) != Some(&b'r') {
            return false;
        }
        i += 1;
        let mut hashes = 0usize;
        while rest.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        if rest.get(i) != Some(&b'"') {
            return false; // r#ident raw identifier, or plain ident.
        }
        self.pos += i + 1;
        // Scan to `"` followed by `hashes` hash marks. No escapes in raw
        // strings — that is the whole point of raw strings.
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            if b == b'\n' {
                self.line += 1;
            }
            if b == b'"' {
                let after = &self.src[self.pos + 1..];
                if after.len() >= hashes && after[..hashes].iter().all(|&c| c == b'#') {
                    self.pos += 1 + hashes;
                    return true;
                }
            }
            self.pos += 1;
        }
        true // unterminated: consumed to EOF
    }

    /// Consumes a quoted body (past the opening quote) up to an unescaped
    /// `close`, honouring `\` escapes and counting newlines.
    fn string_body(&mut self, close: u8) {
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2.min(self.src.len() - self.pos),
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b if b == close => {
                    self.pos += 1;
                    return;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// At a `'`: lifetime (`'a`, `'static`) or char literal (`'a'`,
    /// `'\n'`)? A lifetime is `'` + ident-start not followed by a closing
    /// quote right after one ident char — `'a'` is a char, `'ab` is a
    /// lifetime (`'ab'` is not valid Rust; treat as lifetime + stray).
    fn lifetime_not_char(&self) -> bool {
        match self.peek(1) {
            Some(c) if is_ident_start(c) => self.peek(2) != Some(b'\''),
            _ => false,
        }
    }

    /// Consumes a numeric literal: ints, floats, radix prefixes, `_`
    /// separators, type suffixes, exponents. `1..2` stops before `..`.
    fn number(&mut self) {
        self.pos += 1;
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            if b.is_ascii_alphanumeric() || b == b'_' {
                // `1e-3` / `1E+3`: the sign belongs to the literal.
                if (b == b'e' || b == b'E')
                    && matches!(self.peek(1), Some(b'+') | Some(b'-'))
                    && matches!(self.peek(2), Some(c) if c.is_ascii_digit())
                {
                    self.pos += 2;
                }
                self.pos += 1;
            } else if b == b'.' && matches!(self.peek(1), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            } else {
                return;
            }
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src).iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    #[test]
    fn comments_hide_code_tokens() {
        let src = "// unsafe unwrap()\n/* partial_cmp /* nested */ still comment */ fn ok() {}";
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::LineComment);
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert!(toks[1].1.contains("nested"));
        assert!(toks[1].1.ends_with("*/"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "fn"));
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "partial_cmp"));
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let src = r####"let x = r#"extern "C" unsafe"# ; let y = r"plain";"####;
        let toks = kinds(src);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[0].1.contains("extern"));
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "unsafe"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; let q = '\\''; }";
        let toks = kinds(src);
        let lifetimes: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2, "{toks:?}");
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert_eq!(chars.len(), 3, "{toks:?}");
    }

    #[test]
    fn byte_literals_and_raw_identifiers() {
        let src = "m.insert(b'x', b\"bytes\"); let r#fn = br#\"raw \" bytes\"#; rustle(r, b);";
        let toks = kinds(src);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert_eq!(strs.len(), 3, "{strs:?}");
        // `r#fn` lexes as punct-ish raw ident pieces or ident — what matters
        // is that `rustle`, `r`, and `b` stay ordinary identifiers.
        for w in ["rustle", "r", "b"] {
            assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == w), "missing {w}");
        }
    }

    #[test]
    fn numbers_do_not_eat_range_or_method_dots() {
        let src = "a[1..2]; 1.5e-3; 0x_ffu32; (7).pow(2); 1e9;";
        let toks = kinds(src);
        let nums: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Number).map(|(_, t)| t.as_str()).collect();
        assert_eq!(nums, vec!["1", "2", "1.5e-3", "0x_ffu32", "7", "2", "1e9"]);
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "a\n/*\n\n*/\nb \"x\ny\" c";
        let toks = tokenize(src);
        let b = toks.iter().find(|t| t.is_ident(src, "b")).expect("b");
        assert_eq!(b.line, 5);
        let c = toks.iter().find(|t| t.is_ident(src, "c")).expect("c");
        assert_eq!(c.line, 6);
        let block = toks.iter().find(|t| t.kind == TokenKind::BlockComment).expect("block");
        assert_eq!((block.line, block.end_line), (2, 4));
    }

    #[test]
    fn never_panics_on_garbage() {
        for src in ["\"unterminated", "/* open", "r#\"open", "'", "b'", "\\", "€𝄞'a"] {
            let _ = tokenize(src);
        }
    }
}
