//! Equivalence tests for the performance-optimised hot paths.
//!
//! The PR that introduced the interned similarity kernel, the indexed
//! [`TupleMapping`], and parallel Stage-2 solving guarantees that none of
//! them changes observable behaviour. These tests pin that contract:
//!
//! 1. blocked and unblocked candidate generation agree above
//!    `min_similarity` (for pairs blocking can see at all);
//! 2. parallel and sequential pipeline runs produce identical
//!    `ExplanationSet`s and scores;
//! 3. the indexed `TupleMapping` lookups agree with the original
//!    linear-scan semantics, duplicate pairs included;
//! 4. **streaming** candidate generation (bounded pair chunks fed straight
//!    to the parallel scorer, never materialising the full pair list)
//!    retains byte-identical candidates to `candidate_pairs_naive` across
//!    seeded random datasets and chunk sizes;
//! 5. the batch-packed Stage-2 partition produces the same explanations as
//!    the unpacked strategies, and parallel runs stay byte-identical to
//!    sequential ones under a *node-limited* (deterministic-deadline)
//!    search even when the limit is hit.

use explain3d::datagen::rng::{Rng, SeedableRng, StdRng};
use explain3d::datagen::{generate_synthetic, vocab, SyntheticConfig};
use explain3d::linkage::{
    candidate_pairs, candidate_pairs_naive, candidate_pairs_streaming, token_set, Candidate,
    MappingConfig,
};
use explain3d::prelude::*;

/// A pair of relations with phrase + year attributes and overlapping
/// vocabulary, the shape the linkage layer sees after canonicalisation.
fn workload(rows: usize, vocab_size: usize) -> (Schema, Vec<Row>, Schema, Vec<Row>) {
    let schema = Schema::from_pairs(&[("name", ValueType::Str), ("year", ValueType::Int)]);
    let make_rows = |seed: u64| -> Vec<Row> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..rows)
            .map(|_| {
                let words = rng.gen_range(1..=4usize);
                let phrase = vocab::synthetic_phrase(&mut rng, vocab_size, words);
                let year = rng.gen_range(1999..2005i64);
                Row::new(vec![Value::str(phrase), Value::Int(year)])
            })
            .collect()
    };
    (schema.clone(), make_rows(11), schema, make_rows(12))
}

fn mapping_config() -> MappingConfig {
    MappingConfig::new(vec![
        ("name".to_string(), "name".to_string()),
        ("year".to_string(), "year".to_string()),
    ])
}

/// True when blocking has any way to discover the pair: a shared name token
/// or an equal year.
fn blockable(lrow: &Row, rrow: &Row) -> bool {
    let shared_token = match (lrow.get(0), rrow.get(0)) {
        (Some(Value::Str(a)), Some(Value::Str(b))) => !token_set(a).is_disjoint(&token_set(b)),
        _ => false,
    };
    let same_year = match (lrow.get(1), rrow.get(1)) {
        (Some(Value::Int(a)), Some(Value::Int(b))) => a == b,
        _ => false,
    };
    shared_token || same_year
}

#[test]
fn blocked_and_unblocked_candidates_agree_above_min_similarity() {
    let (ls, lr, rs, rr) = workload(120, 60);
    let cfg = mapping_config().with_min_similarity(0.1);
    let blocked = candidate_pairs(&ls, &lr, &rs, &rr, &cfg);
    let unblocked = candidate_pairs(&ls, &lr, &rs, &rr, &cfg.clone().without_blocking());
    assert!(!blocked.is_empty() && !unblocked.is_empty());

    let mut unblocked_sorted: Vec<Candidate> = unblocked.clone();
    unblocked_sorted.sort();
    // Blocking only prunes: every blocked candidate appears in the
    // exhaustive scan with a bit-identical similarity.
    for c in &blocked {
        assert!(
            unblocked_sorted.binary_search_by(|p| p.cmp(c)).is_ok(),
            "blocked candidate ({}, {}) missing from the exhaustive scan",
            c.left,
            c.right
        );
    }
    // ... and blocking loses nothing it can see: every exhaustive candidate
    // above the floor whose rows share a blocking key is also found.
    let mut blocked_sorted: Vec<Candidate> = blocked.clone();
    blocked_sorted.sort();
    for c in &unblocked {
        if blockable(&lr[c.left], &rr[c.right]) {
            assert!(
                blocked_sorted.binary_search_by(|p| p.cmp(c)).is_ok(),
                "blocking missed discoverable candidate ({}, {})",
                c.left,
                c.right
            );
        }
    }
}

#[test]
fn interned_candidates_match_naive_scoring_end_to_end() {
    let (ls, lr, rs, rr) = workload(150, 80);
    for blocking in [true, false] {
        let mut cfg = mapping_config();
        cfg.use_blocking = blocking;
        let fast = candidate_pairs(&ls, &lr, &rs, &rr, &cfg);
        let naive = candidate_pairs_naive(&ls, &lr, &rs, &rr, &cfg);
        assert_eq!(fast.len(), naive.len(), "blocking={blocking}");
        for (f, n) in fast.iter().zip(naive.iter()) {
            assert_eq!((f.left, f.right), (n.left, n.right), "blocking={blocking}");
            assert_eq!(
                f.similarity.to_bits(),
                n.similarity.to_bits(),
                "similarity differs for ({}, {})",
                f.left,
                f.right
            );
        }
    }
}

/// Asserts that the streaming generator retains byte-identical candidates
/// to the naive reference on the given workload for several chunk sizes.
fn assert_streaming_matches_naive(rows: usize, vocab_size: usize, chunk_sizes: &[usize]) {
    let (ls, lr, rs, rr) = workload(rows, vocab_size);
    for blocking in [true, false] {
        let mut cfg = mapping_config();
        cfg.use_blocking = blocking;
        let naive = candidate_pairs_naive(&ls, &lr, &rs, &rr, &cfg);
        for &chunk in chunk_sizes {
            let cfg = cfg.clone().with_chunk_pairs(chunk);
            let (fast, stats) = candidate_pairs_streaming(&ls, &lr, &rs, &rr, &cfg);
            assert_eq!(fast.len(), naive.len(), "rows={rows} blocking={blocking} chunk={chunk}");
            for (f, n) in fast.iter().zip(naive.iter()) {
                assert_eq!((f.left, f.right), (n.left, n.right), "chunk={chunk}");
                assert_eq!(
                    f.similarity.to_bits(),
                    n.similarity.to_bits(),
                    "similarity differs for ({}, {}) at chunk={chunk}",
                    f.left,
                    f.right
                );
            }
            // The streaming contract: residency is bounded by the wave of
            // chunks in flight, and every enumerated pair was scored.
            let threads = explain3d::parallel::max_threads().max(1);
            assert!(
                stats.peak_resident_pairs <= threads * stats.chunk_pairs,
                "peak {} exceeds threads {threads} × chunk {}",
                stats.peak_resident_pairs,
                stats.chunk_pairs
            );
            assert!(stats.pairs_scored >= naive.len(), "scored at least the retained pairs");
            assert_eq!(stats.chunks, stats.pairs_scored.div_ceil(stats.chunk_pairs.max(1)));
        }
    }
}

#[test]
fn streaming_candidates_match_naive_across_seeded_datasets() {
    assert_streaming_matches_naive(60, 40, &[1, 7, 64, 100_000]);
    assert_streaming_matches_naive(130, 70, &[13, 256]);
}

/// Larger seeded dataset for the `--include-ignored` stress lane in CI.
#[test]
#[ignore = "stress suite: run with --include-ignored"]
fn streaming_candidates_match_naive_on_a_large_dataset() {
    assert_streaming_matches_naive(900, 300, &[1000, 8192]);
}

#[test]
fn parallel_and_sequential_pipelines_are_byte_identical() {
    let case = generate_synthetic(&SyntheticConfig::new(120, 0.3, 400));
    // Deterministic MILP bound (nodes, not wall-clock) so both runs explore
    // identical search trees regardless of scheduling.
    let milp = MilpConfig { time_limit: None, max_nodes: 2_000, ..Default::default() };
    for config in [
        Explain3DConfig::batched(30).with_milp(milp.clone()),
        Explain3DConfig::connected_components().with_milp(milp.clone()),
    ] {
        let run = |parallel: bool| {
            Explain3D::new(config.clone().with_parallel(parallel)).explain(
                &case.prepared.left_canonical,
                &case.prepared.right_canonical,
                &case.attribute_matches,
                &case.initial_mapping,
            )
        };
        let par = run(true);
        let seq = run(false);
        assert_eq!(par.explanations, seq.explanations, "strategy {:?}", config.strategy);
        assert_eq!(par.log_probability.to_bits(), seq.log_probability.to_bits());
        assert_eq!(par.complete, seq.complete);
        assert_eq!(par.stats.num_subproblems, seq.stats.num_subproblems);
        assert_eq!(par.stats.milp_nodes, seq.stats.milp_nodes);
        assert_eq!(par.stats.suboptimal_subproblems, seq.stats.suboptimal_subproblems);
        assert!(par.stats.num_subproblems >= 2, "workload should actually partition");
    }
}

/// The deterministic-deadline regression ROADMAP asks for: when the MILP
/// search is bounded by a *node budget* instead of a wall-clock time limit,
/// parallel and sequential Stage-2 runs must stay byte-identical **even
/// when sub-problems hit the limit**. (With the default wall-clock
/// `time_limit`, a limit-hit search may explore fewer nodes under thread
/// contention — that is the only nondeterminism window, and this test pins
/// it down to exactly that case.)
#[test]
fn node_limited_deadline_is_deterministic_even_when_hit() {
    let case = generate_synthetic(&SyntheticConfig::new(90, 0.35, 300));
    // A node budget tight enough that some sub-problems cannot prove
    // optimality — the scenario where a wall-clock limit would diverge.
    let milp = MilpConfig { time_limit: None, max_nodes: 3, ..Default::default() };
    let config = Explain3DConfig::batched(24).with_milp(milp);
    let run = |parallel: bool| {
        Explain3D::new(config.clone().with_parallel(parallel)).explain(
            &case.prepared.left_canonical,
            &case.prepared.right_canonical,
            &case.attribute_matches,
            &case.initial_mapping,
        )
    };
    let par = run(true);
    let seq = run(false);
    assert!(
        par.stats.suboptimal_subproblems > 0,
        "the node budget must actually be hit for this regression to bite"
    );
    assert_eq!(par.explanations, seq.explanations, "limit-hit outputs diverged");
    assert_eq!(par.log_probability.to_bits(), seq.log_probability.to_bits());
    assert_eq!(par.complete, seq.complete);
    assert_eq!(par.stats.milp_nodes, seq.stats.milp_nodes);
    assert_eq!(par.stats.milp_count, seq.stats.milp_count);
    assert_eq!(par.stats.suboptimal_subproblems, seq.stats.suboptimal_subproblems);
    // Re-running the parallel configuration is reproducible end to end.
    let again = run(true);
    assert_eq!(par.explanations, again.explanations);
    assert_eq!(par.log_probability.to_bits(), again.log_probability.to_bits());
}

/// The packed smart partition must not change *what* is explained: its
/// merged explanations agree with the connected-components strategy (which
/// is exact) on seeded synthetic workloads.
#[test]
fn packed_partition_explanations_agree_with_connected_components() {
    for (tuples, noise, vocab_size) in [(60usize, 0.3f64, 200usize), (100, 0.4, 350)] {
        let case = generate_synthetic(&SyntheticConfig::new(tuples, noise, vocab_size));
        let milp = MilpConfig { time_limit: None, max_nodes: 2_000, ..Default::default() };
        let run = |config: Explain3DConfig| {
            Explain3D::new(config.with_milp(milp.clone())).explain(
                &case.prepared.left_canonical,
                &case.prepared.right_canonical,
                &case.attribute_matches,
                &case.initial_mapping,
            )
        };
        let packed = run(Explain3DConfig::batched(30));
        let cc = run(Explain3DConfig::connected_components());
        // Explanation *content* agrees (evidence merge order legitimately
        // differs between partition layouts, so compare normalised parts
        // and the evidence as a set).
        assert_eq!(packed.explanations.provenance, cc.explanations.provenance);
        assert_eq!(packed.explanations.value, cc.explanations.value);
        let mut packed_ev: Vec<(usize, usize)> =
            packed.explanations.evidence.iter().map(|m| m.pair()).collect();
        let mut cc_ev: Vec<(usize, usize)> =
            cc.explanations.evidence.iter().map(|m| m.pair()).collect();
        packed_ev.sort_unstable();
        cc_ev.sort_unstable();
        assert_eq!(packed_ev, cc_ev, "evidence sets diverged");
        assert_eq!(packed.complete, cc.complete);
        // Packing reduces the part count to the target window while the
        // per-MILP work stays at component scale.
        assert!(packed.stats.num_subproblems <= cc.stats.num_subproblems);
        assert!(packed.stats.milp_count >= packed.stats.num_subproblems);
        assert_eq!(packed.stats.oversized_parts, 0);
    }
}

/// Linear-scan reference semantics for `TupleMapping` lookups, as
/// implemented before the hash index.
mod reference {
    use explain3d::prelude::TupleMatch;

    pub fn prob(ms: &[TupleMatch], left: usize, right: usize) -> Option<f64> {
        ms.iter().find(|m| m.left == left && m.right == right).map(|m| m.prob)
    }

    pub fn matches_of_left(ms: &[TupleMatch], left: usize) -> Vec<TupleMatch> {
        ms.iter().filter(|m| m.left == left).copied().collect()
    }

    pub fn matches_of_right(ms: &[TupleMatch], right: usize) -> Vec<TupleMatch> {
        ms.iter().filter(|m| m.right == right).copied().collect()
    }
}

#[test]
fn indexed_tuple_mapping_agrees_with_linear_scan_reference() {
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(900 + seed);
        let n = rng.gen_range(5..25usize);
        let mut ms: Vec<TupleMatch> = Vec::new();
        for _ in 0..rng.gen_range(0..60usize) {
            ms.push(TupleMatch::new(
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(1..100u32) as f64 / 100.0,
            ));
        }
        // Force duplicate pairs with different probabilities: the pinned
        // behaviour is that lookups resolve to the FIRST inserted match.
        if let Some(&m) = ms.first() {
            ms.push(TupleMatch::new(m.left, m.right, (m.prob / 2.0).max(0.01)));
        }

        let mapping = TupleMapping::from_matches(ms.clone());
        assert_eq!(mapping.matches(), &ms[..], "insertion order preserved");
        for left in 0..n {
            for right in 0..n {
                assert_eq!(
                    mapping.prob(left, right),
                    reference::prob(&ms, left, right),
                    "seed {seed}: prob({left}, {right})"
                );
                assert_eq!(
                    mapping.contains_pair(left, right),
                    reference::prob(&ms, left, right).is_some()
                );
            }
            let of_left: Vec<TupleMatch> =
                mapping.matches_of_left(left).into_iter().copied().collect();
            assert_eq!(of_left, reference::matches_of_left(&ms, left));
            let of_right: Vec<TupleMatch> =
                mapping.matches_of_right(left).into_iter().copied().collect();
            assert_eq!(of_right, reference::matches_of_right(&ms, left));
        }

        // Mutation keeps the index in sync with the reference.
        let mut mapping = mapping;
        let mut ms_ref = ms.clone();
        mapping.retain(|m| m.prob >= 0.4);
        ms_ref.retain(|m| m.prob >= 0.4);
        for left in 0..n {
            for right in 0..n {
                assert_eq!(mapping.prob(left, right), reference::prob(&ms_ref, left, right));
            }
        }
    }
}

/// A synthetic workload with one huge high-probability cluster (an
/// oversized component the partitioner flags and never cuts) surrounded by
/// many small couples. Before component-granularity scheduling, the part
/// holding the big component serialised the whole phase on one thread.
mod huge_component {
    use explain3d::core::prelude::{CanonicalRelation, CanonicalTuple};
    use explain3d::prelude::*;
    use explain3d_relation::prelude::{Row, Schema, Value, ValueType};

    fn canon(name: &str, n: usize, impact: impl Fn(usize) -> f64) -> CanonicalRelation {
        CanonicalRelation {
            query_name: name.to_string(),
            schema: Schema::from_pairs(&[("k", ValueType::Str)]),
            key_attrs: vec!["k".to_string()],
            tuples: (0..n)
                .map(|i| CanonicalTuple {
                    id: i,
                    key: vec![Value::str(format!("e{i}"))],
                    impact: impact(i),
                    members: vec![i],
                    representative: Row::new(vec![Value::str(format!("e{i}"))]),
                })
                .collect(),
            aggregate: None,
        }
    }

    /// `chain` tuples per side welded into ONE component by 0.95 matches,
    /// plus `couples` independent 2-tuple components.
    pub fn workload(
        chain: usize,
        couples: usize,
    ) -> (CanonicalRelation, CanonicalRelation, TupleMapping) {
        let n = chain + couples;
        let left = canon("Q1", n, |i| if i == 0 { 2.0 } else { 1.0 });
        let right = canon("Q2", n, |_| 1.0);
        let mut mapping = TupleMapping::new();
        for i in 0..chain {
            mapping.push(TupleMatch::new(i, i, 0.95));
            if i + 1 < chain {
                // Welds consecutive couples into one huge cluster.
                mapping.push(TupleMatch::new(i + 1, i, 0.95));
            }
        }
        for i in chain..n {
            mapping.push(TupleMatch::new(i, i, 0.92));
        }
        (left, right, mapping)
    }
}

/// The work-stealing Stage-2 scheduler must return byte-identical reports
/// for every thread count — including the layout where one part holds a
/// single huge component (flagged oversized) that previously serialised the
/// phase under one-thread-per-part scheduling.
#[test]
fn work_stealing_is_byte_identical_across_thread_counts() {
    let (left, right, mapping) = huge_component::workload(22, 24);
    let attr = explain3d::core::prelude::AttributeMatches::single_equivalent("k", "k");
    let milp = MilpConfig { time_limit: None, max_nodes: 300, ..Default::default() };
    // Batch 16 < the 44-tuple welded cluster: the cluster becomes a flagged
    // oversized part of its own; the couples pack into the other parts.
    let config = Explain3DConfig::batched(16).with_milp(milp);
    let run = |threads: usize| {
        Explain3D::new(config.clone().with_threads(threads)).explain(&left, &right, &attr, &mapping)
    };
    let base = run(1);
    assert!(base.stats.oversized_parts >= 1, "the huge cluster must be flagged oversized");
    assert!(
        base.stats.milp_count > base.stats.num_subproblems,
        "parts must decompose into more components than parts"
    );
    for threads in [2, 4, 8] {
        let par = run(threads);
        assert_eq!(base.explanations, par.explanations, "threads={threads}");
        assert_eq!(
            base.log_probability.to_bits(),
            par.log_probability.to_bits(),
            "threads={threads}"
        );
        assert_eq!(base.complete, par.complete);
        assert_eq!(base.stats.num_subproblems, par.stats.num_subproblems);
        assert_eq!(base.stats.milp_count, par.stats.milp_count);
        assert_eq!(base.stats.milp_nodes, par.stats.milp_nodes);
        assert_eq!(base.stats.suboptimal_subproblems, par.stats.suboptimal_subproblems);
        // Sequential runs never steal; parallel runs may.
        assert_eq!(base.stats.steals, 0);
    }
}

/// The sparse kernel (production default) and the retained dense baseline
/// must explain the pipeline workload identically up to equal-probability
/// ties: same provenance, same evidence set, same score.
#[test]
fn sparse_and_dense_kernels_explain_identically() {
    let case = generate_synthetic(&SyntheticConfig::new(100, 0.3, 350));
    let milp = MilpConfig { time_limit: None, max_nodes: 2_000, ..Default::default() };
    let run = |milp: MilpConfig| {
        Explain3D::new(Explain3DConfig::batched(25).with_milp(milp).with_parallel(false)).explain(
            &case.prepared.left_canonical,
            &case.prepared.right_canonical,
            &case.attribute_matches,
            &case.initial_mapping,
        )
    };
    let sparse = run(milp.clone());
    let dense = run(milp.with_lp_kernel(explain3d::milp::branch_bound::LpKernel::Dense));
    assert_eq!(sparse.explanations.provenance, dense.explanations.provenance);
    let mut sparse_ev: Vec<(usize, usize)> =
        sparse.explanations.evidence.iter().map(|m| m.pair()).collect();
    let mut dense_ev: Vec<(usize, usize)> =
        dense.explanations.evidence.iter().map(|m| m.pair()).collect();
    sparse_ev.sort_unstable();
    dense_ev.sort_unstable();
    assert_eq!(sparse_ev, dense_ev);
    assert!(
        (sparse.log_probability - dense.log_probability).abs()
            <= 1e-6 * (1.0 + dense.log_probability.abs()),
        "scores diverged: sparse {} dense {}",
        sparse.log_probability,
        dense.log_probability
    );
    assert_eq!(sparse.complete, dense.complete);
}
