//! Cross-crate integration tests: the full three-stage pipeline on the
//! paper's running example and on generated workloads, compared against the
//! baseline methods and the gold standard.

use explain3d::datagen::{
    generate_academic, generate_synthetic, generate_views, AcademicConfig, ImdbConfig,
    ImdbTemplate, SyntheticConfig,
};
use explain3d::prelude::*;

/// The Figure 1 / Example 2 comparison of Q1 (program list) and Q3
/// (per-college aggregates): a containment attribute match, a double-counted
/// program, and a missing program.
#[test]
fn running_example_q1_vs_q3_containment() {
    let mut d1 = Database::new();
    let mut programs = Relation::new(
        "D1",
        Schema::from_pairs(&[("program", ValueType::Str), ("college", ValueType::Str)]),
    );
    for (p, c) in [
        ("Accounting", "Business"),
        ("CS BA", "Computer Science"),
        ("CS BS", "Computer Science"),
        ("ECE", "Engineering"),
        ("EE", "Engineering"),
        ("Management", "Business"),
        ("Design", "Fine Arts"),
    ] {
        programs.insert_values([p, c]).unwrap();
    }
    d1.add(programs);
    let q1 = Query::scan("D1").named("Q1").count("program");

    let mut d3 = Database::new();
    let mut colleges = Relation::new(
        "D3",
        Schema::from_pairs(&[("college", ValueType::Str), ("num_bach", ValueType::Int)]),
    );
    colleges.insert_values::<[Value; 2], _>(["Business".into(), 2.into()]).unwrap();
    colleges.insert_values::<[Value; 2], _>(["Engineering".into(), 2.into()]).unwrap();
    colleges.insert_values::<[Value; 2], _>(["Computer Science".into(), 1.into()]).unwrap();
    d3.add(colleges);
    let q3 = Query::scan("D3").named("Q3").sum("num_bach");

    // (college of D1) ⊑... the queries match programs' colleges to D3 colleges.
    let matches = AttributeMatches::single_less_general("college", "college");
    let outcome = explain_disagreement(
        &QueryCase::new(d1, q1),
        &QueryCase::new(d3, q3),
        &matches,
        &ExplainOptions::default(),
    )
    .unwrap();

    // Q1 = 7 programs, Q3 = 5 bachelor degrees.
    assert_eq!(outcome.results.0, Value::Int(7));
    assert_eq!(outcome.results.1, Value::Int(5));
    assert!(outcome.report.complete);
    // Explanations: Fine Arts (Design) missing from D3, and the Computer
    // Science college counted twice in Q1 but listed with one degree in D3.
    let e = &outcome.report.explanations;
    assert_eq!(e.len(), 2, "explanations: {e:?}");
    assert_eq!(e.provenance.len() + e.value.len(), 2);
}

#[test]
fn explain3d_beats_the_baselines_on_the_academic_pair() {
    let case = generate_academic(&AcademicConfig { num_programs: 50, ..AcademicConfig::umass() });
    let gold = GoldStandard::new(case.gold.clone());
    let left = &case.prepared.left_canonical;
    let right = &case.prepared.right_canonical;

    let report = Explain3D::new(Explain3DConfig::batched(50)).explain(
        left,
        right,
        &case.attribute_matches,
        &case.initial_mapping,
    );
    let e3d = explanation_accuracy(&report.explanations, &gold).f_measure;

    let threshold = ThresholdBaseline::default().explain(left, right, &case.initial_mapping);
    let thr = explanation_accuracy(&threshold, &gold).f_measure;

    let formal = FormalExpBaseline::default().explain(left, right);
    let fe = explanation_accuracy(&formal, &gold).f_measure;

    assert!(e3d > 0.7, "Explain3D explanation F1 too low: {e3d}");
    assert!(e3d >= thr, "Explain3D ({e3d}) should not lose to THRESHOLD ({thr})");
    assert!(e3d > fe, "Explain3D ({e3d}) should beat FORMALEXP ({fe})");

    // Evidence accuracy mirrors the same ordering.
    let e3d_ev = evidence_accuracy(&report.explanations.evidence, &gold).f_measure;
    assert!(e3d_ev > 0.7, "evidence F1 too low: {e3d_ev}");
}

#[test]
fn synthetic_accuracy_is_near_perfect_for_all_strategies() {
    let case = generate_synthetic(&SyntheticConfig::new(60, 0.2, 400));
    let gold = GoldStandard::new(case.gold.clone());
    for config in [
        Explain3DConfig::no_opt(),
        Explain3DConfig::connected_components(),
        Explain3DConfig::batched(40),
    ] {
        let report = Explain3D::new(config.clone()).explain(
            &case.prepared.left_canonical,
            &case.prepared.right_canonical,
            &case.attribute_matches,
            &case.initial_mapping,
        );
        let expl = explanation_accuracy(&report.explanations, &gold);
        let evid = evidence_accuracy(&report.explanations.evidence, &gold);
        assert!(
            expl.f_measure > 0.9,
            "explanation F1 {:.3} too low for {:?}",
            expl.f_measure,
            config.strategy
        );
        assert!(
            evid.f_measure > 0.9,
            "evidence F1 {:.3} too low for {:?}",
            evid.f_measure,
            config.strategy
        );
    }
}

#[test]
fn smart_partitioning_bounds_subproblem_sizes_without_losing_accuracy() {
    let case = generate_synthetic(&SyntheticConfig::new(200, 0.25, 800));
    let gold = GoldStandard::new(case.gold.clone());

    let unpartitioned = Explain3D::new(Explain3DConfig::connected_components()).explain(
        &case.prepared.left_canonical,
        &case.prepared.right_canonical,
        &case.attribute_matches,
        &case.initial_mapping,
    );
    let batched = Explain3D::new(Explain3DConfig::batched(60)).explain(
        &case.prepared.left_canonical,
        &case.prepared.right_canonical,
        &case.attribute_matches,
        &case.initial_mapping,
    );

    assert!(batched.stats.max_subproblem_size <= 60);
    assert!(batched.stats.num_subproblems >= unpartitioned.stats.num_subproblems.min(2));

    let f_unpart = explanation_accuracy(&unpartitioned.explanations, &gold).f_measure;
    let f_batch = explanation_accuracy(&batched.explanations, &gold).f_measure;
    assert!(
        f_batch >= f_unpart - 0.05,
        "partitioning lost accuracy: {f_batch:.3} vs {f_unpart:.3}"
    );
}

#[test]
fn imdb_template_pipeline_produces_complete_explanations() {
    let views =
        generate_views(&ImdbConfig { num_movies: 150, num_persons: 180, ..Default::default() });
    let case =
        views.case(ImdbTemplate::TotalGross, &views.default_param(ImdbTemplate::TotalGross, 12));
    let report = Explain3D::new(Explain3DConfig::batched(80)).explain(
        &case.prepared.left_canonical,
        &case.prepared.right_canonical,
        &case.attribute_matches,
        &case.initial_mapping,
    );
    assert!(report.complete, "explanations must be complete");
    let gold = GoldStandard::new(case.gold.clone());
    let acc = explanation_accuracy(&report.explanations, &gold);
    assert!(acc.f_measure > 0.6, "IMDb explanation F1 {:.3}", acc.f_measure);
}

#[test]
fn stage_three_summary_compresses_academic_explanations() {
    let case = generate_academic(&AcademicConfig {
        num_programs: 70,
        associate_only_fraction: 0.25,
        ..AcademicConfig::umass()
    });
    let report = Explain3D::new(Explain3DConfig::batched(60)).explain(
        &case.prepared.left_canonical,
        &case.prepared.right_canonical,
        &case.attribute_matches,
        &case.initial_mapping,
    );
    let summary = summarize_side(
        &report.explanations,
        Side::Left,
        &case.prepared.left_canonical,
        &SummarizerConfig::default(),
    );
    let num_left_explanations = report.explanations.provenance_tuples(Side::Left).len()
        + report.explanations.value_changes(Side::Left).len();
    assert!(num_left_explanations > 5, "expected a sizeable explanation set");
    assert!(
        summary.size() < num_left_explanations,
        "summary ({}) should be smaller than the explanation list ({num_left_explanations})",
        summary.size()
    );
    // The associate-degree pattern should be discovered.
    assert!(summary
        .patterns
        .iter()
        .any(|p| p.conditions.iter().any(|(_, v)| v.to_string().contains("Associate"))));
}
