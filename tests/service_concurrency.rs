//! Concurrency torture for the service registry: M threads × K sessions
//! issuing randomized interleaved create/delta/explain/report operations.
//!
//! The serving invariant under test: **any** interleaving of concurrent
//! requests yields, per session, reports byte-identical
//! (`report_fingerprint`) to the same operations applied serially in the
//! order the registry admitted them — including when queued deltas are
//! coalesced into one `re_explain`, and including after LRU eviction and
//! re-creation. The registry's applied-delta log (`record_deltas`) is the
//! serial-replay oracle: replaying each session's log on a fresh
//! single-threaded session must land on the same fingerprint as the
//! session's last stored report.

use explain3d::datagen::rng::{Rng, SeedableRng, StdRng};
use explain3d::prelude::*;
use explain3d::service::registry::ServiceConfig;
use explain3d::service::wire::CreateRequest;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn canon(name: &str, entries: &[(String, f64)]) -> CanonicalRelation {
    CanonicalRelation {
        query_name: name.to_string(),
        schema: Schema::from_pairs(&[("k", ValueType::Str)]),
        key_attrs: vec!["k".to_string()],
        tuples: entries
            .iter()
            .enumerate()
            .map(|(i, (k, imp))| CanonicalTuple {
                id: i,
                key: vec![Value::str(k.clone())],
                impact: *imp,
                members: vec![i],
                representative: Row::new(vec![Value::str(k.clone())]),
            })
            .collect(),
        aggregate: None,
    }
}

fn tuple(key: &str, impact: f64) -> CanonicalTuple {
    CanonicalTuple {
        id: 0,
        key: vec![Value::str(key)],
        impact,
        members: vec![],
        representative: Row::new(vec![Value::str(key)]),
    }
}

/// The base relations of session `s`: small, distinct per session, with
/// some overlap between sides so components are non-trivial. Keys are
/// single tokens unique per entity, so token blocking keeps the mapping
/// graph sparse and every MILP component tiny — the torture pressure is on
/// the registry's concurrency, not the solver.
fn base_request(s: usize) -> CreateRequest {
    let left: Vec<(String, f64)> =
        (0..5).map(|i| (format!("e{s}x{i}"), if i == 0 { 2.0 } else { 1.0 })).collect();
    let right: Vec<(String, f64)> = (0..4).map(|i| (format!("e{s}x{i}"), 1.0)).collect();
    CreateRequest {
        left: canon("Q1", &left),
        right: canon("Q2", &right),
        matches: AttributeMatches::single_equivalent("k", "k"),
        config: explain3d::incremental::SessionConfig::default(),
    }
}

/// A small random delta. Indices are drawn from the base sizes, so under
/// churn some ops go out of range — those must come back as typed errors
/// and leave the session untouched, exactly like serial execution.
fn random_delta(rng: &mut StdRng, session: usize, step: usize) -> RelationDelta {
    let side = if rng.gen_range(0..2u32) == 0 { Side::Left } else { Side::Right };
    match rng.gen_range(0..3u32) {
        0 => RelationDelta::new().insert(side, tuple(&format!("n{session}x{step}"), 1.0)),
        1 => RelationDelta::new().update(
            side,
            rng.gen_range(0..4usize),
            tuple(&format!("u{session}x{step}"), rng.gen_range(1..4i64) as f64),
        ),
        _ => RelationDelta::new().delete(side, rng.gen_range(0..5usize)),
    }
}

/// Replays a session's applied-delta log serially on a fresh session and
/// returns the final fingerprint.
fn serial_replay(session: usize, log: &[RelationDelta]) -> Vec<u8> {
    let req = base_request(session);
    let mut s = ExplainSession::new(req.left, req.right, req.matches, req.config);
    let mut report = s.explain();
    for delta in log {
        report =
            s.re_explain(delta).expect("logged deltas were applied once, so they replay cleanly");
    }
    report_fingerprint(&report)
}

#[test]
fn randomized_interleavings_match_serial_replay() {
    const THREADS: usize = 4;
    const SESSIONS: usize = 4;
    const OPS_PER_THREAD: usize = 24;

    let registry = Arc::new(SessionRegistry::new(ServiceConfig {
        memory_budget: None,
        record_deltas: true,
        ..Default::default()
    }));
    for s in 0..SESSIONS {
        registry.create(&format!("s{s}"), base_request(s)).unwrap();
        registry.explain(&format!("s{s}"), None).unwrap();
    }

    let delta_errors = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = Arc::clone(&registry);
            let delta_errors = Arc::clone(&delta_errors);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(1000 + t as u64);
                for step in 0..OPS_PER_THREAD {
                    let s = rng.gen_range(0..SESSIONS);
                    let name = format!("s{s}");
                    match rng.gen_range(0..10u32) {
                        // Mostly deltas: that is where coalescing and the
                        // incremental path live.
                        0..=6 => {
                            let delta = random_delta(&mut rng, s, t * 1000 + step);
                            match registry.delta(&name, delta, None) {
                                Ok(outcome) => assert!(outcome.report.complete),
                                Err(explain3d::service::ServiceError::Delta(_)) => {
                                    delta_errors.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(e) => panic!("unexpected delta error: {e}"),
                            }
                        }
                        7 | 8 => {
                            let report = registry.report(&name).unwrap();
                            assert!(report.complete);
                        }
                        _ => {
                            let report = registry.explain(&name, None).unwrap();
                            assert!(report.complete);
                        }
                    }
                }
            });
        }
    });

    // Per-session byte-identity vs serial replay of the admitted order.
    for s in 0..SESSIONS {
        let name = format!("s{s}");
        let log = registry.delta_log(&name).unwrap();
        let stored = report_fingerprint(&registry.report(&name).unwrap());
        let replayed = serial_replay(s, &log);
        assert_eq!(
            stored,
            replayed,
            "session {name}: concurrent result diverged from serial replay of {} deltas",
            log.len()
        );
    }

    let stats = registry.stats();
    assert!(stats.deltas_applied > 0);
    println!(
        "torture: {} deltas applied, {} coalesced, {} rejected out-of-range, {} explains",
        stats.deltas_applied,
        stats.coalesced_deltas,
        delta_errors.load(Ordering::Relaxed),
        stats.explains,
    );
}

#[test]
fn eviction_and_recreate_round_trip_under_contention() {
    const THREADS: usize = 4;
    const SESSIONS: usize = 4;
    const OPS_PER_THREAD: usize = 16;

    // Budget for roughly one explained session, so churn across four
    // sessions keeps evicting the idle ones.
    let probe = SessionRegistry::new(ServiceConfig::default());
    probe.create("p", base_request(0)).unwrap();
    probe.explain("p", None).unwrap();
    let per_session = probe.total_footprint().max(1);

    let registry = Arc::new(SessionRegistry::new(ServiceConfig {
        memory_budget: Some(per_session * 3 / 2),
        record_deltas: true,
        ..Default::default()
    }));
    for s in 0..SESSIONS {
        registry.create(&format!("s{s}"), base_request(s)).unwrap();
    }

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = Arc::clone(&registry);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(9000 + t as u64);
                for step in 0..OPS_PER_THREAD {
                    let s = rng.gen_range(0..SESSIONS);
                    let name = format!("s{s}");
                    let delta = random_delta(&mut rng, s, t * 1000 + step);
                    match registry.delta(&name, delta, None) {
                        Ok(_) | Err(explain3d::service::ServiceError::Delta(_)) => {}
                        Err(explain3d::service::ServiceError::SessionNotFound(_)) => {
                            // Evicted: re-create from base and move on. A
                            // concurrent re-create may win the race.
                            match registry.create(&name, base_request(s)) {
                                Ok(())
                                | Err(explain3d::service::ServiceError::SessionExists(_)) => {}
                                Err(e) => panic!("re-create failed: {e}"),
                            }
                        }
                        Err(e) => panic!("unexpected delta error: {e}"),
                    }
                }
            });
        }
    });

    // Every surviving session must equal the serial replay of the deltas
    // applied since its (most recent) creation.
    let mut verified = 0;
    for s in 0..SESSIONS {
        let name = format!("s{s}");
        let Ok(log) = registry.delta_log(&name) else { continue };
        let Ok(stored) = registry.report(&name) else { continue };
        assert_eq!(
            report_fingerprint(&stored),
            serial_replay(s, &log),
            "session {name} diverged after eviction/re-create churn"
        );
        verified += 1;
    }
    assert!(verified > 0, "at least one session must survive to be verified");
    let stats = registry.stats();
    assert!(
        stats.evictions > 0,
        "the budget must actually evict (footprint per session {per_session})"
    );
    println!(
        "eviction churn: {} evictions, {} creates, {} deltas, {} sessions verified",
        stats.evictions, stats.creates, stats.deltas_applied, verified
    );
}
