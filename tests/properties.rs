//! Property-based tests over the core invariants of the reproduction.
//!
//! crates.io is unreachable in this build environment, so instead of
//! `proptest` these tests drive the same invariants from the workspace's own
//! deterministic PRNG (`explain3d::datagen::rng`): each property runs over a
//! fixed set of seeds, every seed producing one random instance.

use explain3d::datagen::rng::{Rng, SeedableRng, StdRng};
use explain3d::prelude::*;

/// Builds a canonical relation from `(key, impact)` pairs.
fn canon(name: &str, entries: &[(String, f64)]) -> CanonicalRelation {
    CanonicalRelation {
        query_name: name.to_string(),
        schema: Schema::from_pairs(&[("k", ValueType::Str)]),
        key_attrs: vec!["k".to_string()],
        tuples: entries
            .iter()
            .enumerate()
            .map(|(i, (k, imp))| CanonicalTuple {
                id: i,
                key: vec![Value::str(k.clone())],
                impact: *imp,
                members: vec![i],
                representative: Row::new(vec![Value::str(k.clone())]),
            })
            .collect(),
        aggregate: None,
    }
}

/// `(key, impact)` entries of one side of a random instance.
type Entries = Vec<(String, f64)>;

/// A random small instance: up to 6 entities per side, random impacts,
/// random drops on the right, and a noisy initial mapping.
fn small_instance(rng: &mut StdRng) -> (Entries, Entries, Vec<(usize, usize, f64)>) {
    let n = rng.gen_range(2..6usize);
    let left: Vec<(String, f64)> =
        (0..n).map(|i| (format!("entity {i}"), rng.gen_range(1..=4i64) as f64)).collect();
    let keep: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
    let right: Vec<(String, f64)> = (0..n)
        .filter(|&i| keep[i])
        .map(|i| (format!("entity {i}"), rng.gen_range(1..=4i64) as f64))
        .collect();
    // Initial mapping: correct pairs with high probability plus a few noise
    // pairs with low probability.
    let mut matches = Vec::new();
    for (i, (lk, _)) in left.iter().enumerate() {
        for (j, (rk, _)) in right.iter().enumerate() {
            if lk == rk {
                matches.push((i, j, 0.9));
            } else if (i + j) % 3 == 0 {
                matches.push((i, j, 0.2));
            }
        }
    }
    (left, right, matches)
}

fn build_mapping(matches: &[(usize, usize, f64)]) -> TupleMapping {
    matches.iter().map(|&(l, r, p)| TupleMatch::new(l, r, p)).collect()
}

/// Explain3D's result is always *complete*: applying the explanations
/// reconciles the two canonical relations (Definition 3.4).
#[test]
fn explain3d_results_are_always_complete() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (left, right, matches) = small_instance(&mut rng);
        let t1 = canon("Q1", &left);
        let t2 = canon("Q2", &right);
        let mapping = build_mapping(&matches);
        let attr = AttributeMatches::single_equivalent("k", "k");
        let report = Explain3D::with_defaults().explain(&t1, &t2, &attr, &mapping);
        assert!(report.complete, "seed {seed}: incomplete explanations: {:?}", report.explanations);
        // The score of the returned explanations never exceeds zero and is finite.
        assert!(report.log_probability.is_finite());
        assert!(report.log_probability <= 0.0);
    }
}

/// The optimal explanations never score worse than the trivial complete
/// solution that removes every tuple and drops every match.
#[test]
fn explain3d_not_worse_than_trivial_solution() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let (left, right, matches) = small_instance(&mut rng);
        let t1 = canon("Q1", &left);
        let t2 = canon("Q2", &right);
        let mapping = build_mapping(&matches);
        let attr = AttributeMatches::single_equivalent("k", "k");
        let params = ProbabilityParams::default();
        let report = Explain3D::with_defaults().explain(&t1, &t2, &attr, &mapping);

        let mut trivial = ExplanationSet::new();
        for i in 0..t1.len() {
            trivial.add_provenance(Side::Left, i);
        }
        for j in 0..t2.len() {
            trivial.add_provenance(Side::Right, j);
        }
        let trivial_score = log_probability(&trivial, &t1, &t2, &mapping, &params);
        assert!(
            report.log_probability >= trivial_score - 1e-6,
            "seed {seed}: optimal {} worse than trivial {}",
            report.log_probability,
            trivial_score
        );
    }
}

/// Partitioned and un-partitioned runs agree on completeness and produce
/// valid evidence mappings (degree constraints).
#[test]
fn evidence_respects_cardinality() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(200 + seed);
        let (left, right, matches) = small_instance(&mut rng);
        let t1 = canon("Q1", &left);
        let t2 = canon("Q2", &right);
        let mapping = build_mapping(&matches);
        let attr = AttributeMatches::single_equivalent("k", "k");
        for config in [Explain3DConfig::no_opt(), Explain3DConfig::batched(4)] {
            let report = Explain3D::new(config).explain(&t1, &t2, &attr, &mapping);
            for (l, ms) in report.explanations.evidence.by_left() {
                assert!(ms.len() <= 1, "left tuple {l} matched {} times", ms.len());
            }
            for (r, ms) in report.explanations.evidence.by_right() {
                assert!(ms.len() <= 1, "right tuple {r} matched {} times", ms.len());
            }
            assert!(report.complete);
        }
    }
}

/// A random string over `[a-z ]` of length `0..=20`.
fn random_text(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0..=20usize);
    (0..len)
        .map(|_| {
            let c = rng.gen_range(0..27u32);
            if c == 26 {
                ' '
            } else {
                (b'a' + c as u8) as char
            }
        })
        .collect()
}

/// Token-wise Jaccard similarity is symmetric, bounded, and reflexive.
#[test]
fn jaccard_similarity_properties() {
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(300 + seed);
        let a = random_text(&mut rng);
        let b = random_text(&mut rng);
        let ab = explain3d::linkage::jaccard(&a, &b);
        let ba = explain3d::linkage::jaccard(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&ab));
        assert!((explain3d::linkage::jaccard(&a, &a) - 1.0).abs() < 1e-12);
    }
}

/// The MILP solver respects its own model: solutions satisfy every
/// constraint and integrality requirement of random small knapsacks.
#[test]
fn milp_solutions_are_feasible() {
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(400 + seed);
        let n = rng.gen_range(2..6usize);
        let values: Vec<f64> =
            (0..n).map(|_| 1.0 + rng.gen_range(0..900u32) as f64 / 100.0).collect();
        let weights: Vec<f64> =
            (0..n).map(|_| 1.0 + rng.gen_range(0..400u32) as f64 / 100.0).collect();
        let capacity = 3.0 + rng.gen_range(0..900u32) as f64 / 100.0;

        let mut model = explain3d::milp::Model::new();
        let vars: Vec<_> = (0..n).map(|i| model.add_binary(format!("x{i}"))).collect();
        let mut cap = explain3d::milp::LinExpr::zero();
        let mut obj = explain3d::milp::LinExpr::zero();
        for i in 0..n {
            cap.add_term(vars[i], weights[i]);
            obj.add_term(vars[i], values[i]);
        }
        model.add_le("capacity", cap, capacity);
        model.maximize(obj);
        let sol = explain3d::milp::solve_default(&model);
        assert!(sol.status.has_solution());
        assert!(model.violations(&sol.values, 1e-6).is_empty());
        // Exhaustive check: no feasible subset beats the reported optimum.
        let mut best = 0.0f64;
        for mask in 0u32..(1 << n) {
            let w: f64 = (0..n).filter(|i| mask & (1 << i) != 0).map(|i| weights[i]).sum();
            if w <= capacity + 1e-9 {
                let v: f64 = (0..n).filter(|i| mask & (1 << i) != 0).map(|i| values[i]).sum();
                best = best.max(v);
            }
        }
        assert!(
            (sol.objective - best).abs() < 1e-6,
            "seed {seed}: solver {} vs brute force {}",
            sol.objective,
            best
        );
    }
}

/// Graph partitioning covers every node exactly once and respects the size
/// bound.
#[test]
fn partitioning_is_a_proper_cover() {
    use explain3d::partition::{smart_partition, MappingGraph, SmartPartitionConfig};
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(500 + seed);
        let pairs = rng.gen_range(2..30usize);
        let batch = rng.gen_range(4..16usize);
        let mut g = MappingGraph::new(pairs, pairs);
        for i in 0..pairs {
            g.add_edge(i, i, 0.95);
            if i + 1 < pairs {
                g.add_edge(i, i + 1, 0.3);
            }
        }
        let p = smart_partition(&g, &SmartPartitionConfig::with_batch_size(batch));
        assert_eq!(p.assignment().len(), g.node_count());
        assert!(p.max_part_size() <= batch.max(2));
        let covered: usize = p.part_sizes().iter().sum();
        assert_eq!(covered, g.node_count());
    }
}
