//! Property-based tests over the core invariants of the reproduction.

use explain3d::prelude::*;
use proptest::prelude::*;

/// Builds a canonical relation from `(key, impact)` pairs.
fn canon(name: &str, entries: &[(String, f64)]) -> CanonicalRelation {
    CanonicalRelation {
        query_name: name.to_string(),
        schema: Schema::from_pairs(&[("k", ValueType::Str)]),
        key_attrs: vec!["k".to_string()],
        tuples: entries
            .iter()
            .enumerate()
            .map(|(i, (k, imp))| CanonicalTuple {
                id: i,
                key: vec![Value::str(k.clone())],
                impact: *imp,
                members: vec![i],
                representative: Row::new(vec![Value::str(k.clone())]),
            })
            .collect(),
        aggregate: None,
    }
}

/// Strategy: a small instance with up to 6 entities per side, random impacts,
/// random drops, and a noisy initial mapping.
fn small_instance() -> impl Strategy<Value = (Vec<(String, f64)>, Vec<(String, f64)>, Vec<(usize, usize, f64)>)>
{
    (2usize..6).prop_flat_map(|n| {
        let left = proptest::collection::vec(1.0..4.0f64, n).prop_map(move |imps| {
            imps.iter()
                .enumerate()
                .map(|(i, &imp)| (format!("entity {i}"), imp.round()))
                .collect::<Vec<_>>()
        });
        let right = proptest::collection::vec((proptest::bool::ANY, 1.0..4.0f64), n).prop_map(
            move |flags| {
                flags
                    .iter()
                    .enumerate()
                    .filter(|(_, (keep, _))| *keep)
                    .map(|(i, (_, imp))| (format!("entity {i}"), imp.round()))
                    .collect::<Vec<_>>()
            },
        );
        (left, right).prop_map(move |(l, r)| {
            // Initial mapping: correct pairs with high probability plus a few
            // noise pairs with low probability.
            let mut matches = Vec::new();
            for (i, (lk, _)) in l.iter().enumerate() {
                for (j, (rk, _)) in r.iter().enumerate() {
                    if lk == rk {
                        matches.push((i, j, 0.9));
                    } else if (i + j) % 3 == 0 {
                        matches.push((i, j, 0.2));
                    }
                }
            }
            (l, r, matches)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Explain3D's result is always *complete*: applying the explanations
    /// reconciles the two canonical relations (Definition 3.4).
    #[test]
    fn explain3d_results_are_always_complete((left, right, matches) in small_instance()) {
        let t1 = canon("Q1", &left);
        let t2 = canon("Q2", &right);
        let mapping: TupleMapping = matches
            .iter()
            .map(|&(l, r, p)| TupleMatch::new(l, r, p))
            .collect();
        let attr = AttributeMatches::single_equivalent("k", "k");
        let report = Explain3D::with_defaults().explain(&t1, &t2, &attr, &mapping);
        prop_assert!(report.complete, "incomplete explanations: {:?}", report.explanations);
        // The score of the returned explanations never exceeds zero and is finite.
        prop_assert!(report.log_probability.is_finite());
        prop_assert!(report.log_probability <= 0.0);
    }

    /// The optimal explanations never score worse than the trivial complete
    /// solution that removes every tuple and drops every match.
    #[test]
    fn explain3d_not_worse_than_trivial_solution((left, right, matches) in small_instance()) {
        let t1 = canon("Q1", &left);
        let t2 = canon("Q2", &right);
        let mapping: TupleMapping = matches
            .iter()
            .map(|&(l, r, p)| TupleMatch::new(l, r, p))
            .collect();
        let attr = AttributeMatches::single_equivalent("k", "k");
        let params = ProbabilityParams::default();
        let report = Explain3D::with_defaults().explain(&t1, &t2, &attr, &mapping);

        let mut trivial = ExplanationSet::new();
        for i in 0..t1.len() {
            trivial.add_provenance(Side::Left, i);
        }
        for j in 0..t2.len() {
            trivial.add_provenance(Side::Right, j);
        }
        let trivial_score = log_probability(&trivial, &t1, &t2, &mapping, &params);
        prop_assert!(
            report.log_probability >= trivial_score - 1e-6,
            "optimal {} worse than trivial {}",
            report.log_probability,
            trivial_score
        );
    }

    /// Partitioned and un-partitioned runs agree on completeness and produce
    /// valid evidence mappings (degree constraints).
    #[test]
    fn evidence_respects_cardinality((left, right, matches) in small_instance()) {
        let t1 = canon("Q1", &left);
        let t2 = canon("Q2", &right);
        let mapping: TupleMapping = matches
            .iter()
            .map(|&(l, r, p)| TupleMatch::new(l, r, p))
            .collect();
        let attr = AttributeMatches::single_equivalent("k", "k");
        for config in [Explain3DConfig::no_opt(), Explain3DConfig::batched(4)] {
            let report = Explain3D::new(config).explain(&t1, &t2, &attr, &mapping);
            for (l, ms) in report.explanations.evidence.by_left() {
                prop_assert!(ms.len() <= 1, "left tuple {l} matched {} times", ms.len());
            }
            for (r, ms) in report.explanations.evidence.by_right() {
                prop_assert!(ms.len() <= 1, "right tuple {r} matched {} times", ms.len());
            }
            prop_assert!(report.complete);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Token-wise Jaccard similarity is symmetric, bounded, and reflexive.
    #[test]
    fn jaccard_similarity_properties(a in "[a-z ]{0,20}", b in "[a-z ]{0,20}") {
        let ab = explain3d::linkage::jaccard(&a, &b);
        let ba = explain3d::linkage::jaccard(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((explain3d::linkage::jaccard(&a, &a) - 1.0).abs() < 1e-12);
    }

    /// The MILP solver respects its own model: solutions satisfy every
    /// constraint and integrality requirement of random small knapsacks.
    #[test]
    fn milp_solutions_are_feasible(
        values in proptest::collection::vec(1.0..10.0f64, 2..6),
        weights in proptest::collection::vec(1.0..5.0f64, 2..6),
        capacity in 3.0..12.0f64,
    ) {
        let n = values.len().min(weights.len());
        let mut model = explain3d::milp::Model::new();
        let vars: Vec<_> = (0..n).map(|i| model.add_binary(format!("x{i}"))).collect();
        let mut cap = explain3d::milp::LinExpr::zero();
        let mut obj = explain3d::milp::LinExpr::zero();
        for i in 0..n {
            cap.add_term(vars[i], weights[i]);
            obj.add_term(vars[i], values[i]);
        }
        model.add_le("capacity", cap, capacity);
        model.maximize(obj);
        let sol = explain3d::milp::solve_default(&model);
        prop_assert!(sol.status.has_solution());
        prop_assert!(model.violations(&sol.values, 1e-6).is_empty());
        // Exhaustive check: no feasible subset beats the reported optimum.
        let mut best = 0.0f64;
        for mask in 0u32..(1 << n) {
            let w: f64 = (0..n).filter(|i| mask & (1 << i) != 0).map(|i| weights[i]).sum();
            if w <= capacity + 1e-9 {
                let v: f64 = (0..n).filter(|i| mask & (1 << i) != 0).map(|i| values[i]).sum();
                best = best.max(v);
            }
        }
        prop_assert!((sol.objective - best).abs() < 1e-6, "solver {} vs brute force {}", sol.objective, best);
    }

    /// Graph partitioning covers every node exactly once and respects the
    /// size bound.
    #[test]
    fn partitioning_is_a_proper_cover(
        pairs in 2usize..30,
        batch in 4usize..16,
    ) {
        use explain3d::partition::{smart_partition, MappingGraph, SmartPartitionConfig};
        let mut g = MappingGraph::new(pairs, pairs);
        for i in 0..pairs {
            g.add_edge(i, i, 0.95);
            if i + 1 < pairs {
                g.add_edge(i, i + 1, 0.3);
            }
        }
        let p = smart_partition(&g, &SmartPartitionConfig::with_batch_size(batch));
        prop_assert_eq!(p.assignment().len(), g.node_count());
        prop_assert!(p.max_part_size() <= batch.max(2));
        let covered: usize = p.part_sizes().iter().sum();
        prop_assert_eq!(covered, g.node_count());
    }
}
