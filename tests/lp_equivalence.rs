//! Equivalence suite for the sparse revised simplex (PR 3).
//!
//! The sparse kernel replaced the dense tableau as the production LP
//! solver; these tests pin its contract:
//!
//! 1. on randomized LPs — mixed senses, negative lower bounds, infinite
//!    upper bounds, redundant (degenerate) rows — the sparse kernel agrees
//!    with the dense reference on **status** and, when optimal, on the
//!    **objective**, and its solution is feasible;
//! 2. crafted degenerate / unbounded / infeasible families agree too;
//! 3. warm-started branch-and-bound (child nodes re-solved from the parent
//!    basis via dual simplex) proves the **same optimum** as cold-started
//!    and dense-kernel searches on randomized MILPs, with every reported
//!    solution verified against the model;
//! 4. the warm path solves the bulk of the nodes (the point of the
//!    exercise), and limit-hit node-budget searches stay deterministic.

use explain3d::datagen::rng::{Rng, SeedableRng, StdRng};
use explain3d::milp::branch_bound::{solve_with_stats, LpKernel, MilpConfig};
use explain3d::milp::expr::LinExpr;
use explain3d::milp::model::{Model, Sense, VarKind};
use explain3d::milp::simplex::{solve_lp, solve_lp_dense, LpStatus};

/// A random LP/MILP on a coarse coefficient grid (multiples of 0.25, so
/// comparisons do not sit on knife-edge numerical boundaries).
fn random_model(rng: &mut StdRng, integral: bool) -> Model {
    let mut m = Model::new();
    let n = rng.gen_range(1..10usize);
    let mut vars = Vec::with_capacity(n);
    for i in 0..n {
        let lower = rng.gen_range(-12..=4i64) as f64 * 0.5;
        let upper = if rng.gen_range(0..10u32) < 3 {
            f64::INFINITY
        } else {
            lower + rng.gen_range(0..=16i64) as f64 * 0.5
        };
        let kind = if integral && rng.gen_range(0..10u32) < 7 {
            if upper.is_finite() && upper - lower <= 1.0 {
                VarKind::Binary
            } else {
                VarKind::Integer
            }
        } else {
            VarKind::Continuous
        };
        let (lower, upper) = if kind == VarKind::Binary { (0.0, 1.0) } else { (lower, upper) };
        vars.push(m.add_var(format!("x{i}"), kind, lower, upper));
    }
    for c in 0..rng.gen_range(0..8usize) {
        let mut expr = LinExpr::zero();
        for _ in 0..rng.gen_range(1..=3usize) {
            let coef = rng.gen_range(-16..=16i64) as f64 * 0.25;
            if coef != 0.0 {
                expr.add_term(vars[rng.gen_range(0..n)], coef);
            }
        }
        let sense = match rng.gen_range(0..6u32) {
            0 => Sense::Eq,
            1 | 2 => Sense::Ge,
            _ => Sense::Le,
        };
        // Bias the right-hand side towards satisfiable rows so the suite
        // sees a healthy mix of outcomes (unbiased rows make almost every
        // multi-row instance infeasible).
        let rhs = match sense {
            Sense::Le => rng.gen_range(-8..=60i64) as f64 * 0.25,
            Sense::Ge => rng.gen_range(-60..=8i64) as f64 * 0.25,
            Sense::Eq => rng.gen_range(-12..=12i64) as f64 * 0.25,
        };
        m.add_constraint(format!("c{c}"), expr, sense, rhs);
    }
    let mut obj = LinExpr::zero();
    for &v in &vars {
        obj.add_term(v, rng.gen_range(-12..=12i64) as f64 * 0.25);
    }
    if rng.gen_range(0..2u32) == 0 {
        m.maximize(obj);
    } else {
        m.minimize(obj);
    }
    m
}

/// LP-level feasibility (bounds + constraints, no integrality).
fn lp_feasible(m: &Model, values: &[f64], tol: f64) -> bool {
    m.variables().iter().enumerate().all(|(i, v)| {
        let x = values[i];
        x >= v.lower - tol && x <= v.upper + tol
    }) && m.constraints().iter().all(|c| {
        let lhs = c.expr.evaluate(values);
        match c.sense {
            Sense::Le => lhs <= c.rhs + tol,
            Sense::Ge => lhs >= c.rhs - tol,
            Sense::Eq => (lhs - c.rhs).abs() <= tol,
        }
    })
}

#[test]
fn sparse_and_dense_lp_agree_on_randomized_models() {
    let mut optimal = 0usize;
    let mut infeasible = 0usize;
    let mut unbounded = 0usize;
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(3_000 + seed);
        let m = random_model(&mut rng, false);
        let dense = solve_lp_dense(&m, &[]);
        let sparse = solve_lp(&m, &[]);
        assert_eq!(sparse.status, dense.status, "seed {seed}: status diverged on\n{m}");
        match dense.status {
            LpStatus::Optimal => {
                optimal += 1;
                let tol = 1e-6 * (1.0 + dense.objective.abs());
                assert!(
                    (sparse.objective - dense.objective).abs() <= tol,
                    "seed {seed}: sparse {} vs dense {} on\n{m}",
                    sparse.objective,
                    dense.objective
                );
                assert!(lp_feasible(&m, &sparse.values, 1e-6), "seed {seed}: infeasible values");
            }
            LpStatus::Infeasible => infeasible += 1,
            LpStatus::Unbounded => unbounded += 1,
        }
    }
    // The generator must actually exercise every outcome.
    assert!(optimal > 50, "only {optimal} optimal instances");
    assert!(infeasible > 5, "only {infeasible} infeasible instances");
    assert!(unbounded > 5, "only {unbounded} unbounded instances");
}

#[test]
fn sparse_lp_handles_degenerate_and_redundant_rows() {
    // Many redundant constraints through one vertex (degenerate pivots) and
    // duplicated rows (redundant equalities keep an artificial basic at 0).
    let mut m = Model::new();
    let x = m.add_continuous("x", 0.0, f64::INFINITY);
    let y = m.add_continuous("y", 0.0, f64::INFINITY);
    for i in 0..25 {
        m.add_le(format!("cap{i}"), LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0), 2.0);
    }
    m.add_eq("fix", LinExpr::term(x, 1.0) - LinExpr::term(y, 1.0), 0.0);
    m.add_eq("fix_again", LinExpr::term(x, 2.0) - LinExpr::term(y, 2.0), 0.0);
    m.maximize(LinExpr::term(x, 1.0) + LinExpr::term(y, 3.0));
    let dense = solve_lp_dense(&m, &[]);
    let sparse = solve_lp(&m, &[]);
    assert_eq!(sparse.status, LpStatus::Optimal);
    assert!((sparse.objective - dense.objective).abs() < 1e-6);
    assert!((sparse.objective - 4.0).abs() < 1e-6);
}

#[test]
fn sparse_lp_agrees_on_bound_overrides() {
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(7_000 + seed);
        let m = random_model(&mut rng, false);
        let overrides: Vec<(f64, f64)> = m
            .variables()
            .iter()
            .map(|v| {
                let lo = v.lower + rng.gen_range(0..=2i64) as f64 * 0.5;
                let hi = if v.upper.is_finite() { v.upper } else { lo + 4.0 };
                (lo.min(hi), hi)
            })
            .collect();
        let dense = solve_lp_dense(&m, &overrides);
        let sparse = solve_lp(&m, &overrides);
        assert_eq!(sparse.status, dense.status, "seed {seed}");
        if dense.status == LpStatus::Optimal {
            assert!(
                (sparse.objective - dense.objective).abs() <= 1e-6 * (1.0 + dense.objective.abs()),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn warm_and_cold_branch_and_bound_prove_the_same_optimum() {
    let mut warm_total = 0usize;
    let mut optimal_seen = 0usize;
    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(11_000 + seed);
        let m = random_model(&mut rng, true);
        let base = MilpConfig { time_limit: None, max_nodes: 50_000, ..Default::default() };
        let (warm, warm_stats) = solve_with_stats(&m, &base);
        let (cold, _) = solve_with_stats(&m, &base.clone().with_warm_start(false));
        let (dense, _) = solve_with_stats(&m, &base.clone().with_lp_kernel(LpKernel::Dense));
        assert_eq!(warm.status, cold.status, "seed {seed}: warm vs cold status on\n{m}");
        assert_eq!(warm.status, dense.status, "seed {seed}: sparse vs dense status on\n{m}");
        if warm.status.has_solution() {
            optimal_seen += 1;
            let tol = 1e-6 * (1.0 + dense.objective.abs());
            assert!(
                (warm.objective - cold.objective).abs() <= tol,
                "seed {seed}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
            assert!(
                (warm.objective - dense.objective).abs() <= tol,
                "seed {seed}: sparse {} vs dense {}",
                warm.objective,
                dense.objective
            );
            // Every reported solution must satisfy the model it solves.
            assert!(m.violations(&warm.values, 1e-5).is_empty(), "seed {seed}: warm violations");
            assert!(m.violations(&cold.values, 1e-5).is_empty(), "seed {seed}: cold violations");
        }
        warm_total += warm_stats.warm_lp_solves;
    }
    assert!(optimal_seen > 20, "only {optimal_seen} solvable instances");
    // The warm path must actually carry the search, not silently cold-solve
    // every node.
    assert!(warm_total > 50, "only {warm_total} warm LP re-solves across the suite");
}

#[test]
fn node_budget_is_deterministic_and_size_aware() {
    // Two models of very different size: the deadline-derived budget must
    // shrink for the big one, never exceed max_nodes, and stay identical
    // across repeated calls (that is what makes limit-hit searches
    // byte-reproducible).
    let mut small = Model::new();
    let a = small.add_binary("a");
    small.add_le("c", LinExpr::term(a, 1.0), 1.0);
    small.maximize(LinExpr::term(a, 1.0));

    let mut big = Model::new();
    let mut obj = LinExpr::zero();
    let vars: Vec<_> = (0..400).map(|i| big.add_binary(format!("x{i}"))).collect();
    for (i, &v) in vars.iter().enumerate() {
        obj.add_term(v, 1.0 + (i % 7) as f64);
        big.add_le(format!("r{i}"), LinExpr::term(v, 1.0), 1.0);
    }
    big.maximize(obj);

    let cfg = MilpConfig::default();
    let small_budget = cfg.node_budget_for(&small);
    let big_budget = cfg.node_budget_for(&big);
    assert_eq!(small_budget, cfg.node_budget_for(&small));
    assert_eq!(big_budget, cfg.node_budget_for(&big));
    assert!(small_budget <= cfg.max_nodes);
    assert!(big_budget < small_budget, "budget must shrink with model size");
    // Disabling the deadline falls back to the raw cap.
    assert_eq!(cfg.clone().with_deadline(None).node_budget_for(&big), cfg.max_nodes);
    // An explicit tiny max_nodes always wins.
    assert_eq!(cfg.with_max_nodes(3).node_budget_for(&big), 3);
}

#[test]
fn limit_hit_searches_are_reproducible_and_report_fallbacks() {
    // A model large enough that a 2-node budget is hit: repeated runs must
    // agree exactly (outputs and stats), the definition of a deterministic
    // deadline.
    let mut rng = StdRng::seed_from_u64(99);
    let m = random_model(&mut rng, true);
    let cfg = MilpConfig { time_limit: None, max_nodes: 2, ..Default::default() };
    let (s1, st1) = solve_with_stats(&m, &cfg);
    let (s2, st2) = solve_with_stats(&m, &cfg);
    assert_eq!(s1, s2);
    assert_eq!(st1, st2);
    assert!(st1.nodes <= 2);
}
