//! Property tests pinning the batch-packing partitioner's invariants.
//!
//! The packing rework of `smart_partition` (first-fit-decreasing packing of
//! connected components, splitting of oversized components along low-weight
//! edges) must uphold, for *every* input graph:
//!
//! 1. **Exactly-one-part**: every node is assigned to exactly one part and
//!    every part id is in range.
//! 2. **Bound**: no part exceeds the batch bound — except parts flagged as
//!    oversized, which hold a single contracted high-probability cluster
//!    that is itself larger than the batch.
//! 3. **Count**: the part count is bounded — `≤ target + splits` on
//!    pack-friendly workloads (the bench shape), and never more than
//!    `2·target + 1` in general (the first-fit guarantee: no two parts can
//!    be merged within the bound, so at most one part is half-empty).
//! 4. **Determinism**: re-running produces an identical assignment.
//! 5. **Semantics**: high-probability matches are never cut.

use explain3d::datagen::rng::{Rng, SeedableRng, StdRng};
use explain3d::partition::{
    smart_partition, smart_partition_packed, MappingGraph, PackedPartition, SmartPartitionConfig,
};

/// A random bipartite mapping graph: `left`×`right` nodes, `edges` random
/// matches with mixed probabilities (some high, some mid, some low).
fn random_graph(seed: u64, left: usize, right: usize, edges: usize) -> MappingGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = MappingGraph::new(left, right);
    for _ in 0..edges {
        let i = rng.gen_range(0..left);
        let j = rng.gen_range(0..right);
        let p = match rng.gen_range(0..10u32) {
            0..=2 => 0.9 + rng.gen_range(0..10u32) as f64 / 100.0, // high
            3..=4 => rng.gen_range(1..10u32) as f64 / 100.0,       // low
            _ => rng.gen_range(15..85u32) as f64 / 100.0,          // mid
        };
        g.add_edge(i, j, p);
    }
    g
}

/// Asserts all structural invariants of a packed partition on `g`.
fn assert_invariants(g: &MappingGraph, cfg: &SmartPartitionConfig, packed: &PackedPartition) {
    let n = g.node_count();
    let partition = &packed.partition;

    // 1. Exactly one part per node, all ids in range.
    assert_eq!(partition.assignment().len(), n, "assignment covers every node");
    assert!(partition.assignment().iter().all(|&p| p < partition.num_parts()), "part ids in range");
    let sizes = partition.part_sizes();
    assert_eq!(sizes.iter().sum::<usize>(), n, "part sizes sum to the node count");

    // 2. The batch bound holds for every non-flagged part; flagged parts
    // are genuinely oversized (otherwise the flag is meaningless).
    for (part, &size) in sizes.iter().enumerate() {
        if packed.oversized_parts.contains(&part) {
            assert!(size > cfg.batch_size, "flagged part {part} is not oversized ({size})");
        } else {
            assert!(
                size <= cfg.batch_size,
                "part {part} has {size} tuples for batch {}",
                cfg.batch_size
            );
        }
    }

    // 3. Part-count bound from the first-fit guarantee.
    let target = cfg.num_partitions(n);
    assert!(
        partition.num_parts() <= 2 * target + 1,
        "{} parts for target {target}",
        partition.num_parts()
    );
    assert_eq!(packed.target_parts, target);

    // 5. High-probability matches are never cut.
    for e in g.edges() {
        if cfg.scheme.is_high(e.weight) {
            assert_eq!(
                partition.part_of(g.left_id(e.left)),
                partition.part_of(g.right_id(e.right)),
                "high-probability match ({}, {}) was cut",
                e.left,
                e.right
            );
        }
    }
}

fn check_seeds(seeds: std::ops::Range<u64>, left: usize, right: usize, edges: usize) {
    for seed in seeds {
        let g = random_graph(seed, left, right, edges);
        for batch in [4usize, 10, 25, 75] {
            let cfg = SmartPartitionConfig::with_batch_size(batch);
            let packed = smart_partition_packed(&g, &cfg);
            assert_invariants(&g, &cfg, &packed);
            // 4. Determinism across runs, and agreement with the plain API.
            let again = smart_partition_packed(&g, &cfg);
            assert_eq!(packed, again, "seed {seed} batch {batch} is nondeterministic");
            assert_eq!(smart_partition(&g, &cfg), packed.partition);
        }
    }
}

#[test]
fn packed_partition_invariants_hold_on_random_graphs() {
    check_seeds(0..20, 40, 35, 90);
}

#[test]
fn packed_partition_invariants_hold_on_sparse_and_dense_graphs() {
    check_seeds(100..108, 60, 60, 20); // mostly isolated nodes
    check_seeds(200..208, 25, 25, 250); // dense multigraph
}

/// Larger seeded graphs for the `--include-ignored` stress lane in CI.
#[test]
#[ignore = "stress suite: run with --include-ignored"]
fn packed_partition_invariants_hold_on_large_graphs() {
    check_seeds(300..310, 400, 380, 1200);
    check_seeds(400..404, 1000, 1000, 3000);
}

#[test]
fn bench_shaped_workload_packs_to_target_plus_splits() {
    // The BENCH_pipeline shape: many small high-probability components
    // (the 213-part regression this PR removes). Packing must land within
    // target + splits, with parts bounded by the batch.
    let mut g = MappingGraph::new(240, 240);
    let mut rng = StdRng::seed_from_u64(7);
    for i in 0..240 {
        g.add_edge(i, i, 0.92 + rng.gen_range(0..8u32) as f64 / 100.0);
        if i % 3 == 0 && i + 1 < 240 {
            g.add_edge(i, i + 1, 0.2); // occasional weak link
        }
    }
    let cfg = SmartPartitionConfig::with_batch_size(60);
    let packed = smart_partition_packed(&g, &cfg);
    assert_invariants(&g, &cfg, &packed);
    assert_eq!(packed.target_parts, 8, "480 nodes / batch 60");
    assert!(
        packed.partition.num_parts()
            <= packed.target_parts + packed.split_components + packed.oversized_parts.len(),
        "{} parts for target {} + {} splits + {} oversized",
        packed.partition.num_parts(),
        packed.target_parts,
        packed.split_components,
        packed.oversized_parts.len()
    );
    assert!(packed.partition.num_parts() >= 8, "the batch bound forces at least k parts");
}

#[test]
fn empty_and_singleton_graphs_are_handled() {
    let empty = MappingGraph::new(0, 0);
    let cfg = SmartPartitionConfig::with_batch_size(10);
    let packed = smart_partition_packed(&empty, &cfg);
    assert!(packed.partition.assignment().is_empty());
    assert_eq!(packed.split_components, 0);
    assert!(packed.oversized_parts.is_empty());
    assert_eq!(smart_partition(&empty, &cfg).assignment().len(), 0);

    // A single left node, no right nodes, no edges.
    let singleton = MappingGraph::new(1, 0);
    let packed = smart_partition_packed(&singleton, &cfg);
    assert_eq!(packed.partition.assignment(), &[0]);
    assert_eq!(packed.partition.num_parts(), 1);
    assert!(packed.oversized_parts.is_empty());

    // One isolated node on each side.
    let two = MappingGraph::new(1, 1);
    let packed = smart_partition_packed(&two, &cfg);
    assert_eq!(packed.partition.assignment().len(), 2);
    assert_eq!(packed.partition.num_parts(), 1);

    // Batch size 1 on a two-node graph with no edges: two parts.
    let cfg1 = SmartPartitionConfig::with_batch_size(1);
    let packed = smart_partition_packed(&two, &cfg1);
    assert_eq!(packed.partition.num_parts(), 2);
    assert_eq!(packed.target_parts, 2);

    // Batch size 1 with a high-probability match: the 2-node cluster cannot
    // be split, so it becomes a single flagged oversized part.
    let mut matched = MappingGraph::new(1, 1);
    matched.add_edge(0, 0, 0.95);
    let packed = smart_partition_packed(&matched, &cfg1);
    assert_eq!(packed.partition.num_parts(), 1);
    assert_eq!(packed.oversized_parts, vec![0]);
}
