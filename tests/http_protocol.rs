//! HTTP protocol edge cases over a real socket, pinned against the
//! readiness-based server. These are the wire-level regression tests for
//! the PR-7 bugfix sweep:
//!
//! * HTTP/1.0 (and versionless) requests default to `Connection: close`;
//!   a `Connection` header overrides the default in either direction.
//! * The request-line limit applies to the line's **content** — a line of
//!   exactly 8192 bytes parses, one more byte is a 413 (the old parser
//!   counted the CRLF against the limit, shrinking the usable line by two).
//! * A connection that goes silent **mid-request** is answered
//!   `408 Request Timeout` before the close (the old server closed
//!   silently); a connection idle **between** requests is closed silently.
//! * Session names are percent-decoded, so the wire can address any name
//!   the library API can (`a%20b` ↔ `"a b"`); `%2F` and malformed escapes
//!   are typed 400s, never aliased names.
//!
//! Plus lifecycle pins for the event loop itself: pipelined requests on
//! one connection, and the full scripted lifecycle on the portable
//! `poll(2)` backend (the CI fallback lane).

use explain3d::service::client::Client;
use explain3d::service::json::Json;
use explain3d::service::registry::ServiceConfig;
use explain3d::service::{Backend, Server, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const CREATE_BODY: &str = r#"{
  "left":  {"name": "Q1", "columns": [["k", "str"]], "key": ["k"],
            "tuples": [{"values": ["alpha"], "impact": 2.0},
                       {"values": ["beta"]}]},
  "right": {"name": "Q2", "columns": [["k", "str"]], "key": ["k"],
            "tuples": [{"values": ["alpha"]}]},
  "match": {"left": "k", "right": "k"}
}"#;

fn serve(config: ServerConfig) -> (SocketAddr, ServerHandle) {
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr();
    (addr, server.spawn())
}

/// Reads exactly one HTTP response (headers + Content-Length body) off
/// `stream`, returning (status, raw headers, body). Reads byte-at-a-time
/// through the headers and `read_exact` for the body so it never consumes
/// bytes belonging to a pipelined successor response.
fn read_response(stream: &mut TcpStream) -> (u16, String, String) {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        if buf.ends_with(b"\r\n\r\n") {
            break;
        }
        let n = stream.read(&mut byte).expect("read response");
        assert!(n > 0, "connection closed before a full response; got {buf:?}");
        buf.push(byte[0]);
    }
    let head = String::from_utf8(buf).expect("utf-8 head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status in {head:?}"));
    let content_length: usize = head
        .lines()
        .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::to_string))
        .and_then(|v| v.trim().parse().ok())
        .expect("Content-Length header");
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("read body");
    (status, head, String::from_utf8(body).expect("utf-8 body"))
}

fn at_eof(stream: &mut TcpStream) -> bool {
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    matches!(stream.read(&mut [0u8; 1]), Ok(0))
}

#[test]
fn http10_defaults_to_close_and_connection_header_overrides() {
    let (addr, handle) = serve(ServerConfig::default());

    // HTTP/1.0 without a Connection header: answered, then closed.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap();
    let (status, head, _) = read_response(&mut s);
    assert_eq!(status, 200);
    assert!(head.contains("Connection: close"), "HTTP/1.0 must default to close: {head:?}");
    assert!(at_eof(&mut s), "server must close an HTTP/1.0 connection after the response");

    // A version-less (HTTP/0.9-style) request line also defaults to close.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /healthz\r\n\r\n").unwrap();
    let (status, head, _) = read_response(&mut s);
    assert_eq!(status, 200);
    assert!(head.contains("Connection: close"), "{head:?}");
    assert!(at_eof(&mut s));

    // HTTP/1.0 + `Connection: keep-alive` stays open and serves again.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
    let (status, head, _) = read_response(&mut s);
    assert_eq!(status, 200);
    assert!(head.contains("Connection: keep-alive"), "{head:?}");
    s.write_all(b"GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
    let (status, _, _) = read_response(&mut s);
    assert_eq!(status, 200, "the overridden HTTP/1.0 connection must serve a second request");

    // HTTP/1.1 + `Connection: close` closes despite the 1.1 default.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
    let (status, head, _) = read_response(&mut s);
    assert_eq!(status, 200);
    assert!(head.contains("Connection: close"), "{head:?}");
    assert!(at_eof(&mut s));

    handle.shutdown();
}

#[test]
fn request_line_limit_excludes_the_crlf_terminator() {
    let (addr, handle) = serve(ServerConfig::default());

    // "GET /xxx…x HTTP/1.1" of exactly 8192 bytes of content: must parse
    // (the unknown path is a routing 404, not a protocol error).
    let path_len = 8192 - "GET  HTTP/1.1".len();
    let path = format!("/{}", "x".repeat(path_len - 1));
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes()).unwrap();
    let (status, _, body) = read_response(&mut s);
    assert_eq!(status, 404, "an 8192-byte request line must be within the limit: {body}");

    // One more byte crosses the content limit: 413.
    let path = format!("/{}", "x".repeat(path_len));
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes()).unwrap();
    let (status, _, body) = read_response(&mut s);
    assert_eq!(status, 413, "an 8193-byte request line must be rejected: {body}");
    assert!(body.contains("too_large"), "{body}");

    handle.shutdown();
}

#[test]
fn stalled_mid_request_connection_gets_a_408() {
    let (addr, handle) =
        serve(ServerConfig { io_timeout: Duration::from_millis(300), ..ServerConfig::default() });

    // Half a request line, then silence: the sweep must answer 408 and
    // close, not hang or close silently.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(b"GET /hea").unwrap();
    let (status, head, body) = read_response(&mut s);
    assert_eq!(status, 408, "mid-request silence must be answered: {body}");
    assert!(body.contains("timeout"), "{body}");
    assert!(head.contains("Connection: close"), "{head:?}");
    assert!(at_eof(&mut s));

    // A connection idle *between* requests (no bytes at all) is closed
    // silently — there is no request to answer.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut leftovers = Vec::new();
    s.read_to_end(&mut leftovers).expect("clean EOF");
    assert!(leftovers.is_empty(), "idle close must send nothing, got {leftovers:?}");

    handle.shutdown();
}

#[test]
fn session_names_are_percent_decoded_on_the_wire() {
    let (addr, handle) = serve(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    // An encoded name addresses the decoded session, end to end.
    let (status, body) = client.request("POST", "/sessions/a%20b", CREATE_BODY).unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(body.get("created").and_then(Json::as_str), Some("a b"));
    let names: Vec<String> = handle.registry().list().into_iter().map(|s| s.name).collect();
    assert_eq!(names, vec!["a b".to_string()], "the registry must see the decoded name");
    let (status, _) = client.request("POST", "/sessions/a%20b/explain", "").unwrap();
    assert_eq!(status, 200);
    let (status, _) = client.request("DELETE", "/sessions/a%20b", "").unwrap();
    assert_eq!(status, 200);

    // An encoded slash would alias a path separator: typed 400.
    let (status, body) = client.request("POST", "/sessions/a%2Fb", CREATE_BODY).unwrap();
    assert_eq!(status, 400, "{body}");
    assert_eq!(body.get("error").and_then(Json::as_str), Some("bad_request"));
    // Malformed and truncated escapes too.
    let (status, _) = client.request("POST", "/sessions/a%zz", CREATE_BODY).unwrap();
    assert_eq!(status, 400);
    let (status, _) = client.request("POST", "/sessions/a%2", CREATE_BODY).unwrap();
    assert_eq!(status, 400);

    drop(client);
    handle.shutdown();
}

#[test]
fn pipelined_requests_answer_in_order_on_one_connection() {
    let (addr, handle) = serve(ServerConfig::default());

    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /healthz HTTP/1.1\r\n\r\nGET /sessions HTTP/1.1\r\n\r\n").unwrap();
    let (status, _, body) = read_response(&mut s);
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\""), "first pipelined response: {body}");
    let (status, _, body) = read_response(&mut s);
    assert_eq!(status, 200);
    assert!(body.contains("\"sessions\""), "second pipelined response: {body}");

    drop(s);
    handle.shutdown();
}

#[test]
fn poll_backend_serves_the_full_lifecycle() {
    // The portable poll(2) fallback must behave identically to epoll —
    // this is the CI lane for non-Linux readiness.
    let (addr, handle) = serve(ServerConfig {
        backend: Backend::Poll,
        service: ServiceConfig { record_deltas: true, ..ServiceConfig::default() },
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");

    let (status, body) = client.request("POST", "/sessions/p", CREATE_BODY).unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, explain) = client.request("POST", "/sessions/p/explain", "").unwrap();
    assert_eq!(status, 200, "{explain}");
    let fingerprint = explain.get("fingerprint").and_then(Json::as_str).unwrap().to_string();
    let (status, delta) = client
        .request(
            "POST",
            "/sessions/p/delta",
            r#"{"ops": [{"op": "insert", "side": "right", "tuple": {"values": ["beta"]}}]}"#,
        )
        .unwrap();
    assert_eq!(status, 200, "{delta}");
    assert_ne!(delta.get("fingerprint").and_then(Json::as_str), Some(fingerprint.as_str()));
    let (status, report) = client.request("GET", "/sessions/p/report", "").unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        report.get("fingerprint").and_then(Json::as_str),
        delta.get("fingerprint").and_then(Json::as_str),
        "stored report must match the delta response on the poll backend"
    );
    let (status, _) = client.request("DELETE", "/sessions/p", "").unwrap();
    assert_eq!(status, 200);

    drop(client);
    handle.shutdown();
}
