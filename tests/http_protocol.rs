//! HTTP protocol edge cases over a real socket, pinned against the
//! readiness-based server. These are the wire-level regression tests for
//! the PR-7 bugfix sweep:
//!
//! * HTTP/1.0 (and versionless) requests default to `Connection: close`;
//!   a `Connection` header overrides the default in either direction.
//! * The request-line limit applies to the line's **content** — a line of
//!   exactly 8192 bytes parses, one more byte is a 413 (the old parser
//!   counted the CRLF against the limit, shrinking the usable line by two).
//! * A connection that goes silent **mid-request** is answered
//!   `408 Request Timeout` before the close (the old server closed
//!   silently); a connection idle **between** requests is closed silently.
//! * Session names are percent-decoded, so the wire can address any name
//!   the library API can (`a%20b` ↔ `"a b"`); `%2F` and malformed escapes
//!   are typed 400s, never aliased names.
//!
//! Plus lifecycle pins for the event loop itself: pipelined requests on
//! one connection, and the full scripted lifecycle on the portable
//! `poll(2)` backend (the CI fallback lane).

use explain3d::service::client::Client;
use explain3d::service::json::Json;
use explain3d::service::registry::ServiceConfig;
use explain3d::service::{Backend, Server, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const CREATE_BODY: &str = r#"{
  "left":  {"name": "Q1", "columns": [["k", "str"]], "key": ["k"],
            "tuples": [{"values": ["alpha"], "impact": 2.0},
                       {"values": ["beta"]}]},
  "right": {"name": "Q2", "columns": [["k", "str"]], "key": ["k"],
            "tuples": [{"values": ["alpha"]}]},
  "match": {"left": "k", "right": "k"}
}"#;

fn serve(config: ServerConfig) -> (SocketAddr, ServerHandle) {
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr();
    (addr, server.spawn())
}

/// Reads exactly one HTTP response (headers + Content-Length body) off
/// `stream`, returning (status, raw headers, body). Reads byte-at-a-time
/// through the headers and `read_exact` for the body so it never consumes
/// bytes belonging to a pipelined successor response.
fn read_response(stream: &mut TcpStream) -> (u16, String, String) {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        if buf.ends_with(b"\r\n\r\n") {
            break;
        }
        let n = stream.read(&mut byte).expect("read response");
        assert!(n > 0, "connection closed before a full response; got {buf:?}");
        buf.push(byte[0]);
    }
    let head = String::from_utf8(buf).expect("utf-8 head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status in {head:?}"));
    let content_length: usize = head
        .lines()
        .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::to_string))
        .and_then(|v| v.trim().parse().ok())
        .expect("Content-Length header");
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("read body");
    (status, head, String::from_utf8(body).expect("utf-8 body"))
}

fn at_eof(stream: &mut TcpStream) -> bool {
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    matches!(stream.read(&mut [0u8; 1]), Ok(0))
}

#[test]
fn http10_defaults_to_close_and_connection_header_overrides() {
    let (addr, handle) = serve(ServerConfig::default());

    // HTTP/1.0 without a Connection header: answered, then closed.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap();
    let (status, head, _) = read_response(&mut s);
    assert_eq!(status, 200);
    assert!(head.contains("Connection: close"), "HTTP/1.0 must default to close: {head:?}");
    assert!(at_eof(&mut s), "server must close an HTTP/1.0 connection after the response");

    // A version-less (HTTP/0.9-style) request line also defaults to close.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /healthz\r\n\r\n").unwrap();
    let (status, head, _) = read_response(&mut s);
    assert_eq!(status, 200);
    assert!(head.contains("Connection: close"), "{head:?}");
    assert!(at_eof(&mut s));

    // HTTP/1.0 + `Connection: keep-alive` stays open and serves again.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
    let (status, head, _) = read_response(&mut s);
    assert_eq!(status, 200);
    assert!(head.contains("Connection: keep-alive"), "{head:?}");
    s.write_all(b"GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
    let (status, _, _) = read_response(&mut s);
    assert_eq!(status, 200, "the overridden HTTP/1.0 connection must serve a second request");

    // HTTP/1.1 + `Connection: close` closes despite the 1.1 default.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
    let (status, head, _) = read_response(&mut s);
    assert_eq!(status, 200);
    assert!(head.contains("Connection: close"), "{head:?}");
    assert!(at_eof(&mut s));

    handle.shutdown();
}

#[test]
fn request_line_limit_excludes_the_crlf_terminator() {
    let (addr, handle) = serve(ServerConfig::default());

    // "GET /xxx…x HTTP/1.1" of exactly 8192 bytes of content: must parse
    // (the unknown path is a routing 404, not a protocol error).
    let path_len = 8192 - "GET  HTTP/1.1".len();
    let path = format!("/{}", "x".repeat(path_len - 1));
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes()).unwrap();
    let (status, _, body) = read_response(&mut s);
    assert_eq!(status, 404, "an 8192-byte request line must be within the limit: {body}");

    // One more byte crosses the content limit: 413.
    let path = format!("/{}", "x".repeat(path_len));
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes()).unwrap();
    let (status, _, body) = read_response(&mut s);
    assert_eq!(status, 413, "an 8193-byte request line must be rejected: {body}");
    assert!(body.contains("too_large"), "{body}");

    handle.shutdown();
}

#[test]
fn stalled_mid_request_connection_gets_a_408() {
    let (addr, handle) =
        serve(ServerConfig { io_timeout: Duration::from_millis(300), ..ServerConfig::default() });

    // Half a request line, then silence: the sweep must answer 408 and
    // close, not hang or close silently.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(b"GET /hea").unwrap();
    let (status, head, body) = read_response(&mut s);
    assert_eq!(status, 408, "mid-request silence must be answered: {body}");
    assert!(body.contains("timeout"), "{body}");
    assert!(head.contains("Connection: close"), "{head:?}");
    assert!(at_eof(&mut s));

    // A connection idle *between* requests (no bytes at all) is closed
    // silently — there is no request to answer.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut leftovers = Vec::new();
    s.read_to_end(&mut leftovers).expect("clean EOF");
    assert!(leftovers.is_empty(), "idle close must send nothing, got {leftovers:?}");

    handle.shutdown();
}

/// Connects a socket tuned to behave like a congested, slow-draining
/// client: a small receive buffer so the advertised TCP window stays
/// tiny, and — crucially — `TCP_MAXSEG` clamped to 1 KiB *before*
/// `connect` so the MSS negotiated in the SYN is small. On loopback the
/// default MSS is the 64 KiB MTU, which breaks the test both ways: the
/// server's kernel only learns of drained window space in ~MSS-sized
/// updates (so a sipping reader shows the server *zero* progress for
/// seconds, making every server cut, deadline bug or not), and segments
/// larger than the whole receive buffer get dropped into a
/// retransmit/zero-window-probe spiral that can hide the server's FIN for
/// minutes. With a 1 KiB MSS every 2 KiB sip raises a window update, so
/// the server sees steady sub-deadline write progress — exactly the
/// trickle the total-response deadline must refuse to be strung along by.
#[cfg(target_os = "linux")]
fn connect_sipping_client(addr: SocketAddr) -> TcpStream {
    use std::os::unix::io::FromRawFd;
    extern "C" {
        fn socket(domain: i32, ty: i32, proto: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
        fn connect(fd: i32, addr: *const u8, len: u32) -> i32;
    }
    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const IPPROTO_TCP: i32 = 6;
    const TCP_MAXSEG: i32 = 2;
    const SOL_SOCKET: i32 = 1;
    const SO_RCVBUF: i32 = 8;
    let SocketAddr::V4(v4) = addr else { panic!("ephemeral bind yields v4") };
    // SAFETY: the setsockopt pointers reference live i32s with len 4 (their
    // exact size); `sa` is a 16-byte buffer matching sockaddr_in's layout and
    // connect(2) reads exactly the 16 bytes passed as len. Every syscall's
    // failure return is asserted. `from_raw_fd` takes ownership of an fd
    // that is ours alone (just created, never duplicated), so the TcpStream
    // is the sole closer.
    unsafe {
        let fd = socket(AF_INET, SOCK_STREAM, IPPROTO_TCP);
        assert!(fd >= 0, "socket(2)");
        let mss: i32 = 1024;
        assert_eq!(setsockopt(fd, IPPROTO_TCP, TCP_MAXSEG, &mss, 4), 0, "TCP_MAXSEG");
        let rcv: i32 = 8192;
        assert_eq!(setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcv, 4), 0, "SO_RCVBUF");
        // struct sockaddr_in: u16 family, u16 port (BE), u32 addr (BE), pad.
        let mut sa = [0u8; 16];
        sa[0..2].copy_from_slice(&(AF_INET as u16).to_ne_bytes());
        sa[2..4].copy_from_slice(&v4.port().to_be_bytes());
        sa[4..8].copy_from_slice(&v4.ip().octets());
        assert_eq!(connect(fd, sa.as_ptr(), 16), 0, "connect(2)");
        TcpStream::from_raw_fd(fd)
    }
}

/// The write-side mirror of the 408 test: a peer that *reads* its response
/// one sip at a time must be cut when the response misses the `io_timeout`
/// deadline — never served to completion at trickle speed, never left
/// holding its event-loop slot (and response buffers) forever. The server
/// guarantees this by treating `io_timeout` as a *total* response deadline
/// in `continue_write` (the write clock starts at `start_write` and
/// partial progress does not extend it), so the bound holds even on paths
/// where the kernel delivers write-ready events in steady sub-deadline
/// trickles — which loopback, for the record, does not: EPOLLOUT only
/// fires when a watermark's worth of send buffer frees at once.
#[cfg(target_os = "linux")]
#[test]
fn slow_reading_client_is_cut_at_the_write_deadline() {
    use std::time::Instant;
    let (addr, handle) =
        serve(ServerConfig { io_timeout: Duration::from_millis(400), ..ServerConfig::default() });

    let s = connect_sipping_client(addr);
    s.set_read_timeout(Some(Duration::from_millis(100))).unwrap();
    // Pipeline ~1500 requests whose 404 responses each echo a ~7 KiB
    // path: ~10 MiB of responses, past even the kernel's auto-tuned send
    // buffer ceiling (tcp_wmem caps at ~4 MiB), so the writer genuinely
    // parks waiting on our tiny window — and at our drain rate (1 KiB
    // every 100 ms) the parked 7 KiB response makes steady sub-deadline
    // progress but cannot finish inside the 400 ms deadline. The burst is
    // written from a helper thread because the server (rightly) stops
    // reading while it writes — our own send would block mid-burst.
    const REQUESTS: usize = 1500;
    let request = format!("GET /no-such-route-{} HTTP/1.1\r\n\r\n", "x".repeat(7000));
    let burst: Vec<u8> = request.as_bytes().repeat(REQUESTS);
    let mut writer = s.try_clone().unwrap();
    let pump = std::thread::spawn(move || {
        let _ = writer.write_all(&burst); // errors once the server cuts us
    });

    let mut s = s;
    let start = Instant::now();
    let mut got = 0usize;
    let mut buf = [0u8; 1024];
    // Phase 1: sip for ~6 s — over a dozen deadline windows — so the
    // response parked behind our tiny TCP window has long since blown its
    // 400 ms budget and the server has cut the connection.
    while start.elapsed() < Duration::from_secs(6) {
        match s.read(&mut buf) {
            Ok(0) => break,    // orderly close
            Ok(n) => got += n, // the sip that must NOT extend the deadline
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break, // reset: the cut discarded buffered bytes
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    // Phase 2: drain at full speed. How the cut lands depends on kernel
    // buffer state (an RST errors out instantly; a FIN can hide behind
    // megabytes of already-queued send buffer, which at sip speed would
    // take minutes to surface) — but either way what remains is a finite
    // tail. If the server *never* cut (the regression), draining fast
    // unstalls it, the full ~10 MiB arrives, and the assert below fails.
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    loop {
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "server never closed the connection (read {got} bytes so far)"
        );
        match s.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
    assert!(got < REQUESTS * request.len(), "must be cut mid-stream, not served to completion");
    pump.join().unwrap();
    handle.shutdown();
}

#[test]
fn session_names_are_percent_decoded_on_the_wire() {
    let (addr, handle) = serve(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    // An encoded name addresses the decoded session, end to end.
    let (status, body) = client.request("POST", "/sessions/a%20b", CREATE_BODY).unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(body.get("created").and_then(Json::as_str), Some("a b"));
    let names: Vec<String> = handle.registry().list().into_iter().map(|s| s.name).collect();
    assert_eq!(names, vec!["a b".to_string()], "the registry must see the decoded name");
    let (status, _) = client.request("POST", "/sessions/a%20b/explain", "").unwrap();
    assert_eq!(status, 200);
    let (status, _) = client.request("DELETE", "/sessions/a%20b", "").unwrap();
    assert_eq!(status, 200);

    // An encoded slash would alias a path separator: typed 400.
    let (status, body) = client.request("POST", "/sessions/a%2Fb", CREATE_BODY).unwrap();
    assert_eq!(status, 400, "{body}");
    assert_eq!(body.get("error").and_then(Json::as_str), Some("bad_request"));
    // Malformed and truncated escapes too.
    let (status, _) = client.request("POST", "/sessions/a%zz", CREATE_BODY).unwrap();
    assert_eq!(status, 400);
    let (status, _) = client.request("POST", "/sessions/a%2", CREATE_BODY).unwrap();
    assert_eq!(status, 400);

    drop(client);
    handle.shutdown();
}

#[test]
fn pipelined_requests_answer_in_order_on_one_connection() {
    let (addr, handle) = serve(ServerConfig::default());

    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /healthz HTTP/1.1\r\n\r\nGET /sessions HTTP/1.1\r\n\r\n").unwrap();
    let (status, _, body) = read_response(&mut s);
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\""), "first pipelined response: {body}");
    let (status, _, body) = read_response(&mut s);
    assert_eq!(status, 200);
    assert!(body.contains("\"sessions\""), "second pipelined response: {body}");

    drop(s);
    handle.shutdown();
}

#[test]
fn poll_backend_serves_the_full_lifecycle() {
    // The portable poll(2) fallback must behave identically to epoll —
    // this is the CI lane for non-Linux readiness.
    let (addr, handle) = serve(ServerConfig {
        backend: Backend::Poll,
        service: ServiceConfig { record_deltas: true, ..ServiceConfig::default() },
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");

    let (status, body) = client.request("POST", "/sessions/p", CREATE_BODY).unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, explain) = client.request("POST", "/sessions/p/explain", "").unwrap();
    assert_eq!(status, 200, "{explain}");
    let fingerprint = explain.get("fingerprint").and_then(Json::as_str).unwrap().to_string();
    let (status, delta) = client
        .request(
            "POST",
            "/sessions/p/delta",
            r#"{"ops": [{"op": "insert", "side": "right", "tuple": {"values": ["beta"]}}]}"#,
        )
        .unwrap();
    assert_eq!(status, 200, "{delta}");
    assert_ne!(delta.get("fingerprint").and_then(Json::as_str), Some(fingerprint.as_str()));
    let (status, report) = client.request("GET", "/sessions/p/report", "").unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        report.get("fingerprint").and_then(Json::as_str),
        delta.get("fingerprint").and_then(Json::as_str),
        "stored report must match the delta response on the poll backend"
    );
    let (status, _) = client.request("DELETE", "/sessions/p", "").unwrap();
    assert_eq!(status, 200);

    drop(client);
    handle.shutdown();
}
