//! Wire-level smoke: a real `explain3d_service::Server` on an ephemeral
//! port, driven over `std::net::TcpStream` through the scripted session
//! lifecycle, with the returned fingerprints checked byte-identical to the
//! same operations run in-process. Also pins the admission-control shed:
//! with one worker and a queue of one, a third concurrent *request* is
//! shed by the event loop with a 429 — connections are free, requests are
//! what admission control counts.

use explain3d::service::client::Client;
use explain3d::service::json::Json;
use explain3d::service::registry::{ServiceConfig, SessionRegistry};
use explain3d::service::{wire, Server, ServerConfig};
use std::time::Duration;

const CREATE_BODY: &str = r#"{
  "left":  {"name": "Q1", "columns": [["k", "str"]], "key": ["k"],
            "tuples": [{"values": ["alpha"], "impact": 2.0},
                       {"values": ["beta"]},
                       {"values": ["gamma"]}]},
  "right": {"name": "Q2", "columns": [["k", "str"]], "key": ["k"],
            "tuples": [{"values": ["alpha"]},
                       {"values": ["beta"]}]},
  "match": {"left": "k", "right": "k"}
}"#;

const DELTA_BODY: &str = r#"{"ops": [
    {"op": "insert", "side": "right", "tuple": {"values": ["gamma"]}},
    {"op": "update", "side": "left", "index": 0,
     "tuple": {"values": ["alpha"], "impact": 1.0}}
]}"#;

fn expect_ok(step: &str, result: Result<(u16, Json), impl std::fmt::Display>) -> Json {
    match result {
        Ok((200, body)) => body,
        Ok((status, body)) => panic!("{step}: status {status}: {body}"),
        Err(e) => panic!("{step}: {e}"),
    }
}

#[test]
fn scripted_lifecycle_over_tcp_matches_in_process_run() {
    // In-process oracle.
    let oracle = SessionRegistry::new(ServiceConfig::default());
    oracle.create("s", wire::parse_create(CREATE_BODY).unwrap()).unwrap();
    let oracle_explain = oracle.explain("s", None).unwrap();
    let (left, right) = oracle.shapes("s").unwrap();
    let parsed = wire::parse_delta(DELTA_BODY, &left, &right).unwrap();
    let oracle_delta = oracle.delta("s", parsed.delta, parsed.deadline).unwrap();

    // Wire side.
    let server = Server::bind(ServerConfig::default()).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut client = Client::connect(addr).expect("connect");
    expect_ok("create", client.request("POST", "/sessions/s", CREATE_BODY));
    let explain = expect_ok("explain", client.request("POST", "/sessions/s/explain", ""));
    assert_eq!(
        explain.get("fingerprint").and_then(Json::as_str),
        Some(wire::fingerprint_hex(&oracle_explain).as_str()),
        "explain over the wire diverged from the in-process run"
    );
    let delta = expect_ok("delta", client.request("POST", "/sessions/s/delta", DELTA_BODY));
    assert_eq!(
        delta.get("fingerprint").and_then(Json::as_str),
        Some(wire::fingerprint_hex(&oracle_delta.report).as_str()),
        "delta over the wire diverged from the in-process run"
    );
    assert!(delta.get("complete").and_then(Json::as_bool).unwrap_or(false));

    // The stored report equals the delta response; listing sees the session.
    let report = expect_ok("report", client.request("GET", "/sessions/s/report", ""));
    assert_eq!(
        report.get("fingerprint").and_then(Json::as_str),
        delta.get("fingerprint").and_then(Json::as_str)
    );
    let list = expect_ok("list", client.request("GET", "/sessions", ""));
    let sessions = list.get("sessions").and_then(Json::as_arr).unwrap();
    assert_eq!(sessions.len(), 1);
    assert_eq!(sessions[0].get("name").and_then(Json::as_str), Some("s"));
    assert!(sessions[0].get("footprint_bytes").and_then(Json::as_i64).unwrap() > 0);

    // Typed errors over the wire, connection stays usable (keep-alive).
    let (status, body) = client
        .request(
            "POST",
            "/sessions/s/delta",
            r#"{"ops": [{"op": "delete", "side": "left", "index": 99}]}"#,
        )
        .unwrap();
    assert_eq!(status, 400, "{body}");
    assert_eq!(body.get("error").and_then(Json::as_str), Some("delta_out_of_range"));
    let (status, body) =
        client.request("POST", "/sessions/s/delta", r#"{"ops": [{"op": "frobnicate"}]}"#).unwrap();
    assert_eq!(status, 400, "{body}");
    let (status, _) = client.request("POST", "/sessions/ghost/explain", "").unwrap();
    assert_eq!(status, 404);
    let (status, _) = client.request("PATCH", "/sessions/s", "").unwrap();
    assert_eq!(status, 404);
    let (status, _) = client.request("POST", "/sessions/s", CREATE_BODY).unwrap();
    assert_eq!(status, 409, "duplicate create must conflict");

    // Malformed JSON gets a 400, not a dead worker; the server still
    // answers afterwards.
    let (status, _) = client.request("POST", "/sessions/s2", "{not json").unwrap();
    assert_eq!(status, 400);
    let health = expect_ok("healthz", client.request("GET", "/healthz", ""));
    assert_eq!(health.get("ok").and_then(Json::as_bool), Some(true));

    expect_ok("drop", client.request("DELETE", "/sessions/s", ""));
    let (status, _) = client.request("GET", "/sessions/s/report", "").unwrap();
    assert_eq!(status, 404);

    // Close the keep-alive connection first so the worker sees EOF instead
    // of waiting out its idle read timeout during shutdown.
    drop(client);
    handle.shutdown();
}

#[test]
fn newline_free_flood_is_bounded_and_rejected() {
    use std::io::{Read, Write};
    let server = Server::bind(ServerConfig::default()).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.spawn();

    // A request line with no newline: the server must stop buffering at
    // its 8192-byte line bound and answer 413 instead of growing memory
    // with the stream. (Just past the bound, so the server drains what we
    // sent and its close stays graceful — a FIN the client can read the
    // response through, not a RST.)
    let mut raw = std::net::TcpStream::connect(addr).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    raw.write_all(&vec![b'A'; 9000]).expect("flood");
    let mut response = String::new();
    (&raw).take(256).read_to_string(&mut response).expect("read response");
    assert!(response.starts_with("HTTP/1.1 413"), "flood must be shed with 413, got {response:?}");
    drop(raw);
    handle.shutdown();
}

#[test]
fn saturated_admission_queue_sheds_with_429() {
    // One worker, queue of one: request A occupies the worker (its delta
    // parks in the coalesce window, so the occupancy is deterministic),
    // request B fills the queue, request C must be shed by the event loop
    // with a 429 — and A and B still answer 200 afterwards, because
    // shedding C never touched the worker.
    let server = Server::bind(ServerConfig {
        threads: 1,
        queue_capacity: 1,
        io_timeout: Duration::from_secs(10),
        service: ServiceConfig {
            coalesce_window: Some(Duration::from_millis(700)),
            ..ServiceConfig::default()
        },
        ..Default::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut setup = Client::connect(addr).expect("connect setup");
    expect_ok("create", setup.request("POST", "/sessions/s", CREATE_BODY));
    expect_ok("explain", setup.request("POST", "/sessions/s/explain", ""));

    let slow_delta = |tag: &'static str| {
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap_or_else(|e| panic!("connect {tag}: {e}"));
            client
                .request(
                    "POST",
                    "/sessions/s/delta",
                    r#"{"ops": [{"op": "insert", "side": "right", "tuple": {"values": ["gamma"]}}]}"#,
                )
                .unwrap_or_else(|e| panic!("{tag}: {e}"))
        })
    };
    // A's job reaches the worker and parks in the 700ms coalesce window.
    let a = slow_delta("A");
    std::thread::sleep(Duration::from_millis(200));
    // B's job takes the single queue slot.
    let b = slow_delta("B");
    std::thread::sleep(Duration::from_millis(200));

    // C finds the worker busy and the queue full: shed at dispatch.
    let mut c = Client::connect(addr).expect("connect C");
    let (status, body) = c.request("GET", "/healthz", "").expect("C gets an answer");
    assert_eq!(status, 429, "saturated queue must shed: {body}");
    assert_eq!(body.get("error").and_then(Json::as_str), Some("overloaded"));

    // A and B were admitted, so both must complete normally.
    let (status_a, body_a) = a.join().expect("join A");
    assert_eq!(status_a, 200, "A: {body_a}");
    let (status_b, body_b) = b.join().expect("join B");
    assert_eq!(status_b, 200, "B: {body_b}");

    // The event loop kept serving throughout: new requests still answer.
    expect_ok("healthz after shed", setup.request("GET", "/healthz", ""));
    drop(setup);
    drop(c);
    handle.shutdown();
}
