//! Property suite for the incremental re-explanation subsystem: for random
//! base relations and random delta sequences (inserts / updates / deletes,
//! including deltas that split or merge connected components),
//! `ExplainSession::re_explain` must be **byte-identical** — under
//! `report_fingerprint`, which covers explanations, value changes, the
//! evidence mapping, log-probability bits, and completeness — to a cold
//! pipeline run on the post-delta relations; and the cache-hit/miss
//! counters surfaced through `DeltaStats` must be monotone non-decreasing
//! over the session's lifetime.

use explain3d::datagen::rng::{Rng, SeedableRng, StdRng};
use explain3d::incremental::{ExplainSession, RelationDelta, SessionConfig};
use explain3d::prelude::*;

const VOCAB: [&str; 10] =
    ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "omega", "sigma", "kappa", "lambda"];

fn phrase(rng: &mut StdRng) -> String {
    let words = rng.gen_range(1..=2usize);
    (0..words).map(|_| VOCAB[rng.gen_range(0..VOCAB.len())]).collect::<Vec<_>>().join(" ")
}

fn tuple(rng: &mut StdRng) -> CanonicalTuple {
    let key = phrase(rng);
    CanonicalTuple {
        id: 0,
        key: vec![Value::str(key.clone())],
        impact: rng.gen_range(1..=4i64) as f64,
        members: vec![],
        representative: Row::new(vec![Value::str(key)]),
    }
}

fn relation(rng: &mut StdRng, name: &str, n: usize) -> CanonicalRelation {
    let mut tuples: Vec<CanonicalTuple> = (0..n).map(|_| tuple(rng)).collect();
    for (i, t) in tuples.iter_mut().enumerate() {
        t.id = i;
        t.members = vec![i];
    }
    CanonicalRelation {
        query_name: name.to_string(),
        schema: Schema::from_pairs(&[("k", ValueType::Str)]),
        key_attrs: vec!["k".to_string()],
        tuples,
        aggregate: None,
    }
}

fn random_delta(rng: &mut StdRng, left_len: usize, right_len: usize) -> RelationDelta {
    let mut delta = RelationDelta::new();
    let (mut ll, mut rl) = (left_len, right_len);
    for _ in 0..rng.gen_range(1..=4usize) {
        let side = if rng.gen_range(0..2u32) == 0 { Side::Left } else { Side::Right };
        let len = if side == Side::Left { &mut ll } else { &mut rl };
        match rng.gen_range(0..3u32) {
            0 => {
                delta = delta.insert(side, tuple(rng));
                *len += 1;
            }
            1 if *len > 0 => {
                let idx = rng.gen_range(0..*len);
                delta = delta.update(side, idx, tuple(rng));
            }
            _ if *len > 1 => {
                let idx = rng.gen_range(0..*len);
                delta = delta.delete(side, idx);
                *len -= 1;
            }
            _ => {
                delta = delta.insert(side, tuple(rng));
                *len += 1;
            }
        }
    }
    delta
}

fn config(batch: usize) -> SessionConfig {
    // A tight deterministic node budget keeps debug-mode MILP searches
    // cheap. Budget-hit solves are still byte-reproducible (the budget is
    // a node count, not wall-clock), so the equivalence property is
    // unaffected — it just also covers the limit-hit/fallback paths.
    let milp = MilpConfig { max_nodes: 400, deadline: None, ..Default::default() };
    SessionConfig { explain: Explain3DConfig::batched(batch).with_milp(milp), ..Default::default() }
}

fn matches() -> AttributeMatches {
    AttributeMatches::single_equivalent("k", "k")
}

/// The cold reference: a fresh session over the given relations (its first
/// `explain` has nothing memoised, so it is exactly the from-scratch
/// pipeline).
fn cold_fingerprint(
    left: &CanonicalRelation,
    right: &CanonicalRelation,
    cfg: &SessionConfig,
) -> Vec<u8> {
    let mut fresh = ExplainSession::new(left.clone(), right.clone(), matches(), cfg.clone());
    report_fingerprint(&fresh.explain())
}

/// All monotone counters of a `DeltaStats`, in a fixed order.
fn counters(s: &explain3d::core::pipeline::DeltaStats) -> [usize; 8] {
    [
        s.pair_cache_misses,
        s.pair_cache_hits,
        s.candidates_reused,
        s.component_cache_hits,
        s.component_cache_misses,
        s.parts_reused,
        s.parts_dirty,
        s.warm_basis_imports,
    ]
}

/// One randomized seed: a session, a few random deltas, each checked
/// byte-identical against a cold run, with monotone `DeltaStats`.
fn check_random_sequence(seed: u64, max_tuples: usize, steps: usize) {
    {
        let mut rng = StdRng::seed_from_u64(0xD3A1 + seed);
        let n_left = rng.gen_range(max_tuples / 2..=max_tuples);
        let n_right = rng.gen_range(max_tuples / 2..=max_tuples);
        let cfg = config(6);
        let mut session = ExplainSession::new(
            relation(&mut rng, "Q1", n_left),
            relation(&mut rng, "Q2", n_right),
            matches(),
            cfg.clone(),
        );
        let first = session.explain();
        assert!(first.complete, "seed {seed}: cold explain incomplete");
        let mut previous = counters(&session.delta_stats());

        for step in 0..steps {
            let delta = random_delta(&mut rng, session.left().len(), session.right().len());
            let report = session
                .re_explain(&delta)
                .unwrap_or_else(|e| panic!("seed {seed} step {step}: bad delta: {e}"));
            let incremental = report_fingerprint(&report);
            let cold = cold_fingerprint(session.left(), session.right(), &cfg);
            assert_eq!(
                incremental, cold,
                "seed {seed} step {step}: re_explain diverged from the cold pipeline"
            );
            // DeltaStats counters are cumulative and monotone.
            let now = counters(&session.delta_stats());
            for (k, (a, b)) in previous.iter().zip(now.iter()).enumerate() {
                assert!(b >= a, "seed {seed} step {step}: counter {k} decreased: {a} -> {b}");
            }
            previous = now;
        }
    }
}

#[test]
fn random_delta_sequences_are_byte_identical_to_cold_runs() {
    // Small instances so the debug-mode tier-1 run stays fast; the
    // `#[ignore]`d stress variant below covers the larger sweep in the CI
    // `--include-ignored` release lane.
    for seed in 0..3u64 {
        check_random_sequence(seed, 10, 3);
    }
}

#[test]
#[ignore = "large randomized sweep: run via the CI stress lane (--include-ignored, release)"]
fn random_delta_sequences_large_sweep() {
    for seed in 0..6u64 {
        check_random_sequence(100 + seed, 16, 4);
    }
}

#[test]
fn re_explain_matches_the_stateless_pipeline_too() {
    // Cross-check against the original stateless entry points, not just a
    // fresh session: build_initial_mapping + Explain3D::explain.
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let cfg = config(5);
    let mut session = ExplainSession::new(
        relation(&mut rng, "Q1", 8),
        relation(&mut rng, "Q2", 9),
        matches(),
        cfg.clone(),
    );
    session.explain();
    for _ in 0..2 {
        let delta = random_delta(&mut rng, session.left().len(), session.right().len());
        let report = session.re_explain(&delta).unwrap();
        let mapping =
            build_initial_mapping(session.left(), session.right(), &matches(), &cfg.mapping, None);
        let stateless = Explain3D::new(cfg.explain.clone()).explain(
            session.left(),
            session.right(),
            &matches(),
            &mapping,
        );
        assert_eq!(report.explanations, stateless.explanations);
        assert_eq!(report.log_probability.to_bits(), stateless.log_probability.to_bits());
        assert_eq!(report.complete, stateless.complete);
        assert_eq!(report.stats.milp_nodes, stateless.stats.milp_nodes);
    }
}

#[test]
fn component_splits_and_merges_stay_identical() {
    // A chain of tuples connected through shared tokens: updating the
    // middle link splits the connected component; re-inserting a bridging
    // key merges components back. Both directions must stay byte-identical
    // and actually exercise the solution cache.
    fn keyed(key: &str, impact: f64) -> CanonicalTuple {
        CanonicalTuple {
            id: 0,
            key: vec![Value::str(key)],
            impact,
            members: vec![],
            representative: Row::new(vec![Value::str(key)]),
        }
    }
    let left = ["alpha one", "alpha two", "beta two", "beta three", "omega nine"];
    let right = ["alpha one", "alpha beta", "beta three", "sigma four"];
    let mk = |keys: &[&str], name: &str| CanonicalRelation {
        query_name: name.to_string(),
        schema: Schema::from_pairs(&[("k", ValueType::Str)]),
        key_attrs: vec!["k".to_string()],
        tuples: keys
            .iter()
            .enumerate()
            .map(|(i, k)| {
                let mut t = keyed(k, 1.0 + (i % 2) as f64);
                t.id = i;
                t
            })
            .collect(),
        aggregate: None,
    };
    let cfg = config(4);
    let mut session =
        ExplainSession::new(mk(&left, "Q1"), mk(&right, "Q2"), matches(), cfg.clone());
    session.explain();
    let before = session.delta_stats();

    // Split: the bridging "alpha beta" on the right becomes an unrelated
    // key, disconnecting the alpha-cluster from the beta-cluster.
    let split = RelationDelta::new().update(Side::Right, 1, keyed("kappa seven", 1.0));
    let report = session.re_explain(&split).unwrap();
    assert_eq!(
        report_fingerprint(&report),
        cold_fingerprint(session.left(), session.right(), &cfg),
        "component split diverged"
    );
    let mid = session.delta_stats();
    assert!(
        mid.component_cache_hits > before.component_cache_hits,
        "untouched components must survive a split: {mid:?}"
    );

    // Merge: a new left tuple bridges the omega singleton and sigma.
    let merge = RelationDelta::new().insert(Side::Left, keyed("omega sigma four", 2.0));
    let report = session.re_explain(&merge).unwrap();
    assert_eq!(
        report_fingerprint(&report),
        cold_fingerprint(session.left(), session.right(), &cfg),
        "component merge diverged"
    );

    // Revert the split: the original right tuple returns; the score cache
    // should answer its pairs without recomputation.
    let misses_before_revert = session.delta_stats().pair_cache_misses;
    let revert = RelationDelta::new().update(Side::Right, 1, keyed("alpha beta", 1.0));
    let report = session.re_explain(&revert).unwrap();
    assert_eq!(
        report_fingerprint(&report),
        cold_fingerprint(session.left(), session.right(), &cfg),
        "revert diverged"
    );
    let after = session.delta_stats();
    assert!(
        after.pair_cache_hits > mid.pair_cache_hits,
        "reverted content must hit the score cache: {after:?}"
    );
    // The reverted tuple's pairs were all seen before, so the revert adds
    // no *new* pair scores beyond what the bridge insert's tuple may need.
    assert!(after.pair_cache_misses >= misses_before_revert);
}

#[test]
fn strategies_other_than_smart_also_stay_identical() {
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    for strategy in [PartitioningStrategy::ConnectedComponents, PartitioningStrategy::None] {
        let milp = MilpConfig { max_nodes: 400, deadline: None, ..Default::default() };
        let cfg = SessionConfig {
            explain: Explain3DConfig { strategy, milp, ..Default::default() },
            ..Default::default()
        };
        let mut session = ExplainSession::new(
            relation(&mut rng, "Q1", 8),
            relation(&mut rng, "Q2", 9),
            matches(),
            cfg.clone(),
        );
        session.explain();
        for _ in 0..2 {
            let delta = random_delta(&mut rng, session.left().len(), session.right().len());
            let report = session.re_explain(&delta).unwrap();
            assert_eq!(
                report_fingerprint(&report),
                cold_fingerprint(session.left(), session.right(), &cfg),
                "strategy {strategy:?} diverged"
            );
        }
    }
}

#[test]
fn small_deltas_on_larger_relations_mostly_hit_the_caches() {
    let mut rng = StdRng::seed_from_u64(0xFEED);
    let cfg = config(8);
    let mut session = ExplainSession::new(
        relation(&mut rng, "Q1", 24),
        relation(&mut rng, "Q2", 24),
        matches(),
        cfg,
    );
    session.explain();
    let cold = session.delta_stats();
    // One single-tuple update.
    let delta = random_delta(&mut rng, 1, 0); // left side, at most small ops
    let _ = session.re_explain(&delta).unwrap();
    let warm = session.delta_stats();
    let new_hits = warm.component_cache_hits - cold.component_cache_hits;
    let new_misses = warm.component_cache_misses - cold.component_cache_misses;
    assert!(
        new_hits > new_misses,
        "a small delta must reuse most components: {new_hits} hits vs {new_misses} misses"
    );
    assert!(warm.candidates_reused > 0);
}
